#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown docs.

Checks every ``[text](target)`` link in README.md, the other top-level
markdown documents, and docs/*.md:

* relative file targets must exist (resolved against the linking file);
* ``#fragment`` anchors — bare or attached to a file target — must
  match a heading in the target document, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* absolute URLs (``http(s)://``, ``mailto:``) are not checked.

Fenced code blocks and inline code spans are ignored, so example
snippets cannot produce false positives.  Exit status 0 when every
link resolves, 1 otherwise (one diagnostic line per dead link) — CI
runs this, and tests/test_docs.py keeps it in the tier-1 suite.

Usage: python tools/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Documents checked: top-level markdown plus everything under docs/.
DOC_GLOBS = ("*.md", "docs/*.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for one heading line."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code(lines: List[str]) -> List[str]:
    """Blank out fenced code blocks and inline code spans."""
    out: List[str] = []
    in_fence = False
    for line in lines:
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else _CODE_SPAN.sub("", line))
    return out


def _anchors(path: Path) -> set:
    """All heading slugs in one markdown file (duplicate-suffix aware)."""
    slugs: set = set()
    counts: dict = {}
    lines = _strip_code(path.read_text(encoding="utf-8").splitlines())
    for line in lines:
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path, root: Path) -> List[Tuple[int, str, str]]:
    """All dead links in one file as (line, target, reason) tuples."""
    dead: List[Tuple[int, str, str]] = []
    lines = _strip_code(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (
                path if not file_part else (path.parent / file_part).resolve()
            )
            if file_part and not resolved.exists():
                dead.append((lineno, target, "missing file"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    dead.append((lineno, target, "missing anchor"))
    return dead


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            checked += 1
            for lineno, target, reason in check_file(path, root):
                failures += 1
                print(f"{path.relative_to(root)}:{lineno}: dead link "
                      f"({reason}): {target}")
    print(f"checked {checked} markdown files: "
          f"{'OK' if not failures else f'{failures} dead link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
