#!/usr/bin/env python3
"""Fail on dead links and phantom CLI flags in the markdown docs.

Two independent checks over README.md, the other top-level markdown
documents, and docs/*.md:

**Links** — every ``[text](target)``:

* relative file targets must exist (resolved against the linking file);
* ``#fragment`` anchors — bare or attached to a file target — must
  match a heading in the target document, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* absolute URLs (``http(s)://``, ``mailto:``) are not checked.

For link checking, fenced code blocks and inline code spans are
ignored, so example snippets cannot produce false positives.

**CLI quickstarts** — every ``gatest`` / ``python -m repro.cli``
invocation inside a fenced ``bash``/``sh``/``shell``/``console``
block is parsed (``$ `` prompts, ``#`` comments, line continuations,
env-var prefixes and ``--opt=value`` all handled) and verified
against the real argparse parsers (``repro.cli.build_parser`` and
``repro.harness.experiments.build_parser``): the subcommand must
exist and every ``--flag`` must be one that subcommand accepts.  A
doc that quotes a renamed or deleted flag fails the build instead of
misleading readers.

Exit status 0 when everything resolves, 1 otherwise (one diagnostic
line per problem) — CI runs this, and tests/test_docs.py keeps it in
the tier-1 suite.

Usage: python tools/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import argparse
import re
import shlex
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

#: Documents checked: top-level markdown plus everything under docs/.
DOC_GLOBS = ("*.md", "docs/*.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for one heading line."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code(lines: List[str]) -> List[str]:
    """Blank out fenced code blocks and inline code spans."""
    out: List[str] = []
    in_fence = False
    for line in lines:
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else _CODE_SPAN.sub("", line))
    return out


def _anchors(path: Path) -> set:
    """All heading slugs in one markdown file (duplicate-suffix aware).

    Headings are taken from outside fenced blocks only, but inline code
    spans keep their *content* — GitHub slugs ``## Foo (`bar baz`)`` as
    ``foo-bar-baz``, so stripping span text would under-slug.
    """
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    lines = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    for line in lines:
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path, root: Path) -> List[Tuple[int, str, str]]:
    """All dead links in one file as (line, target, reason) tuples."""
    dead: List[Tuple[int, str, str]] = []
    lines = _strip_code(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (
                path if not file_part else (path.parent / file_part).resolve()
            )
            if file_part and not resolved.exists():
                dead.append((lineno, target, "missing file"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    dead.append((lineno, target, "missing anchor"))
    return dead


# ----------------------------------------------------------------------
# CLI quickstart verification
# ----------------------------------------------------------------------

#: Fence info strings whose blocks are treated as shell transcripts.
SHELL_FENCES = {"bash", "sh", "shell", "console"}

_FENCE_OPEN = re.compile(r"^(```|~~~)\s*([A-Za-z0-9_+-]*)")
_ENV_ASSIGN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")
_SEPARATORS = {"|", "||", "&&", ";", "&"}


def _cli_parsers(root: Path) -> Dict[str, Set[str]]:
    """subcommand name -> accepted option strings, from the real parsers.

    Imports the package from ``root/src`` directly so the check works
    without an installed package or ``PYTHONPATH`` (the CI docs job
    runs it on a bare checkout).
    """
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cli import build_parser as cli_parser
    from repro.harness.experiments import build_parser as experiments_parser

    def options(parser: argparse.ArgumentParser) -> Set[str]:
        return {
            option
            for action in parser._actions
            for option in action.option_strings
        }

    commands: Dict[str, Set[str]] = {}
    for action in cli_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                commands[name] = options(sub)
    # ``experiments`` is dispatched before argparse parsing (see
    # repro.cli.main); its real flag set lives in the harness parser.
    commands["experiments"] = options(experiments_parser())
    return commands


def _shell_blocks(raw_lines: List[str]) -> List[Tuple[int, str]]:
    """(lineno, logical command line) pairs from shell-fenced blocks.

    Handles ``$ `` prompts (console transcripts: non-prompt lines are
    output and skipped), ``#`` comments, and backslash continuations.
    """
    commands: List[Tuple[int, str]] = []
    in_block = False
    is_console = False
    pending: Tuple[int, str] = (0, "")
    for lineno, raw in enumerate(raw_lines, start=1):
        fence = _FENCE_OPEN.match(raw.strip())
        if fence and not in_block:
            in_block = fence.group(2).lower() in SHELL_FENCES
            is_console = fence.group(2).lower() == "console"
            continue
        if fence and in_block:
            in_block = False
            continue
        if not in_block:
            continue
        line = raw.strip()
        if pending[1]:
            line = pending[1] + " " + line
            start = pending[0]
            pending = (0, "")
        else:
            if is_console:
                if not line.startswith("$"):
                    continue  # transcript output, not a command
                line = line.lstrip("$ ")
            elif line.startswith("$"):
                line = line.lstrip("$ ")
            start = lineno
        if line.endswith("\\"):
            pending = (start, line[:-1].strip())
            continue
        line = re.sub(r"(^|\s)#.*$", "", line).strip()
        if line:
            commands.append((start, line))
    return commands


def _gatest_invocations(tokens: List[str]) -> List[List[str]]:
    """Argument vectors of every gatest invocation in one command line."""
    invocations: List[List[str]] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        argv: List[str] = []
        if token == "gatest":
            i += 1
        elif (
            token.startswith("python")
            and tokens[i + 1 : i + 3] == ["-m", "repro.cli"]
        ):
            i += 3
        else:
            i += 1
            continue
        while i < len(tokens) and tokens[i] not in _SEPARATORS:
            argv.append(tokens[i])
            i += 1
        invocations.append(argv)
    return invocations


def check_cli_blocks(
    path: Path, commands: Dict[str, Set[str]]
) -> List[Tuple[int, str, str]]:
    """Phantom subcommands/flags in one file's shell blocks."""
    problems: List[Tuple[int, str, str]] = []
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in _shell_blocks(raw_lines):
        # Drop env-var prefixes so `VAR=x gatest run` parses.
        try:
            tokens = shlex.split(line)
        except ValueError:
            continue  # unbalanced quotes: prose, not a command
        while tokens and _ENV_ASSIGN.match(tokens[0]):
            tokens.pop(0)
        for argv in _gatest_invocations(tokens):
            positionals = [t for t in argv if not t.startswith("-")]
            if not positionals:
                continue
            subcommand = positionals[0]
            if subcommand not in commands:
                problems.append(
                    (lineno, subcommand, "unknown gatest subcommand")
                )
                continue
            accepted = commands[subcommand]
            for token in argv[1:]:
                if token == "--":
                    break
                if not token.startswith("-") or token == "-":
                    continue
                flag = token.split("=", 1)[0]
                if re.fullmatch(r"-\d+(\.\d+)?", flag):
                    continue  # negative number, not a flag
                if flag not in accepted:
                    problems.append(
                        (lineno, flag,
                         f"flag not accepted by 'gatest {subcommand}'")
                    )
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    commands = _cli_parsers(root)
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            checked += 1
            for lineno, target, reason in check_file(path, root):
                failures += 1
                print(f"{path.relative_to(root)}:{lineno}: dead link "
                      f"({reason}): {target}")
            for lineno, target, reason in check_cli_blocks(path, commands):
                failures += 1
                print(f"{path.relative_to(root)}:{lineno}: stale CLI "
                      f"example ({reason}): {target}")
    print(f"checked {checked} markdown files: "
          f"{'OK' if not failures else f'{failures} problem(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
