"""Unit and property tests for three-valued gate primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import (
    BENCH_NAMES,
    GateType,
    Val3,
    X,
    eval_gate_scalar,
    scalar_to_v3,
    v3_and,
    v3_const0,
    v3_const1,
    v3_constx,
    v3_fold,
    v3_not,
    v3_or,
    v3_to_scalar,
    v3_valid,
    v3_xor,
)

SCALARS = [0, 1, X]


def to_pair(v):
    return scalar_to_v3(v)


class TestScalarTruthTables:
    @pytest.mark.parametrize("a,b,expect", [
        (0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1),
        (0, X, 0), (X, 0, 0),       # controlling 0 dominates X
        (1, X, X), (X, 1, X), (X, X, X),
    ])
    def test_and(self, a, b, expect):
        assert eval_gate_scalar(GateType.AND, [a, b]) == expect

    @pytest.mark.parametrize("a,b,expect", [
        (0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1),
        (1, X, 1), (X, 1, 1),       # controlling 1 dominates X
        (0, X, X), (X, 0, X), (X, X, X),
    ])
    def test_or(self, a, b, expect):
        assert eval_gate_scalar(GateType.OR, [a, b]) == expect

    @pytest.mark.parametrize("a,b,expect", [
        (0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0),
        (0, X, X), (X, 1, X), (X, X, X),  # XOR never masks X
    ])
    def test_xor(self, a, b, expect):
        assert eval_gate_scalar(GateType.XOR, [a, b]) == expect

    @pytest.mark.parametrize("a,expect", [(0, 1), (1, 0), (X, X)])
    def test_not(self, a, expect):
        assert eval_gate_scalar(GateType.NOT, [a]) == expect

    @pytest.mark.parametrize("a", SCALARS)
    def test_buff_identity(self, a):
        assert eval_gate_scalar(GateType.BUFF, [a]) == a

    @pytest.mark.parametrize("gate,inverse", [
        (GateType.NAND, GateType.AND),
        (GateType.NOR, GateType.OR),
        (GateType.XNOR, GateType.XOR),
    ])
    def test_inverting_duals(self, gate, inverse):
        for a in SCALARS:
            for b in SCALARS:
                base = eval_gate_scalar(inverse, [a, b])
                expect = X if base == X else 1 - base
                assert eval_gate_scalar(gate, [a, b]) == expect


class TestWordOps:
    def test_constants(self):
        mask = 0b1111
        assert v3_const0(mask) == (0, mask)
        assert v3_const1(mask) == (mask, 0)
        assert v3_constx() == (0, 0)

    def test_not_swaps_planes(self):
        assert v3_not((0b0101, 0b1010)) == (0b1010, 0b0101)

    @given(st.lists(st.sampled_from(SCALARS), min_size=2, max_size=4),
           st.sampled_from([GateType.AND, GateType.OR, GateType.NAND,
                            GateType.NOR, GateType.XOR, GateType.XNOR]))
    def test_fold_matches_scalar(self, inputs, gate_type):
        mask = 1
        word_result = v3_fold(gate_type, [to_pair(v) for v in inputs], mask)
        assert v3_to_scalar(word_result) == eval_gate_scalar(gate_type, inputs)

    @given(st.lists(st.sampled_from(SCALARS), min_size=2, max_size=8))
    def test_packed_slots_independent(self, slots):
        """Packing N scalars into N slots and ANDing against constant 1
        must return each scalar unchanged (identity of AND)."""
        mask = (1 << len(slots)) - 1
        v1 = sum(1 << i for i, v in enumerate(slots) if v == 1)
        v0 = sum(1 << i for i, v in enumerate(slots) if v == 0)
        out = v3_and((v1, v0), v3_const1(mask))
        for i, v in enumerate(slots):
            assert v3_to_scalar(out, slot=i) == v

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_word_ops_preserve_validity(self, a1, a0, b1, b0):
        mask = 0xFF
        a = (a1 & ~a0 & mask, a0 & mask)
        b = (b1 & ~b0 & mask, b0 & mask)
        for op in (v3_and, v3_or, v3_xor):
            assert v3_valid(op(a, b), mask)

    def test_fold_rejects_empty(self):
        with pytest.raises(ValueError):
            v3_fold(GateType.AND, [], 1)

    def test_fold_not_requires_single(self):
        assert v3_fold(GateType.NOT, [v3_const0(1)], 1) == v3_const1(1)


class TestScalarRoundTrip:
    @pytest.mark.parametrize("v", SCALARS)
    def test_round_trip(self, v):
        assert v3_to_scalar(scalar_to_v3(v)) == v

    def test_illegal_encoding_rejected(self):
        with pytest.raises(ValueError):
            v3_to_scalar((1, 1))

    def test_bad_scalar_rejected(self):
        with pytest.raises(ValueError):
            scalar_to_v3(7)


def test_bench_name_table_covers_all_types():
    assert set(BENCH_NAMES.values()) == set(GateType) - {GateType.INPUT}


def test_sequential_flags():
    assert GateType.DFF.is_sequential
    assert not GateType.DFF.is_combinational
    assert not GateType.INPUT.is_combinational
    assert GateType.NAND.is_combinational
