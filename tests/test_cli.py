"""Tests for the ``gatest`` command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestInfo:
    def test_builtin(self, capsys):
        code, out = run_cli(capsys, "info", "s27")
        assert code == 0
        assert "dffs       3" in out
        assert "faults" in out

    def test_synthetic(self, capsys):
        code, out = run_cli(capsys, "info", "s298", "--scale", "0.1")
        assert code == 0
        assert "inputs     3" in out

    def test_unknown_circuit(self, capsys):
        with pytest.raises(SystemExit, match="unknown circuit"):
            main(["info", "nosuch"])


class TestRun:
    def test_ga_engine_writes_tests(self, capsys, tmp_path):
        out_file = tmp_path / "tests.txt"
        code, out = run_cli(
            capsys, "run", "s27", "--engine", "ga", "--seed", "1",
            "-o", str(out_file),
        )
        assert code == 0
        assert "det 26/26" in out
        lines = [
            l for l in out_file.read_text().splitlines()
            if l and not l.startswith("#")
        ]
        assert all(len(l) == 4 and set(l) <= {"0", "1"} for l in lines)

    def test_random_engine(self, capsys):
        code, out = run_cli(
            capsys, "run", "s27", "--engine", "random", "--max-vectors", "64"
        )
        assert code == 0
        assert "det" in out

    def test_deterministic_engine(self, capsys):
        code, out = run_cli(capsys, "run", "minifsm", "--engine", "deterministic")
        assert code == 0
        assert "untestable" in out

    def test_eval_jobs_matches_serial(self, capsys):
        code, serial = run_cli(capsys, "run", "s27", "--seed", "7")
        assert code == 0
        code, parallel = run_cli(
            capsys, "run", "s27", "--seed", "7", "--eval-jobs", "2"
        )
        assert code == 0
        # Bit-identical contract, end to end through the CLI: same
        # detections, vector count and evaluation count.
        assert parallel.split(",")[:1] == serial.split(",")[:1]
        assert "det 26/26" in parallel

    def test_eval_cache_flag(self, capsys):
        code, out = run_cli(
            capsys, "run", "s27", "--seed", "7", "--eval-cache"
        )
        assert code == 0
        assert "det 26/26" in out


class TestFsim:
    def test_round_trip(self, capsys, tmp_path):
        out_file = tmp_path / "tests.txt"
        run_cli(capsys, "run", "s27", "--seed", "2", "-o", str(out_file))
        code, out = run_cli(capsys, "fsim", "s27", str(out_file))
        assert code == 0
        assert "faults detected" in out

    def test_verbose_lists_undetected(self, capsys, tmp_path):
        tests = tmp_path / "t.txt"
        tests.write_text("0000\n")
        code, out = run_cli(capsys, "fsim", "s27", str(tests), "-v")
        assert code == 0
        assert "undetected:" in out

    def test_bad_vector_rejected(self, capsys, tmp_path):
        tests = tmp_path / "t.txt"
        tests.write_text("01\n")
        with pytest.raises(SystemExit, match="expected 4 bits"):
            main(["fsim", "s27", str(tests)])


class TestSynth:
    def test_emits_bench(self, capsys):
        code, out = run_cli(capsys, "synth", "s298", "--scale", "0.1")
        assert code == 0
        assert "INPUT(pi0)" in out

    def test_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "c.bench"
        code, out = run_cli(
            capsys, "synth", "s386", "--scale", "0.1", "-o", str(out_file)
        )
        assert code == 0
        from repro.circuit import load_bench
        circuit = load_bench(out_file)
        assert circuit.num_inputs == 7

    def test_bench_file_loadable_by_run(self, capsys, tmp_path):
        out_file = tmp_path / "c.bench"
        run_cli(capsys, "synth", "s298", "--scale", "0.1", "-o", str(out_file))
        code, out = run_cli(
            capsys, "run", str(out_file), "--engine", "random",
            "--max-vectors", "32",
        )
        assert code == 0
