"""Cross-cutting property tests: system-level invariants.

These pin down relationships between components rather than behaviours
of a single module — the contracts the experiment harness and the
generator silently rely on.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import mini_fsm, s27, synthesize_named
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator, collapse_faults, collapsed_fault_list

from tests.conftest import random_vectors
from tests.test_fault_simulator import reference_run
from tests.test_sim import make_random_circuit


class TestFaultSimInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000), split=st.integers(1, 19))
    def test_coverage_monotone_in_vectors(self, seed, split):
        """Committing more vectors never loses detections."""
        circuit = make_random_circuit(seed, n_pi=3, n_ff=2, n_gates=10)
        vectors = random_vectors(circuit, 20, seed=seed)
        sim = FaultSimulator(circuit)
        sim.commit(vectors[:split])
        partial = sim.detected_count
        sim.commit(vectors[split:])
        assert sim.detected_count >= partial

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_sample_detection_bounded_by_full(self, seed):
        """A sampled evaluation can never report more detections than a
        full-list evaluation of the same candidate."""
        circuit = make_random_circuit(seed, n_pi=3, n_ff=2, n_gates=12)
        sim = FaultSimulator(circuit)
        candidate = random_vectors(circuit, 4, seed=seed + 1)
        full = sim.evaluate(candidate)
        rng = random.Random(seed)
        sample = rng.sample(sim.active, max(1, len(sim.active) // 3))
        sampled = sim.evaluate(candidate, sample=sample)
        assert sampled.detected <= full.detected
        assert sampled.num_faults_simulated <= full.num_faults_simulated

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_prop_final_bounded_by_sample(self, seed):
        circuit = make_random_circuit(seed, n_pi=3, n_ff=3, n_gates=12)
        sim = FaultSimulator(circuit)
        evaluation = sim.evaluate(random_vectors(circuit, 3, seed=seed))
        assert 0 <= evaluation.prop_final <= evaluation.num_faults_simulated
        assert evaluation.prop_sum <= evaluation.num_faults_simulated * evaluation.frames

    def test_detections_unique(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 40, seed=3))
        detected = [f for f, _ in sim.detections]
        assert len(detected) == len(set(detected))

    def test_word_width_one_equals_reference_grouping(self, minifsm_circuit):
        vectors = random_vectors(minifsm_circuit, 15, seed=4)
        wide = FaultSimulator(minifsm_circuit, word_width=128)
        narrow = FaultSimulator(minifsm_circuit, word_width=1)
        wide.commit(vectors)
        narrow.commit(vectors)
        assert wide.undetected_faults() == narrow.undetected_faults()


class TestGeneratorInvariants:
    def test_reported_state_is_replayable_midway(self):
        """The generator's committed state equals a fresh simulator fed
        the same prefix — no hidden state leaks from candidate evaluation."""
        circuit = mini_fsm()
        generator = GaTestGenerator(circuit, TestGenConfig(seed=6, max_vectors=8))
        result = generator.run()
        replay = FaultSimulator(circuit)
        if result.test_sequence:
            replay.commit(result.test_sequence)
        assert replay.good_state.ff_values == generator.fsim.good_state.ff_values
        assert replay.undetected_faults() == generator.fsim.undetected_faults()

    def test_trace_detections_sum_to_total(self):
        circuit = synthesize_named("s298", seed=2, scale=0.15)
        result = GaTestGenerator(circuit, TestGenConfig(seed=7)).run()
        assert sum(e.detected for e in result.trace) == result.detected

    @pytest.mark.parametrize("config", [
        TestGenConfig(seed=1),
        TestGenConfig(seed=1, fault_sample=10),
        TestGenConfig(seed=1, coding="nonbinary"),
        TestGenConfig(seed=1, generation_gap=0.5, population_scale=1.5),
    ])
    def test_detected_counts_consistent(self, config):
        result = GaTestGenerator(s27(), config).run()
        assert result.detected == len(result.detections)
        assert result.detected <= result.total_faults


class TestCollapseInvariant:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), vec_seed=st.integers(0, 50))
    def test_equivalent_faults_codetected(self, seed, vec_seed):
        """Any test detecting a class representative detects every member
        (the defining property of fault equivalence)."""
        circuit = make_random_circuit(seed, n_pi=3, n_ff=1, n_gates=7)
        collapsed = collapse_faults(circuit)
        vectors = random_vectors(circuit, 8, seed=vec_seed)
        for representative in collapsed.representatives[:6]:
            members = collapsed.expand(representative)
            if len(members) < 2:
                continue
            outcomes = {
                reference_run(circuit, member, vectors) for member in members
            }
            assert len(outcomes) == 1, (
                f"class of {representative} split: "
                f"{[m.describe(circuit) for m in members]}"
            )
