"""Tests for the simulation layer: compiled, pattern-parallel, event-driven.

The central property: the three simulators (compiled word-parallel,
pattern-parallel slots, and the event-driven reference) must agree on
every circuit, every state, every input sequence.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, GateType, c17, mini_fsm, s27, synthesize_named
from repro.circuit.gates import X
from repro.sim import (
    CompiledCircuit,
    EventSimulator,
    GoodState,
    PatternSimulator,
    SerialSimulator,
    compile_circuit,
)

from tests.conftest import random_vectors


# ---------------------------------------------------------------------------
# Random circuit construction for property tests
# ---------------------------------------------------------------------------

def make_random_circuit(seed: int, n_pi: int = 4, n_ff: int = 3, n_gates: int = 12) -> Circuit:
    rng = random.Random(seed)
    c = Circuit(f"rand{seed}")
    signals = []
    for i in range(n_pi):
        c.add_input(f"pi{i}")
        signals.append(f"pi{i}")
    ff_names = [f"ff{i}" for i in range(n_ff)]
    signals.extend(ff_names)  # forward references via declare
    gate_types = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                  GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUFF]
    gates = []
    for i in range(n_gates):
        gt = rng.choice(gate_types)
        if gt in (GateType.NOT, GateType.BUFF):
            fanins = [rng.choice(signals + gates)]
        else:
            pool = signals + gates
            fanins = rng.sample(pool, min(len(pool), rng.randint(2, 3)))
        name = f"g{i}"
        c.add_gate(name, gt, fanins)
        gates.append(name)
    for i, ff in enumerate(ff_names):
        c.add_dff(ff, rng.choice(gates))
    for _ in range(2):
        c.mark_output(rng.choice(gates))
    return c.finalize()


circuit_seeds = st.integers(min_value=0, max_value=10_000)


class TestCrossSimulatorAgreement:
    @settings(max_examples=40, deadline=None)
    @given(seed=circuit_seeds, vec_seed=st.integers(0, 1000))
    def test_serial_matches_event_driven(self, seed, vec_seed):
        circuit = make_random_circuit(seed)
        vectors = random_vectors(circuit, 8, seed=vec_seed)
        serial = SerialSimulator(circuit).run_sequence(vectors)
        event = EventSimulator(circuit).run_sequence(vectors)
        assert serial == event

    @settings(max_examples=20, deadline=None)
    @given(seed=circuit_seeds)
    def test_pattern_slots_match_serial(self, seed):
        """Each slot of a pattern-parallel run must equal its own serial run."""
        circuit = make_random_circuit(seed)
        n_slots = 5
        sequences = [random_vectors(circuit, 4, seed=s) for s in range(n_slots)]
        psim = PatternSimulator(circuit, n_slots=n_slots)
        psim.begin(None)
        for frame in range(4):
            psim.step([sequences[s][frame] for s in range(n_slots)])
        for s in range(n_slots):
            serial = SerialSimulator(circuit)
            serial.run_sequence(sequences[s])
            assert psim.extract_state(s).ff_values == serial.state.ff_values
            assert psim.po_values(s) == serial.po_values(0)

    @pytest.mark.parametrize("circuit_factory", [s27, c17, mini_fsm])
    def test_known_circuits_agree(self, circuit_factory):
        circuit = circuit_factory()
        vectors = random_vectors(circuit, 25, seed=9)
        assert (
            SerialSimulator(circuit).run_sequence(vectors)
            == EventSimulator(circuit).run_sequence(vectors)
        )


class TestPatternSimulator:
    def test_begin_broadcasts_state(self, s27_circuit):
        sim = PatternSimulator(s27_circuit, n_slots=3)
        sim.begin(GoodState([1, 0, X]))
        for slot in range(3):
            assert sim.extract_state(slot).ff_values == [1, 0, X]

    def test_step_requires_begin(self, s27_circuit):
        sim = PatternSimulator(s27_circuit, n_slots=1)
        with pytest.raises(RuntimeError, match="begin"):
            sim.step([[0, 0, 0, 0]])

    def test_step_checks_vector_count(self, s27_circuit):
        sim = PatternSimulator(s27_circuit, n_slots=2)
        sim.begin(None)
        with pytest.raises(ValueError, match="expected 2"):
            sim.step([[0, 0, 0, 0]])

    def test_state_size_checked(self, s27_circuit):
        sim = PatternSimulator(s27_circuit, n_slots=1)
        with pytest.raises(ValueError, match="flip-flops"):
            sim.begin(GoodState([0]))

    def test_zero_slots_rejected(self, s27_circuit):
        with pytest.raises(ValueError):
            PatternSimulator(s27_circuit, n_slots=0)

    def test_accepts_precompiled(self, s27_circuit):
        compiled = compile_circuit(s27_circuit)
        sim = PatternSimulator(compiled, n_slots=1)
        assert isinstance(sim.compiled, CompiledCircuit)

    def test_ffs_set_counts(self, counter3_circuit):
        sim = PatternSimulator(counter3_circuit, n_slots=2)
        sim.begin(None)
        # Slot 0 resets (all FFs set), slot 1 idles (all X).
        stats = sim.step([[1, 0], [0, 0]])
        assert stats.ffs_set[0] == 3
        assert stats.ffs_set[1] == 0

    def test_ffs_changed_counts_definite_toggles(self, counter3_circuit):
        sim = PatternSimulator(counter3_circuit, n_slots=1)
        sim.begin(GoodState([0, 0, 0]))
        stats = sim.step([[0, 1]])  # count: bit0 toggles 0->1
        assert stats.ffs_changed[0] == 1

    def test_events_counted_per_slot(self, s27_circuit):
        sim = PatternSimulator(s27_circuit, n_slots=2)
        sim.begin(None)
        sim.step([[0, 0, 0, 0], [0, 0, 0, 0]])
        # Identical vectors twice: slot events must match.
        stats = sim.step([[1, 1, 1, 1], [0, 0, 0, 0]])
        assert stats.events[0] > stats.events[1] == 0 or stats.events[0] >= stats.events[1]

    def test_x_inputs_supported(self, s27_circuit):
        sim = SerialSimulator(s27_circuit)
        sim.begin(None)
        sim.step([[X, X, X, X]])
        assert sim.po_values(0)[0] in (0, 1, X)


class TestGoodState:
    def test_unknown(self):
        state = GoodState.unknown(4)
        assert state.ff_values == [X, X, X, X]
        assert state.num_set == 0
        assert not state.all_set

    def test_copy_is_independent(self):
        a = GoodState([0, 1])
        b = a.copy()
        b.ff_values[0] = 1
        assert a.ff_values == [0, 1]

    def test_counts(self):
        state = GoodState([0, 1, X, 1])
        assert state.num_set == 3
        assert not state.all_set
        assert GoodState([0, 1]).all_set


class TestEventSimulator:
    def test_event_counts_zero_on_repeat_vector(self, s27_circuit):
        sim = EventSimulator(s27_circuit)
        sim.reset()
        vector = [1, 0, 1, 0]
        sim.step(vector)
        sim.step(vector)
        third = sim.step(vector)
        # Same vector, settled state: no events.
        assert third.events == 0

    def test_total_events_accumulates(self, s27_circuit):
        sim = EventSimulator(s27_circuit)
        sim.run_sequence(random_vectors(s27_circuit, 10, seed=2))
        assert sim.total_events > 0

    def test_vector_length_checked(self, s27_circuit):
        sim = EventSimulator(s27_circuit)
        sim.reset()
        with pytest.raises(ValueError, match="bits"):
            sim.step([0, 1])

    def test_state_matches_serial_semantics(self, minifsm_circuit):
        vectors = random_vectors(minifsm_circuit, 6, seed=4)
        event = EventSimulator(minifsm_circuit)
        event.run_sequence(vectors)
        serial = SerialSimulator(minifsm_circuit)
        serial.run_sequence(vectors)
        assert event.state.ff_values == serial.state.ff_values


class TestCompile:
    def test_program_covers_comb_gates(self, s27_circuit):
        compiled = compile_circuit(s27_circuit)
        assert len(compiled.program) == s27_circuit.num_gates
        assert compiled.num_pis == 4
        assert compiled.num_ffs == 3
        assert compiled.num_pos == 1

    def test_ff_d_ids(self, s27_circuit):
        compiled = compile_circuit(s27_circuit)
        for ff, d in zip(compiled.ff_ids, compiled.ff_d_ids):
            assert s27_circuit.fanins[ff] == (d,)

    def test_program_in_topo_order(self, tiny_synth):
        compiled = compile_circuit(tiny_synth)
        seen = set(compiled.pi_ids) | set(compiled.ff_ids)
        for out, _op, _inv, fanins in compiled.program:
            assert all(f in seen for f in fanins)
            seen.add(out)
