"""Kernel backend suite: compiled backends vs the reference interpreter.

The contract under test (docs/KERNELS.md): every backend behind the
kernel seam — the generated straight-line Python ("codegen"), the
vectorized plane kernel ("numpy") and the compiled C kernel ("c") —
must be *bit-identical* to the
reference interpreter in :mod:`repro.sim.compile` — at the plane level
for random inputs and injections, at the ``CandidateEval`` level
through :class:`~repro.faults.simulator.FaultSimulator`, and at the
final test-set level through full GATEST runs, serial and sharded
alike — because a kernel must never change a result, only the wall
clock.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.circuit import c17, s27, synthesize_named
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator
from repro.faults.transition import TransitionFaultSimulator
from repro.sim import ckernel, compile_circuit, kernel_for, kernel_source, npkernel
from repro.sim.codegen import (
    DEFAULT_KERNEL,
    clear_kernel_cache,
    generate_source,
    make_force_tables,
    resolve_kernel_name,
)
from repro.sim.compile import eval_program, eval_program_injected
from repro.telemetry import TelemetryCollector

from tests.conftest import random_vectors


def _compiled_kernel_params():
    """The non-interpreter backends, each skipped where unusable."""
    return [
        pytest.param("codegen"),
        pytest.param("numpy", marks=pytest.mark.skipif(
            not npkernel.available(), reason="numpy >= 2.0 unavailable")),
        pytest.param("c", marks=pytest.mark.skipif(
            not ckernel.available(), reason="no C compiler on PATH")),
    ]


def _sweep_circuits():
    """Bundled netlists plus random synthesized circuits (varied seeds)."""
    return [
        s27(),
        c17(),
        synthesize_named("s298", seed=3, scale=0.15),
        synthesize_named("s386", seed=5, scale=0.2),
        synthesize_named("s526", seed=11, scale=0.15),
    ]


def _random_planes(rng, n, width):
    v1 = [rng.getrandbits(width) for _ in range(n)]
    v0 = [rng.getrandbits(width) & ~v1[i] for i in range(n)]
    return v1, v0


def _random_forces(rng, compiled, width):
    out_force, pin_force = {}, {}
    for out, _opcode, _invert, fanins in compiled.program:
        if rng.random() < 0.2:
            f1 = rng.getrandbits(width)
            out_force[out] = (f1, rng.getrandbits(width) & ~f1)
        if fanins and rng.random() < 0.15:
            entries = []
            for pin in rng.sample(range(len(fanins)),
                                  rng.randint(1, len(fanins))):
                f1 = rng.getrandbits(width)
                entries.append((pin, f1, rng.getrandbits(width) & ~f1))
            pin_force[out] = entries
    return out_force, pin_force


class TestGeneratedSource:
    def test_good_kernel_is_straight_line(self, s27_circuit):
        """No loops, no branches: the entire point of the translation."""
        compiled = compile_circuit(s27_circuit)
        src = kernel_source(compiled, "good")
        assert "for " not in src
        assert "if " not in src
        assert "while " not in src
        assert src.startswith("def _kernel(v1, v0, M):")

    def test_injected_kernel_probes_force_table(self, s27_circuit):
        compiled = compile_circuit(s27_circuit)
        src = kernel_source(compiled, "injected")
        assert src.startswith("def _kernel_injected(v1, v0, M, _FX):")
        assert "for " not in src  # branches on table rows, never loops
        assert "_FX[" in src

    def test_generate_source_compiles_for_every_circuit(self):
        for circuit in _sweep_circuits():
            compiled = compile_circuit(circuit)
            for injected in (False, True):
                compile(generate_source(compiled, injected), "<test>", "exec")

    def test_kernels_cached_per_circuit(self, s27_circuit):
        compiled = compile_circuit(s27_circuit)
        a = kernel_for(compiled, "codegen")
        b = kernel_for(compiled, "codegen")
        assert a.eval is b.eval  # same generated function object
        clear_kernel_cache()
        c = kernel_for(compiled, "codegen")
        assert c.eval is not a.eval


class TestPlaneEquivalence:
    """Property-style sweep: random planes and injections, every circuit."""

    def test_good_pass_matches_interpreter(self):
        rng = random.Random(101)
        for circuit in _sweep_circuits():
            compiled = compile_circuit(circuit)
            kernel = kernel_for(compiled, "codegen")
            assert kernel.name == "codegen"
            for _ in range(12):
                width = rng.choice([1, 8, 64, 200])
                v1, v0 = _random_planes(rng, compiled.num_nodes, width)
                r1, r0 = list(v1), list(v0)
                eval_program(compiled.program, r1, r0, (1 << width) - 1)
                kernel.eval(v1, v0, (1 << width) - 1)
                assert (v1, v0) == (r1, r0), circuit.name

    def test_injected_pass_matches_interpreter(self):
        rng = random.Random(202)
        for circuit in _sweep_circuits():
            compiled = compile_circuit(circuit)
            kernel = kernel_for(compiled, "codegen")
            for _ in range(12):
                width = rng.choice([1, 8, 64, 200])
                mask = (1 << width) - 1
                out_force, pin_force = _random_forces(rng, compiled, width)
                v1, v0 = _random_planes(rng, compiled.num_nodes, width)
                r1, r0 = list(v1), list(v0)
                eval_program_injected(
                    compiled.program, r1, r0, mask, out_force, pin_force
                )
                kernel.eval_injection(
                    v1, v0, mask, kernel.make_injection(out_force, pin_force)
                )
                assert (v1, v0) == (r1, r0), circuit.name

    def test_force_tables_shape(self):
        fx = make_force_tables(
            4, {1: (0b10, 0b01)}, {2: [(1, 0b1, 0b0)]}, {2: 3}
        )
        assert fx[0] is None and fx[3] is None
        assert fx[1] == (None, 0b10, 0b01)
        pins, f1, f0 = fx[2]
        assert (f1, f0) == (0, 0)
        assert pins == [None, (0b1, 0b0), None]  # sized to the gate arity


class TestSimulatorEquivalence:
    """FaultSimulator observables must not depend on the kernel."""

    def test_candidate_evals_and_commits_identical(self):
        for circuit in _sweep_circuits():
            sims = {
                name: FaultSimulator(circuit, kernel=name)
                for name in ("interp", "codegen")
            }
            assert sims["codegen"].kernel_name == "codegen"
            assert sims["interp"].kernel_name == "interp"
            for round_ in range(3):
                vectors = random_vectors(circuit, 3, seed=round_)
                evals = {
                    name: sim.evaluate(vectors, count_faulty_events=True)
                    for name, sim in sims.items()
                }
                assert evals["codegen"] == evals["interp"], circuit.name
                commits = {
                    name: sim.commit(vectors) for name, sim in sims.items()
                }
                assert commits["codegen"] == commits["interp"], circuit.name
                assert sims["codegen"].detected_count == sims["interp"].detected_count

    def test_batch_path_identical(self):
        circuit = synthesize_named("s298", seed=3, scale=0.15)
        sims = {
            name: FaultSimulator(circuit, kernel=name)
            for name in ("interp", "codegen")
        }
        warm = random_vectors(circuit, 4, seed=2)
        for sim in sims.values():
            sim.commit(warm)
        candidates = [[v] for v in random_vectors(circuit, 12, seed=3)]
        assert (
            sims["codegen"].evaluate_batch(candidates)
            == sims["interp"].evaluate_batch(candidates)
        )

    def test_transition_model_identical(self):
        circuit = synthesize_named("s298", seed=3, scale=0.15)
        sims = {
            name: TransitionFaultSimulator(circuit, kernel=name)
            for name in ("interp", "codegen")
        }
        for round_ in range(3):
            vectors = random_vectors(circuit, 3, seed=round_)
            evals = {name: sim.evaluate(vectors) for name, sim in sims.items()}
            assert evals["codegen"] == evals["interp"]
            for sim in sims.values():
                sim.commit(vectors)
            assert sims["codegen"].detected_count == sims["interp"].detected_count

    def test_final_test_sets_identical(self):
        for circuit in _sweep_circuits()[:3]:
            runs = {
                name: GaTestGenerator(
                    circuit, TestGenConfig(seed=5, sim_kernel=name)
                ).run()
                for name in ("interp", "codegen")
            }
            assert runs["codegen"].test_sequence == runs["interp"].test_sequence
            assert runs["codegen"].detected == runs["interp"].detected
            assert (
                runs["codegen"].ga_evaluations == runs["interp"].ga_evaluations
            )

    def test_sharded_evaluation_identical(self, monkeypatch):
        """eval_jobs=2 through the real pool (forced on 1-CPU hosts):
        workers rebuild the parent's kernel, results stay bit-identical."""
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        circuit = synthesize_named("s298", seed=3, scale=0.15)
        serial = FaultSimulator(circuit, kernel="codegen")
        sharded = FaultSimulator(
            circuit, kernel="codegen", eval_jobs=2, eval_cache=False
        )
        warm = random_vectors(circuit, 4, seed=2)
        serial.commit(warm)
        sharded.commit(warm)
        for seed in (3, 4):
            vectors = random_vectors(circuit, 2, seed=seed)
            assert sharded.evaluate(vectors) == serial.evaluate(vectors)
        sharded.close()

    def test_sharded_run_identical_across_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        circuit = s27()
        config = TestGenConfig(seed=5, max_vectors=8)
        baseline = GaTestGenerator(circuit, config).run()
        for name in ("interp", "codegen"):
            from dataclasses import replace

            sharded = GaTestGenerator(
                circuit, replace(config, sim_kernel=name, eval_jobs=2)
            ).run()
            assert sharded.test_sequence == baseline.test_sequence
            assert sharded.detected == baseline.detected


class TestFourWayEquivalence:
    """interp / codegen / numpy / c × eval_jobs 1/2/4 × stuck-at/transition.

    The circuit is sized so the active fault list exceeds one 64-slot
    word: that is what engages the numpy and C backends' fused
    wide-group runners (narrow groups stay on the shared bigint path,
    see docs/KERNELS.md), so these cases exercise the compiled code and
    not just the delegation shim.
    """

    CIRCUIT_SCALE = 0.3  # 123 active faults: > 64, so wide groups form

    @pytest.mark.parametrize("model", ["stuck-at", "transition"])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("kernel", _compiled_kernel_params())
    def test_candidate_evals_identical(self, kernel, jobs, model,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        circuit = synthesize_named("s298", seed=3, scale=self.CIRCUIT_SCALE)
        cls = (FaultSimulator if model == "stuck-at"
               else TransitionFaultSimulator)
        ref = cls(circuit, kernel="interp")
        sim = cls(circuit, kernel=kernel, eval_jobs=jobs)
        assert sim.kernel_name == kernel
        warm = random_vectors(circuit, 4, seed=2)
        ref.commit(warm)
        sim.commit(warm)
        try:
            for seed in (3, 4):
                cand = random_vectors(circuit, 2, seed=seed)
                assert sim.evaluate(cand) == ref.evaluate(cand), (
                    f"{kernel}/jobs={jobs}/{model} CandidateEval diverged")
            if model == "stuck-at":
                cand = random_vectors(circuit, 2, seed=5)
                assert (sim.evaluate(cand, count_faulty_events=True)
                        == ref.evaluate(cand, count_faulty_events=True))
            more = random_vectors(circuit, 2, seed=9)
            assert sim.commit(more) == ref.commit(more)
            assert sim.detected_count == ref.detected_count
        finally:
            sim.close()

    @pytest.mark.parametrize("model", ["stuck-at", "transition"])
    @pytest.mark.parametrize("kernel", _compiled_kernel_params())
    def test_final_test_sets_identical(self, kernel, model):
        circuit = s27()
        runs = {
            name: GaTestGenerator(
                circuit,
                TestGenConfig(seed=5, fault_model=model, sim_kernel=name),
            ).run()
            for name in ("interp", kernel)
        }
        assert runs[kernel].test_sequence == runs["interp"].test_sequence
        assert runs[kernel].detected == runs["interp"].detected
        assert runs[kernel].ga_evaluations == runs["interp"].ga_evaluations

    def test_numpy_absent_falls_back_to_interpreter(self, s27_circuit,
                                                    monkeypatch):
        """Import shadowing: with numpy unimportable, ``--kernel numpy``
        degrades to the interpreter with a warning naming the backend
        and the exception class — never an error, never a wrong result."""
        monkeypatch.setitem(sys.modules, "numpy", None)
        clear_kernel_cache()
        compiled = compile_circuit(s27_circuit)
        collector = TelemetryCollector()
        with pytest.warns(RuntimeWarning, match="numpy.*falling back"):
            sim = FaultSimulator(compiled, kernel="numpy",
                                 collector=collector)
        assert sim.kernel_name == "interp"
        assert collector.counters["numpy.fallbacks"] == 1
        assert not npkernel.available()
        # ... and the fallback still simulates correctly end to end.
        ref = FaultSimulator(compiled, kernel="interp")
        vectors = random_vectors(s27_circuit, 4, seed=1)
        assert sim.commit(vectors) == ref.commit(vectors)
        clear_kernel_cache()

    def test_numpy_selection_and_plan_telemetry(self, s27_circuit):
        if not npkernel.available():
            pytest.skip("numpy >= 2.0 unavailable")
        clear_kernel_cache()
        npkernel.clear_plan_cache()
        collector = TelemetryCollector()
        circuit = synthesize_named("s298", seed=3, scale=self.CIRCUIT_SCALE)
        sim = FaultSimulator(circuit, kernel="numpy", collector=collector)
        assert sim.kernel_name == "numpy"
        assert collector.counters["sim.kernel.numpy"] == 1
        sim.commit(random_vectors(circuit, 4, seed=1))
        counters = collector.counters
        assert counters["numpy.plan.built"] == 1
        assert counters["numpy.plan.ranks"] > 0
        assert counters["numpy.group.passes"] >= 1
        assert counters["numpy.group.slot_frames"] > 0
        # A second simulator on the same compiled circuit reuses the plan.
        sim2 = FaultSimulator(sim.compiled, kernel="numpy",
                              collector=collector)
        sim2.commit(random_vectors(circuit, 4, seed=1))
        assert collector.counters["numpy.plan.built"] == 1


class TestFusedBatchPath:
    """The numpy fused population pass and its width thresholds.

    ``evaluate_batch`` hands a population to ``SimKernel.run_batch``
    only when ``n_candidates * len(sample)`` exceeds one 64-slot word;
    narrower batches stay on the shared bigint mega-word, where array
    marshaling overhead loses to arbitrary-precision integers — the
    same threshold rule the per-group runner applies (docs/KERNELS.md).
    """

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        if not npkernel.available():
            pytest.skip("numpy >= 2.0 unavailable")

    def _pair(self, circuit, collector=None):
        ref = FaultSimulator(circuit, kernel="interp")
        sim = FaultSimulator(circuit, kernel="numpy", collector=collector)
        warm = random_vectors(circuit, 4, seed=2)
        ref.commit(warm)
        sim.commit(warm)
        return ref, sim

    @pytest.mark.parametrize("events", [False, True])
    def test_wide_batch_identical_and_fused(self, events):
        circuit = synthesize_named("s298", seed=3, scale=0.3)
        collector = TelemetryCollector()
        ref, sim = self._pair(circuit, collector)
        candidates = [[v] for v in random_vectors(circuit, 8, seed=3)]
        assert (
            sim.evaluate_batch(candidates, count_faulty_events=events)
            == ref.evaluate_batch(candidates, count_faulty_events=events)
        )
        assert collector.counters["numpy.batch.passes"] >= 1
        assert collector.counters["numpy.batch.slot_frames"] > 0

    def test_multiframe_batch_identical(self):
        circuit = synthesize_named("s298", seed=3, scale=0.3)
        ref, sim = self._pair(circuit)
        vectors = random_vectors(circuit, 12, seed=7)
        candidates = [vectors[i:i + 3] for i in range(0, 12, 3)]
        assert sim.evaluate_batch(candidates) == ref.evaluate_batch(candidates)

    def test_narrow_batch_stays_on_bigints(self):
        """One candidate over a <64-fault sample: under one word, so the
        bigint path runs and the fused counter never moves."""
        circuit = synthesize_named("s298", seed=3, scale=0.3)
        collector = TelemetryCollector()
        ref, sim = self._pair(circuit, collector)
        sample = list(sim.active)[:33]
        candidates = [[v] for v in random_vectors(circuit, 3, seed=4)]
        assert (
            sim.evaluate_batch(candidates[:1], sample=sample)
            == ref.evaluate_batch(candidates[:1], sample=sample)
        )
        assert "numpy.batch.passes" not in collector.counters
        # Three candidates cross the 64-slot line: the fused pass engages.
        assert (
            sim.evaluate_batch(candidates, sample=sample)
            == ref.evaluate_batch(candidates, sample=sample)
        )
        assert collector.counters["numpy.batch.passes"] == 1

    def test_narrow_groups_stay_on_bigints(self):
        """A whole fault list that fits one word never engages the
        vectorized group runner (the sub-64-slot fallback)."""
        circuit = s27()
        collector = TelemetryCollector()
        sim = FaultSimulator(circuit, kernel="numpy", collector=collector)
        sim.commit(random_vectors(circuit, 6, seed=1))
        assert "numpy.group.passes" not in collector.counters
        assert sim.detected_count > 0

    def test_transition_model_never_fuses(self):
        """Per-frame conditional injection cannot replay the static-mask
        fused pass; the transition simulator pins ``_batch_fusable`` off."""
        circuit = synthesize_named("s298", seed=3, scale=0.3)
        collector = TelemetryCollector()
        ref = TransitionFaultSimulator(circuit, kernel="interp")
        sim = TransitionFaultSimulator(circuit, kernel="numpy",
                                       collector=collector)
        candidates = [[v] for v in random_vectors(circuit, 4, seed=3)]
        assert sim.evaluate_batch(candidates) == ref.evaluate_batch(candidates)
        assert "numpy.batch.passes" not in collector.counters


class TestKernelSelection:
    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "interp")
        assert resolve_kernel_name("codegen") == "codegen"

    def test_resolve_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "interp")
        for no_request in (None, "", "auto"):
            assert resolve_kernel_name(no_request) == "interp"

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert resolve_kernel_name(None) == DEFAULT_KERNEL == "codegen"

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel_name("turbo")

    def test_resolve_rejects_unknown_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "turbo")
        with pytest.raises(ValueError, match="REPRO_SIM_KERNEL"):
            resolve_kernel_name(None)

    def test_config_validates_sim_kernel(self):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            TestGenConfig(sim_kernel="turbo")
        assert TestGenConfig(sim_kernel="interp").sim_kernel == "interp"

    def test_build_failure_falls_back_to_interpreter(
        self, s27_circuit, monkeypatch
    ):
        """A codegen build failure must degrade, never raise."""
        import repro.sim.codegen as codegen

        def boom(compiled, collector):
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr(codegen, "_build_kernels", boom)
        clear_kernel_cache()
        compiled = compile_circuit(s27_circuit)
        collector = TelemetryCollector()
        with pytest.warns(RuntimeWarning, match="falling back"):
            kernel = kernel_for(compiled, "codegen", collector=collector)
        assert kernel.name == "interp"
        assert kernel.requested == "codegen"
        assert collector.counters["codegen.fallbacks"] == 1
        # ... and the fallback kernel still works end to end.
        with pytest.warns(RuntimeWarning, match="falling back"):
            sim = FaultSimulator(
                compiled, kernel="codegen", collector=collector
            )
        assert sim.kernel_name == "interp"
        sim.commit(random_vectors(s27_circuit, 4, seed=1))


class TestKernelTelemetry:
    def test_build_and_selection_counters(self, s27_circuit):
        clear_kernel_cache()
        collector = TelemetryCollector()
        compiled = compile_circuit(s27_circuit)
        sim = FaultSimulator(compiled, kernel="codegen", collector=collector)
        assert sim.kernel_name == "codegen"
        counters = collector.counters
        assert counters["codegen.kernels.built"] == 2
        assert counters["codegen.compile.seconds"] > 0
        assert counters["sim.kernel.codegen"] == 1
        # A second simulator on the same circuit reuses the cache.
        FaultSimulator(compiled, kernel="codegen", collector=collector)
        assert collector.counters["codegen.kernels.built"] == 2
        assert collector.counters["sim.kernel.codegen"] == 2

    def test_interp_selection_counter(self, s27_circuit):
        collector = TelemetryCollector()
        sim = FaultSimulator(
            compile_circuit(s27_circuit), kernel="interp", collector=collector
        )
        assert sim.kernel_name == "interp"
        assert collector.counters["sim.kernel.interp"] == 1
        assert "codegen.kernels.built" not in collector.counters
