"""Tests for fault-sampling strategies."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.faults import FixedSize, Fraction, FullList, make_sampler


@pytest.fixture
def rng():
    return random.Random(0)


class TestFullList:
    def test_returns_everything(self, rng):
        active = list(range(50))
        assert FullList().sample(active, rng) == active

    def test_returns_copy(self, rng):
        active = [1, 2, 3]
        out = FullList().sample(active, rng)
        out.append(99)
        assert active == [1, 2, 3]


class TestFixedSize:
    def test_caps_at_size(self, rng):
        out = FixedSize(10).sample(list(range(100)), rng)
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_small_list_returned_whole(self, rng):
        active = list(range(5))
        assert FixedSize(10).sample(active, rng) == active

    def test_subset_of_active(self, rng):
        active = list(range(40))
        assert set(FixedSize(7).sample(active, rng)) <= set(active)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedSize(0)

    @given(st.integers(1, 30), st.integers(0, 1000))
    def test_size_property(self, size, seed):
        active = list(range(60))
        out = FixedSize(size).sample(active, random.Random(seed))
        assert len(out) == min(size, 60)


class TestFraction:
    def test_fraction_of_list(self, rng):
        out = Fraction(0.1).sample(list(range(1000)), rng)
        assert len(out) == 100

    def test_minimum_floor(self, rng):
        out = Fraction(0.01, minimum=10).sample(list(range(200)), rng)
        assert len(out) == 10

    def test_small_list_returned_whole(self, rng):
        active = list(range(5))
        assert Fraction(0.5).sample(active, rng) == active

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Fraction(0.0)
        with pytest.raises(ValueError):
            Fraction(1.5)


class TestMakeSampler:
    def test_none_is_full_list(self):
        assert isinstance(make_sampler(None), FullList)

    def test_int_is_fixed_size(self):
        sampler = make_sampler(200)
        assert isinstance(sampler, FixedSize)
        assert sampler.size == 200

    def test_float_is_fraction(self):
        sampler = make_sampler(0.05)
        assert isinstance(sampler, Fraction)
        assert sampler.fraction == 0.05

    def test_instance_passthrough(self):
        sampler = FixedSize(3)
        assert make_sampler(sampler) is sampler

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            make_sampler(True)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            make_sampler("many")
