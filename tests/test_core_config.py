"""Tests for the GATEST configuration and parameter schedules."""

import pytest

from repro.core import TestGenConfig, ga_params_for_vector_length
from repro.core.config import DEEP_CIRCUITS


class TestTable1Schedule:
    @pytest.mark.parametrize("length,pop,rate", [
        (1, 8, 1 / 8),
        (3, 8, 1 / 8),
        (4, 16, 1 / 16),
        (16, 16, 1 / 16),
        (17, 16, 1 / 17),
        (35, 16, 1 / 35),
    ])
    def test_schedule(self, length, pop, rate):
        schedule = ga_params_for_vector_length(length)
        assert schedule.population_size == pop
        assert schedule.mutation_rate == pytest.approx(rate)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            ga_params_for_vector_length(0)


class TestTestGenConfig:
    def test_defaults_match_paper_main_config(self):
        config = TestGenConfig()
        assert config.selection == "tournament"
        assert config.crossover == "uniform"
        assert config.coding == "binary"
        assert config.generations == 8
        assert config.seq_population_size == 32
        assert config.seq_mutation_rate == pytest.approx(1 / 64)
        assert config.vector_progress_multiplier == 4.0
        assert config.seq_length_multipliers == (1.0, 2.0, 4.0)
        assert config.seq_fail_limit == 4

    @pytest.mark.parametrize("name", DEEP_CIRCUITS)
    def test_deep_circuit_overrides(self, name):
        config = TestGenConfig().for_circuit(name)
        assert config.vector_progress_multiplier == 1.0
        assert config.seq_length_multipliers == (0.25, 0.5, 1.0)

    def test_scaled_names_still_match_overrides(self):
        config = TestGenConfig().for_circuit("s5378@0.3")
        assert config.vector_progress_multiplier == 1.0

    def test_normal_circuit_unchanged(self):
        config = TestGenConfig()
        assert config.for_circuit("s298") == config

    def test_progress_limit(self):
        assert TestGenConfig().progress_limit(8) == 32
        assert TestGenConfig(vector_progress_multiplier=1.0).progress_limit(8) == 8
        assert TestGenConfig().progress_limit(0) == 4  # depth floored at 1

    def test_sequence_lengths(self):
        assert TestGenConfig().sequence_lengths(8) == (8, 16, 32)
        deep = TestGenConfig().for_circuit("s5378")
        assert deep.sequence_lengths(36) == (9, 18, 36)

    def test_sequence_lengths_deduplicated(self):
        assert TestGenConfig().sequence_lengths(1) == (1, 2, 4)
        config = TestGenConfig(seq_length_multipliers=(1.0, 1.0, 2.0))
        assert config.sequence_lengths(4) == (4, 8)

    def test_population_scaling(self):
        config = TestGenConfig(population_scale=2.0)
        assert config.vector_ga_schedule(10).population_size == 32
        assert config.sequence_ga_schedule().population_size == 64
        base = TestGenConfig()
        assert base.vector_ga_schedule(10).population_size == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            TestGenConfig(generations=0)
        with pytest.raises(ValueError):
            TestGenConfig(seq_fail_limit=0)
        with pytest.raises(ValueError):
            TestGenConfig(generation_gap=0.0)
        with pytest.raises(ValueError):
            TestGenConfig(population_scale=0.0)
