"""Tests for the experiment harness: tables, runner, paper data."""

import pytest

from repro.circuit.profiles import TABLE2_CIRCUITS
from repro.core import TestGenConfig
from repro.harness import (
    TextTable,
    fmt_mean_std,
    fmt_time,
    mean_std,
    paper_data,
    run_gatest,
    run_matrix,
)
from repro.harness.experiments import TABLES, table_1


class TestFormatting:
    def test_fmt_time(self):
        assert fmt_time(3600 * 4.44) == "4.44h"
        assert fmt_time(60 * 6.05) == "6.05m"
        assert fmt_time(12.3) == "12.30s"
        assert fmt_time(None) == "-"

    def test_fmt_mean_std(self):
        assert fmt_mean_std(264.7, 0.5) == "264.7(0.5)"
        assert fmt_mean_std(161, 28, digits=0) == "161(28)"
        assert fmt_mean_std(3.14159) == "3.1"

    def test_mean_std(self):
        mean, std = mean_std([2.0, 4.0, 6.0])
        assert mean == 4.0
        assert std == pytest.approx((8 / 3) ** 0.5)
        assert mean_std([]) == (0.0, 0.0)

    def test_text_table_render(self):
        table = TextTable(["A", "Blah"], title="T")
        table.add_row("x", 1)
        table.add_row("yyyy", None)
        out = table.render()
        assert "T" in out and "A" in out
        assert "yyyy  -" in out

    def test_text_table_row_width_checked(self):
        table = TextTable(["A"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)


class TestPaperData:
    def test_table2_covers_all_circuits(self):
        assert set(paper_data.TABLE2) == set(TABLE2_CIRCUITS)

    def test_table2_row_consistency(self):
        row = paper_data.TABLE2["s298"]
        assert row.total_faults == 308
        assert row.ga_det == pytest.approx(264.7)
        assert row.ga_time_s == pytest.approx(6.05 * 60)
        assert row.ga_coverage == pytest.approx(264.7 / 308)
        assert paper_data.TABLE2["s1423"].hitec_det is None

    def test_table3_shape(self):
        for circuit, schemes in paper_data.TABLE3.items():
            assert set(schemes) == {"roulette", "sus", "tournament", "tournament-r"}
            for xo in schemes.values():
                assert set(xo) == {"1-point", "2-point", "uniform"}

    def test_paper_claim_tournament_best(self):
        """The transcription must reproduce the paper's own conclusion:
        tournament selection (both kinds) beats proportionate selection."""
        means = paper_data.table3_scheme_means()
        assert means["tournament"] > means["roulette"]
        assert means["tournament"] > means["sus"]
        assert means["tournament-r"] > means["sus"]

    def test_paper_claim_uniform_competitive(self):
        means = paper_data.table3_crossover_means()
        assert means["uniform"] >= means["1-point"]
        assert means["uniform"] >= means["2-point"]

    def test_table6_speedups_grow_with_circuit_size(self):
        # Headline: s5378's sampling speedup dwarfs s298's.
        assert paper_data.TABLE6["s5378"][100][2] > paper_data.TABLE6["s298"][100][2]

    def test_table7_values(self):
        det, vec, speedup = paper_data.TABLE7["s298"]["3/4"]
        assert (det, vec, speedup) == (265.0, 167, 1.27)


class TestRunner:
    def test_run_gatest_aggregates(self, s27_circuit):
        agg = run_gatest("s27", TestGenConfig(), seeds=[1, 2], circuit=s27_circuit)
        assert agg.n_runs == 2
        assert agg.total_faults == 26
        assert agg.det_mean > 0
        assert agg.vec_mean > 0
        assert agg.coverage_mean <= 1.0

    def test_parallel_jobs_match_serial(self, s27_circuit):
        serial = run_gatest("s27", TestGenConfig(), [1, 2], circuit=s27_circuit)
        parallel = run_gatest(
            "s27", TestGenConfig(), [1, 2], circuit=s27_circuit, jobs=2
        )
        assert [r.detected for r in serial.runs] == [
            r.detected for r in parallel.runs
        ]
        assert [r.test_sequence for r in serial.runs] == [
            r.test_sequence for r in parallel.runs
        ]

    def test_run_matrix_structure(self):
        configs = {"a": TestGenConfig(), "b": TestGenConfig(crossover="1-point")}
        lines = []
        results = run_matrix(
            ["s298"], configs, seeds=[1], scale=0.1, progress=lines.append
        )
        assert set(results["s298"]) == {"a", "b"}
        assert len(lines) == 2


class TestExperimentDrivers:
    def test_table_registry_complete(self):
        assert set(TABLES) == {"1", "2", "3", "4", "5", "6", "7", "fig1", "fig2"}

    def test_table_1_output(self):
        out = table_1(1.0, [1])
        assert "1/8" in out and "1/16" in out and "1/35" in out

    def test_fig2_trace(self):
        out = TABLES["fig2"](0.1, [1], ["s298"])
        assert "INITIALIZATION" in out
        assert "SEQUENCES" in out
