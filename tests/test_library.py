"""Behavioral tests for the bundled parametric circuits."""

import pytest

from repro.circuit import (
    build_builtin,
    list_builtin,
    mini_fsm,
    parity_tracker,
    resettable_counter,
    shift_register,
    uninitializable_loop,
)
from repro.circuit.gates import X
from repro.sim import GoodState, SerialSimulator


class TestShiftRegister:
    def test_depth_equals_stages(self):
        for n in (1, 3, 6):
            assert shift_register(n).sequential_depth() == n

    def test_shifts_data(self):
        c = shift_register(3)
        sim = SerialSimulator(c)
        # Push 1,0,1,0... and observe it emerge 3 cycles later.
        stream = [1, 0, 1, 1, 0, 0, 1]
        trace = sim.run_sequence([[b] for b in stream])
        # Output at time t is input at time t-3 (X before that).
        for t, po in enumerate(trace):
            expect = stream[t - 3] if t >= 3 else X
            assert po[0] == expect

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            shift_register(0)


class TestCounter:
    def test_reset_initializes(self):
        c = resettable_counter(3)
        sim = SerialSimulator(c)
        sim.begin(None)
        sim.step([[1, 0]])  # rst=1, en=0
        assert sim.state.ff_values == [0, 0, 0]

    def test_counts_up(self):
        c = resettable_counter(3)
        sim = SerialSimulator(c)
        sim.begin(None)
        sim.step([[1, 0]])  # reset
        for expected in [1, 2, 3, 4, 5, 6, 7, 0, 1]:
            sim.step([[0, 1]])  # count
            bits = sim.state.ff_values
            assert sum(b << i for i, b in enumerate(bits)) == expected

    def test_hold_when_disabled(self):
        c = resettable_counter(2)
        sim = SerialSimulator(c)
        sim.begin(None)
        sim.step([[1, 0]])
        sim.step([[0, 1]])
        state = sim.state.ff_values
        sim.step([[0, 0]])  # enable off: hold
        assert sim.state.ff_values == state

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            resettable_counter(0)


class TestParityTracker:
    def test_stays_unknown_without_clear(self):
        c = parity_tracker()
        sim = SerialSimulator(c)
        sim.begin(None)
        for _ in range(10):
            sim.step([[1, 0]])  # din=1, clr=0
        assert sim.state.ff_values == [X]

    def test_clear_then_tracks_parity(self):
        c = parity_tracker()
        sim = SerialSimulator(c)
        sim.begin(None)
        sim.step([[0, 1]])  # clear
        assert sim.state.ff_values == [0]
        parity = 0
        for bit in [1, 1, 0, 1, 0, 0, 1]:
            sim.step([[bit, 0]])
            parity ^= bit
            assert sim.state.ff_values == [parity]


class TestUninitializableLoop:
    def test_never_initializes(self):
        c = uninitializable_loop()
        sim = SerialSimulator(c)
        sim.begin(None)
        for bit in [0, 1, 1, 0, 1, 0, 0, 1, 1, 1]:
            sim.step([[bit]])
        assert sim.state.ff_values == [X]


class TestMiniFsm:
    def test_walks_states(self):
        c = mini_fsm()
        sim = SerialSimulator(c)
        sim.begin(None)
        sim.step([[1, 0]])  # reset
        assert sim.state.ff_values == [0, 0]
        # Walk: 1, 2, 3 (s0 is bit 0, s1 is bit 1).
        seen = []
        for _ in range(3):
            sim.step([[0, 1]])
            s = sim.state.ff_values
            seen.append(s[0] + 2 * s[1])
        assert seen == [1, 2, 3]
        # In state 3, output asserts.
        sim.step([[0, 0]])
        assert sim.po_values(0) == [1]


class TestRegistry:
    def test_all_builtins_build(self):
        for name in list_builtin():
            circuit = build_builtin(name)
            assert circuit.num_nodes > 0

    def test_unknown_builtin_raises(self):
        with pytest.raises(KeyError, match="unknown builtin"):
            build_builtin("nope")
