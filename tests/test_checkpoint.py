"""Tests for campaign checkpointing."""

import json

import pytest

from repro.circuit import mini_fsm, s27, synthesize_named
from repro.core import (
    CheckpointError,
    circuit_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.faults import FaultSimulator

from tests.conftest import random_vectors


class TestFingerprint:
    def test_stable(self, s27_circuit):
        assert circuit_fingerprint(s27_circuit) == circuit_fingerprint(s27())

    def test_distinguishes_circuits(self, s27_circuit, minifsm_circuit):
        assert circuit_fingerprint(s27_circuit) != circuit_fingerprint(minifsm_circuit)

    def test_distinguishes_seeds(self):
        a = synthesize_named("s298", seed=1, scale=0.2)
        b = synthesize_named("s298", seed=2, scale=0.2)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestRoundTrip:
    def test_continuation_equivalence(self, tmp_path, s27_circuit):
        """Resuming from a checkpoint must equal never having stopped."""
        vectors = random_vectors(s27_circuit, 24, seed=2)
        straight = FaultSimulator(s27_circuit)
        straight.commit(vectors)

        resumed = FaultSimulator(s27_circuit)
        resumed.commit(vectors[:12])
        path = tmp_path / "ck.json"
        save_checkpoint(path, resumed, test_sequence=vectors[:12])
        restored, stored = load_checkpoint(path, s27())
        assert stored == vectors[:12]
        restored.commit(vectors[12:])

        assert restored.detected_count == straight.detected_count
        assert restored.undetected_faults() == straight.undetected_faults()
        assert restored.good_state.ff_values == straight.good_state.ff_values
        assert restored.vectors_applied == straight.vectors_applied

    def test_detections_preserved(self, tmp_path, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 10, seed=3))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        restored, stored = load_checkpoint(path, mini_fsm())
        assert stored == []
        assert restored.detections == sim.detections

    def test_divergences_preserved(self, tmp_path, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 3, seed=4))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        restored, _ = load_checkpoint(path, mini_fsm())
        assert restored.divergence == sim.divergence


class TestGuards:
    def test_wrong_circuit_rejected(self, tmp_path, s27_circuit, minifsm_circuit):
        sim = FaultSimulator(s27_circuit)
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        with pytest.raises(CheckpointError, match="different structure"):
            load_checkpoint(path, minifsm_circuit)

    def test_wrong_version_rejected(self, tmp_path, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        payload = json.loads(path.read_text())
        payload["format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path, s27_circuit)

    def test_json_is_plain(self, tmp_path, s27_circuit):
        """The checkpoint must be portable JSON (no pickled objects)."""
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 5, seed=5))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim, test_sequence=[[0, 1, 0, 1]])
        payload = json.loads(path.read_text())
        assert set(payload) >= {
            "format", "circuit", "fingerprint", "faults", "status",
            "good_state", "divergence", "test_sequence",
        }
