"""Tests for campaign checkpointing."""

import json

import pytest

from repro.circuit import mini_fsm, s27, synthesize_named
from repro.core import (
    RUN_FORMAT_VERSION,
    CheckpointError,
    circuit_fingerprint,
    fault_list_digest,
    load_checkpoint,
    load_run_checkpoint,
    restore_sim_run_state,
    save_checkpoint,
    save_run_checkpoint,
    sim_run_state,
)
from repro.faults import FaultSimulator

from tests.conftest import random_vectors


class TestFingerprint:
    def test_stable(self, s27_circuit):
        assert circuit_fingerprint(s27_circuit) == circuit_fingerprint(s27())

    def test_distinguishes_circuits(self, s27_circuit, minifsm_circuit):
        assert circuit_fingerprint(s27_circuit) != circuit_fingerprint(minifsm_circuit)

    def test_distinguishes_seeds(self):
        a = synthesize_named("s298", seed=1, scale=0.2)
        b = synthesize_named("s298", seed=2, scale=0.2)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestRoundTrip:
    def test_continuation_equivalence(self, tmp_path, s27_circuit):
        """Resuming from a checkpoint must equal never having stopped."""
        vectors = random_vectors(s27_circuit, 24, seed=2)
        straight = FaultSimulator(s27_circuit)
        straight.commit(vectors)

        resumed = FaultSimulator(s27_circuit)
        resumed.commit(vectors[:12])
        path = tmp_path / "ck.json"
        save_checkpoint(path, resumed, test_sequence=vectors[:12])
        restored, stored = load_checkpoint(path, s27())
        assert stored == vectors[:12]
        restored.commit(vectors[12:])

        assert restored.detected_count == straight.detected_count
        assert restored.undetected_faults() == straight.undetected_faults()
        assert restored.good_state.ff_values == straight.good_state.ff_values
        assert restored.vectors_applied == straight.vectors_applied

    def test_detections_preserved(self, tmp_path, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 10, seed=3))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        restored, stored = load_checkpoint(path, mini_fsm())
        assert stored == []
        assert restored.detections == sim.detections

    def test_divergences_preserved(self, tmp_path, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 3, seed=4))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        restored, _ = load_checkpoint(path, mini_fsm())
        assert restored.divergence == sim.divergence


class TestGuards:
    def test_wrong_circuit_rejected(self, tmp_path, s27_circuit, minifsm_circuit):
        sim = FaultSimulator(s27_circuit)
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        with pytest.raises(CheckpointError, match="different structure"):
            load_checkpoint(path, minifsm_circuit)

    def test_wrong_version_rejected(self, tmp_path, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim)
        payload = json.loads(path.read_text())
        payload["format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path, s27_circuit)

    def test_json_is_plain(self, tmp_path, s27_circuit):
        """The checkpoint must be portable JSON (no pickled objects)."""
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 5, seed=5))
        path = tmp_path / "ck.json"
        save_checkpoint(path, sim, test_sequence=[[0, 1, 0, 1]])
        payload = json.loads(path.read_text())
        assert set(payload) >= {
            "format", "circuit", "fingerprint", "faults", "status",
            "good_state", "divergence", "test_sequence",
        }


class TestRunCheckpoints:
    """The generator-level (crash-safe, resumable) checkpoint layer."""

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_run_checkpoint(path, {"stage": "vectors", "data": [1, 2, 3]})
        payload = load_run_checkpoint(path)
        assert payload["kind"] == "gatest-run"
        assert payload["format"] == RUN_FORMAT_VERSION
        assert payload["stage"] == "vectors"
        assert payload["data"] == [1, 2, 3]

    def test_corrupt_bitflip_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_run_checkpoint(path, {"stage": "vectors", "count": 7})
        payload = json.loads(path.read_text())
        payload["count"] = 8  # silent corruption
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="content-hash"):
            load_run_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_run_checkpoint(path, {"stage": "done"})
        path.write_text(path.read_text()[:-20])
        with pytest.raises(CheckpointError, match="cannot read"):
            load_run_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_run_checkpoint(tmp_path / "nope.ckpt")

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CheckpointError, match="not a gatest run checkpoint"):
            load_run_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_run_checkpoint(path, {"stage": "done"})
        payload = json.loads(path.read_text())
        payload["format"] = 99
        del payload["content_hash"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format"):
            load_run_checkpoint(path)

    def test_sim_state_round_trip(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 12, seed=6))
        state = json.loads(json.dumps(sim_run_state(sim)))  # JSON-safe
        fresh = FaultSimulator(s27())
        epoch_before = fresh.state_epoch
        restore_sim_run_state(fresh, state)
        assert fresh.state_epoch == epoch_before + 1
        assert fresh.detected_count == sim.detected_count
        assert fresh.detections == sim.detections
        assert fresh.divergence == sim.divergence
        assert fresh.good_state.ff_values == sim.good_state.ff_values
        assert fresh.vectors_applied == sim.vectors_applied

    def test_fault_digest_guard(self, s27_circuit, minifsm_circuit):
        sim = FaultSimulator(s27_circuit)
        state = sim_run_state(sim)
        other = FaultSimulator(minifsm_circuit)
        with pytest.raises(CheckpointError, match="fault list"):
            restore_sim_run_state(other, state)

    def test_fault_digest_orders(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        digest = fault_list_digest(sim.faults)
        assert digest == fault_list_digest(list(sim.faults))
        assert digest != fault_list_digest(list(reversed(sim.faults)))
