"""Tests for the four-phase fitness functions (paper §III-B)."""

import pytest

from repro.core import (
    FitnessContext,
    Phase,
    fitness_for_phase,
    phase1_fitness,
    phase2_fitness,
    phase3_fitness,
    phase4_fitness,
)
from repro.faults.simulator import CandidateEval


def make_eval(**kwargs):
    defaults = dict(
        frames=1, detected=0, prop_final=0, prop_sum=0, faulty_events=0,
        good_events=0, ffs_set=0, ffs_changed=0, num_faults_simulated=100,
        num_ffs=10,
    )
    defaults.update(kwargs)
    return CandidateEval(**defaults)


CTX = FitnessContext(num_ffs=10, num_nodes=200)


class TestPhase1:
    def test_formula(self):
        ev = make_eval(ffs_set=7, ffs_changed=3)
        assert phase1_fitness(ev, CTX) == pytest.approx(7 + 3 / 10)

    def test_set_dominates_changed(self):
        # The changed-fraction tiebreak is < 1 whenever not every FF
        # toggles, so an extra initialized FF always wins.
        more_set = make_eval(ffs_set=5, ffs_changed=0)
        fewer_set = make_eval(ffs_set=4, ffs_changed=9)
        assert phase1_fitness(more_set, CTX) > phase1_fitness(fewer_set, CTX)

    def test_no_ffs(self):
        ctx = FitnessContext(num_ffs=0, num_nodes=50)
        assert phase1_fitness(make_eval(), ctx) == 0.0


class TestPhase2:
    def test_formula(self):
        ev = make_eval(detected=3, prop_final=40)
        assert phase2_fitness(ev, CTX) == pytest.approx(3 + 40 / (100 * 10))

    def test_detection_dominates_propagation(self):
        detects = make_eval(detected=1, prop_final=0)
        propagates = make_eval(detected=0, prop_final=100)  # max possible
        assert phase2_fitness(detects, CTX) > phase2_fitness(propagates, CTX)

    def test_zero_faults_simulated(self):
        ev = make_eval(detected=0, prop_final=0, num_faults_simulated=0)
        assert phase2_fitness(ev, CTX) == 0.0


class TestPhase3:
    def test_extends_phase2_with_activity(self):
        ev = make_eval(detected=2, prop_final=10, good_events=50, faulty_events=150)
        base = phase2_fitness(ev, CTX)
        expected = base + 2 * (50 + 150) / (200 * 100)
        assert phase3_fitness(ev, CTX) == pytest.approx(expected)

    def test_detection_still_dominates(self):
        detects = make_eval(detected=1)
        busy = make_eval(
            detected=0, prop_final=100,
            good_events=200 * 100, faulty_events=0,
        )
        # Even at the activity term's ceiling the detecting vector wins...
        # activity contributes 2*events/(nodes*faults) <= 2 when events
        # max out, so dominance needs the paper's "offset" framing: the
        # propagation and activity terms are small for realistic event
        # counts.  Check the realistic regime:
        realistic = make_eval(detected=0, prop_final=50, good_events=150,
                              faulty_events=300)
        assert phase3_fitness(detects, CTX) > phase3_fitness(realistic, CTX)

    def test_more_activity_higher_fitness(self):
        quiet = make_eval(good_events=10, faulty_events=10)
        busy = make_eval(good_events=100, faulty_events=200)
        assert phase3_fitness(busy, CTX) > phase3_fitness(quiet, CTX)


class TestPhase4:
    def test_uses_prop_sum(self):
        ev = make_eval(detected=1, prop_final=5, prop_sum=60, frames=8)
        assert phase4_fitness(ev, CTX) == pytest.approx(1 + 60 / (100 * 10))

    def test_longer_propagation_rewarded(self):
        short = make_eval(prop_sum=10)
        long = make_eval(prop_sum=80)
        assert phase4_fitness(long, CTX) > phase4_fitness(short, CTX)


class TestDispatch:
    @pytest.mark.parametrize("phase,fn", [
        (Phase.INITIALIZATION, phase1_fitness),
        (Phase.DETECTION, phase2_fitness),
        (Phase.ACTIVITY, phase3_fitness),
        (Phase.SEQUENCES, phase4_fitness),
    ])
    def test_routes(self, phase, fn):
        ev = make_eval(detected=2, prop_final=7, prop_sum=9, ffs_set=3,
                       ffs_changed=1, good_events=11, faulty_events=13)
        assert fitness_for_phase(phase, ev, CTX) == fn(ev, CTX)

    def test_all_fitnesses_nonnegative(self):
        """Required by the proportionate selection schemes."""
        ev = make_eval()
        for phase in Phase:
            assert fitness_for_phase(phase, ev, CTX) >= 0.0

    def test_context_validation(self):
        with pytest.raises(ValueError):
            FitnessContext(num_ffs=3, num_nodes=0)
