"""The job service: lifecycle, warm cache, bit-identity, recovery.

Four layers under test (docs/SERVICE.md):

* the in-process pieces — :func:`~repro.service.jobs.parse_job`
  validation, :class:`~repro.service.state.WarmRegistry` lease/release
  and eviction, the sealed :class:`~repro.service.jobs.JobLedger`;
* the :class:`~repro.service.jobs.JobManager` — lifecycle, coalescing,
  fsim batching, and bit-identity against direct library runs;
* the HTTP front over a real localhost socket — endpoints, error
  codes, the live event stream (validated against the telemetry
  schema), and warm-cache counters via ``GET /healthz``;
* the crash contract — SIGKILL a live ``gatest serve`` mid-run,
  restart on the same state dir, and the recovered job finishes
  bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.circuit import s27
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator
from repro.service import (
    JobLedger,
    JobManager,
    JobValidationError,
    ServiceClient,
    ServiceError,
    ServiceServer,
    WarmRegistry,
    circuit_key,
    parse_job,
    sim_key,
)
from repro.telemetry import TelemetryCollector, validate_trace

from .conftest import random_vectors

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


class TestParseJob:
    def test_run_spec_roundtrips_config(self):
        spec = parse_job(
            {"kind": "run", "circuit": "s27", "config": {"seed": 7, "word_width": 16}}
        )
        assert spec.kind == "run"
        assert spec.config.seed == 7
        assert spec.config.word_width == 16
        assert spec.checkpoint_every >= 1

    def test_fsim_spec(self):
        spec = parse_job(
            {"kind": "fsim", "circuit": "s27", "vectors": [[0, 1], [1, 0]]}
        )
        assert spec.vectors == [[0, 1], [1, 0]]

    @pytest.mark.parametrize(
        "payload, message",
        [
            ("nope", "JSON object"),
            ({}, "'kind'"),
            ({"kind": "zap"}, "'kind'"),
            ({"kind": "run"}, "'circuit'"),
            ({"kind": "run", "circuit": "s27", "config": 3}, "'config'"),
            ({"kind": "run", "circuit": "s27", "config": {"bogus": 1}}, "config"),
            ({"kind": "run", "circuit": "s27", "scale": -1}, "'scale'"),
            ({"kind": "run", "circuit": "s27", "vectors": []}, "unknown field"),
            ({"kind": "fsim", "circuit": "s27"}, "'vectors'"),
            ({"kind": "fsim", "circuit": "s27", "vectors": [[0, 2]]}, "0/1"),
            ({"kind": "fsim", "circuit": "s27", "vectors": [[0], [0, 1]]}, "bits"),
        ],
    )
    def test_rejections(self, payload, message):
        with pytest.raises(JobValidationError, match=re.escape(message)):
            parse_job(payload)

    def test_identical_payloads_share_a_digest(self):
        a = parse_job({"kind": "run", "circuit": "s27", "config": {"seed": 1}})
        b = parse_job({"config": {"seed": 1}, "circuit": "s27", "kind": "run"})
        c = parse_job({"kind": "run", "circuit": "s27", "config": {"seed": 2}})
        assert a.digest == b.digest != c.digest


# ----------------------------------------------------------------------
# Warm registry
# ----------------------------------------------------------------------


class TestWarmRegistry:
    CONFIG = TestGenConfig(seed=1)

    def test_lease_miss_then_hit(self):
        collector = TelemetryCollector()
        registry = WarmRegistry(collector=collector, max_sims=4)
        key = circuit_key("s27", 1.0, 0)
        sim = registry.lease(key, self.CONFIG)
        assert collector.counters["service.cache.misses"] == 1
        registry.release(key, self.CONFIG, sim)
        again = registry.lease(key, self.CONFIG)
        assert again is sim
        assert collector.counters["service.cache.hits"] == 1
        registry.close()

    def test_released_simulator_is_back_at_powerup(self):
        registry = WarmRegistry(max_sims=4)
        key = circuit_key("s27", 1.0, 0)
        sim = registry.lease(key, self.CONFIG)
        sim.commit(random_vectors(s27(), 4))
        assert sim.vectors_applied == 4
        registry.release(key, self.CONFIG, sim)
        again = registry.lease(key, self.CONFIG)
        assert again.vectors_applied == 0
        assert again.detected_count == 0
        registry.close()

    def test_config_change_is_a_different_key(self):
        key = circuit_key("s27", 1.0, 0)
        assert sim_key(key, self.CONFIG) != sim_key(
            key, TestGenConfig(seed=1, word_width=16)
        )
        # seed alone shapes the RNG, not the simulator: same key.
        assert sim_key(key, self.CONFIG) == sim_key(key, TestGenConfig(seed=9))

    def test_builtin_circuit_key_ignores_seed(self):
        assert circuit_key("s27", 1.0, 3) == circuit_key("s27", 2.0, 8)
        assert circuit_key("s298", 0.3, 3) != circuit_key("s298", 0.3, 8)

    def test_lru_eviction_closes_the_evicted_simulator(self):
        collector = TelemetryCollector()
        registry = WarmRegistry(collector=collector, max_sims=1)
        key = circuit_key("s27", 1.0, 0)
        other = TestGenConfig(seed=1, word_width=16)
        sim_a = registry.lease(key, self.CONFIG)
        sim_b = registry.lease(key, other)
        registry.release(key, self.CONFIG, sim_a)
        registry.release(key, other, sim_b)
        assert collector.counters["service.cache.evictions"] == 1
        assert registry.stats()["sims"] == 1
        registry.close()


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------


class TestJobLedger:
    def test_roundtrip(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        ledger.append({"event": "accepted", "id": "j1", "seq": 1, "payload": {}})
        ledger.append({"event": "completed", "id": "j1", "result": {"x": 1}})
        records = ledger.load()
        assert [r["event"] for r in records] == ["accepted", "completed"]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path)
        ledger.append({"event": "accepted", "id": "j1", "seq": 1, "payload": {}})
        with open(path, "a") as handle:
            handle.write('{"event": "completed", "id"')  # torn mid-append
        assert [r["event"] for r in ledger.load()] == ["accepted"]

    def test_bitflipped_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path)
        ledger.append({"event": "accepted", "id": "j1", "seq": 1, "payload": {}})
        ledger.append({"event": "completed", "id": "j1", "result": None})
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"accepted"', '"rejected"')
        path.write_text("\n".join(lines) + "\n")
        assert [r["event"] for r in ledger.load()] == ["completed"]


# ----------------------------------------------------------------------
# Manager lifecycle (no HTTP)
# ----------------------------------------------------------------------


class TestJobManager:
    def _manager(self, tmp_path, **kw):
        kw.setdefault("workers", 1)
        collector = kw.pop("collector", TelemetryCollector())
        return JobManager(tmp_path / "state", collector=collector, **kw), collector

    def test_run_job_matches_direct_library_run(self, tmp_path):
        reference = GaTestGenerator(s27(), TestGenConfig(seed=3)).run()
        manager, _ = self._manager(tmp_path)
        try:
            job, coalesced = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 3}}
            )
            assert not coalesced
            assert manager.wait_idle(timeout=300)
            assert job.status == "done", job.error
            assert job.result["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            assert job.result["detected"] == reference.detected
            assert job.result["total_faults"] == reference.total_faults
        finally:
            manager.close()

    def test_warm_repeat_skips_kernel_compile(self, tmp_path):
        manager, collector = self._manager(tmp_path)
        try:
            first, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
            )
            assert manager.wait_idle(timeout=300)
            assert first.status == "done", first.error
            built_cold = {
                name: value
                for name, value in collector.counters.items()
                if name in ("codegen.kernels.built", "numpy.plan.built")
                or name.startswith("numpy.plan.")
            }
            second, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 2}}
            )
            assert manager.wait_idle(timeout=300)
            assert second.status == "done", second.error
            built_warm = {
                name: value
                for name, value in collector.counters.items()
                if name in built_cold or name.startswith("numpy.plan.")
            }
            assert built_warm == built_cold  # no new kernel/plan builds
            assert collector.counters["service.cache.hits"] == 1
            assert collector.counters["service.cache.misses"] == 1
        finally:
            manager.close()

    def test_identical_requests_coalesce(self, tmp_path):
        manager, collector = self._manager(tmp_path)
        try:
            payload = {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
            a, first = manager.submit(payload)
            b, second = manager.submit(payload)
            assert not first and second
            assert a is b
            assert collector.counters["service.jobs.coalesced"] == 1
            assert manager.wait_idle(timeout=300)
        finally:
            manager.close()

    def test_fsim_batch_matches_commit_per_job(self, tmp_path):
        circuit = s27()
        batches = [random_vectors(circuit, 4, seed=s) for s in range(3)]
        expected = []
        for vectors in batches:
            sim = FaultSimulator(circuit)
            sim.commit(vectors)
            expected.append(sim.detected_count)
            sim.close()
        manager, collector = self._manager(tmp_path)
        try:
            jobs = [
                manager.submit(
                    {"kind": "fsim", "circuit": "s27", "seed": i, "vectors": v}
                )[0]
                for i, v in enumerate(batches)
            ]
            assert manager.wait_idle(timeout=300)
            for job, want in zip(jobs, expected):
                assert job.status == "done", job.error
                assert job.result["detected"] == want
        finally:
            manager.close()

    def test_fsim_width_mismatch_fails_cleanly(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        try:
            job, _ = manager.submit(
                {"kind": "fsim", "circuit": "s27", "vectors": [[0, 1]]}
            )
            assert manager.wait_idle(timeout=300)
            assert job.status == "failed"
            assert "primary inputs" in job.error
        finally:
            manager.close()

    def test_unknown_circuit_rejected_at_submit(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        try:
            with pytest.raises(JobValidationError, match="unknown circuit"):
                manager.submit(
                    {"kind": "run", "circuit": "never-heard-of-it",
                     "config": {"seed": 1}}
                )
        finally:
            manager.close()

    def test_restart_recovers_finished_and_unfinished_jobs(self, tmp_path):
        manager, _ = self._manager(tmp_path)
        done_payload = {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
        job, _ = manager.submit(done_payload)
        assert manager.wait_idle(timeout=300)
        assert job.status == "done", job.error
        result = job.result
        # Forge an accepted-but-never-finished ledger entry (what a
        # SIGKILL mid-run leaves behind).
        manager.ledger.append(
            {"event": "accepted", "id": "j9999-deadbeef", "seq": 9999,
             "payload": {"kind": "run", "circuit": "s27",
                         "config": {"seed": 6}}}
        )
        manager.close()

        collector = TelemetryCollector()
        revived = JobManager(tmp_path / "state", collector=collector, workers=1)
        try:
            restored = revived.get(job.id)
            assert restored is not None
            assert restored.status == "done"
            assert restored.result == result
            assert revived.wait_idle(timeout=300)
            recovered = revived.get("j9999-deadbeef")
            assert recovered is not None
            assert recovered.status == "done", recovered.error
            assert collector.counters["service.jobs.resumed"] == 1
        finally:
            revived.close()


# ----------------------------------------------------------------------
# HTTP over a real localhost socket
# ----------------------------------------------------------------------


@pytest.fixture
def live_service(tmp_path):
    """A served JobManager on an ephemeral localhost port."""
    collector = TelemetryCollector(source="repro.service")
    manager = JobManager(tmp_path / "state", collector=collector, workers=1)
    server = ServiceServer(manager, port=0)
    ready = threading.Event()

    def run():
        async def go():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(go())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to bind"
    client = ServiceClient(port=server.port)
    yield client, collector
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread failed to shut down"


class TestHttpApi:
    def test_healthz(self, live_service):
        client, _ = live_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled", "preempted"
        }
        assert health["cache"]["capacity"] >= 1
        assert health["queue"]["depth"] == 0
        assert "by_priority" in health["queue"]
        assert health["tier"]["enabled"] is True
        assert health["tier"]["degraded"] is False
        assert health["tier"]["restarts"] == 0

    def test_job_lifecycle_and_listing(self, live_service):
        client, _ = live_service
        job = client.submit(
            {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
        )
        assert job["status"] in ("queued", "running")
        done = client.wait(job["id"], timeout=300)
        assert done["status"] == "done", done["error"]
        assert done["result"]["fault_coverage"] > 0.5
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_run_result_matches_cli_bit_for_bit(self, live_service, tmp_path):
        client, _ = live_service
        out = tmp_path / "cli-tests.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", "s27", "--seed", "5",
             "-o", str(out)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        cli_vectors = [
            [int(ch) for ch in line]
            for line in out.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        job = client.submit(
            {"kind": "run", "circuit": "s27", "config": {"seed": 5}}
        )
        done = client.wait(job["id"], timeout=300)
        assert done["status"] == "done", done["error"]
        assert done["result"]["test_sequence"] == cli_vectors

    def test_warm_counters_via_healthz(self, live_service):
        client, _ = live_service
        first = client.submit(
            {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
        )
        client.wait(first["id"], timeout=300)
        cold = client.healthz()["counters"]
        second = client.submit(
            {"kind": "run", "circuit": "s27", "config": {"seed": 2}}
        )
        client.wait(second["id"], timeout=300)
        warm = client.healthz()["counters"]
        assert warm["service.cache.hits"] == 1
        assert warm["service.cache.misses"] == cold["service.cache.misses"] == 1
        for name in ("codegen.kernels.built", "numpy.plan.built"):
            assert warm.get(name, 0) == cold.get(name, 0), name

    def test_event_stream_is_a_valid_trace(self, live_service):
        client, _ = live_service
        job = client.submit(
            {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
        )
        records = list(client.events(job["id"]))
        validate_trace(records)  # meta first, every record schema-valid
        kinds = {record["kind"] for record in records}
        assert {"meta", "generation", "stage", "span", "counter"} <= kinds
        # The stream only completes once the job has.
        assert client.job(job["id"])["status"] == "done"

    def test_error_codes(self, live_service):
        client, _ = live_service
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "zap"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.job("j0000-nothere")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nowhere")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/healthz")
        assert err.value.status == 405


# ----------------------------------------------------------------------
# SIGKILL the whole service, restart, resume bit-identically
# ----------------------------------------------------------------------


class TestKillServiceEndToEnd:
    def _serve(self, state_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_CHAOS", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--state-dir", str(state_dir), "--workers", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"http://[^:]+:(\d+)", line)
        assert match, f"no listening line: {line!r}"
        return proc, ServiceClient(port=int(match.group(1)))

    def test_sigkill_then_restart_resumes_bit_identically(self, tmp_path):
        reference = GaTestGenerator(s27(), TestGenConfig(seed=4)).run()
        state = tmp_path / "state"

        victim, client = self._serve(state)
        try:
            job = client.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 4},
                 "checkpoint_every": 1}
            )
            # Checkpoints are keyed by the deterministic run key (so
            # resubmissions resume), not the job id — watch for any.
            ckpt_dir = state / "checkpoints"
            deadline = time.monotonic() + 60
            while not list(ckpt_dir.glob("*.ckpt")):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.005)
        finally:
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

        survivor, client = self._serve(state)
        try:
            done = client.wait(job["id"], timeout=300)
            assert done["status"] == "done", done["error"]
            assert done["result"]["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            assert done["result"]["detected"] == reference.detected
            health = client.healthz()
            assert health["counters"]["service.jobs.resumed"] == 1
            client.shutdown()
            assert survivor.wait(timeout=30) == 0
        finally:
            if survivor.poll() is None:  # pragma: no cover - cleanup
                survivor.kill()
                survivor.wait(timeout=30)
