"""Campaign resilience: journaled resume, fault-isolated seed pools,
and worker telemetry shipback (docs/ROBUSTNESS.md, docs/TELEMETRY.md).

Chaos scoping: the seed pool numbers worker attempts with monotonic
``task_seq`` values in submission order — with ``jobs >= len(seeds)``,
seed *i* (0-based) draws sequence number *i* on its first attempt and
fresh numbers on retries.  The tests brute-force a ``ChaosConfig`` seed
whose crash/hang decisions hit exactly the sequence numbers of one
victim seed, so injected failures are scoped deterministically.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.checkpoint import CheckpointError, seal_journal_record
from repro.core.config import TestGenConfig
from repro.harness import (
    CampaignJournal,
    campaign_scope,
    run_gatest,
    set_default_eval_jobs,
)
from repro.harness.campaign import result_from_json, result_to_json
from repro.harness.experiments import main as experiments_main
from repro.parallel.resilience import ChaosConfig, RetryPolicy
from repro.telemetry import TelemetryCollector, use

SMALL = dict(scale=0.1)
CIRCUIT = "s298"


def _drain_children(timeout=10.0):
    """Wait for worker processes to exit; returns the stragglers."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children()


def _chaos_seed(predicate, crash=0.0, hang=0.0, limit=100_000):
    """Find a ChaosConfig seed whose decisions satisfy ``predicate``."""
    for seed in range(limit):
        cfg = ChaosConfig(crash=crash, hang=hang, seed=seed, hang_seconds=60.0)
        if predicate(cfg):
            return cfg
    raise AssertionError("no chaos seed found")  # pragma: no cover


def _run_serial(seeds):
    return run_gatest(CIRCUIT, TestGenConfig(), seeds, scale=0.1, jobs=1)


def _fingerprint(result):
    """Every deterministic field (elapsed wall time excluded)."""
    return (result.circuit_name, result.test_sequence, result.detected,
            result.total_faults, result.ga_evaluations, result.ga_runs,
            result.phase_transitions, result.trace, result.detections)


class TestResultRoundTrip:
    def test_result_survives_json(self):
        result = _run_serial([3]).runs[0]
        rebuilt = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert rebuilt == result

    def test_malformed_result_refused(self):
        with pytest.raises(CheckpointError, match="malformed"):
            result_from_json({"circuit_name": "s298"})


class TestJournalGuards:
    def _fresh(self, tmp_path, **kwargs):
        params = dict(table="4", scale=0.1, seeds=[1, 2])
        params.update(kwargs)
        return CampaignJournal.create(tmp_path / "j.jsonl", **params)

    def test_resume_missing_journal_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            self._fresh(tmp_path, resume=True)

    def test_corrupt_line_refused_with_line_number(self, tmp_path):
        journal = self._fresh(tmp_path)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "d" * 64,
                            result=result_to_json(_run_serial([1]).runs[0]))
        path = tmp_path / "j.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"seed":1', '"seed":2', 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match=r"j\.jsonl:2.*content-hash"):
            self._fresh(tmp_path, resume=True)

    def test_unsealed_line_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._fresh(tmp_path)
        path.write_text(path.read_text() + '{"kind":"campaign-cell"}\n')
        with pytest.raises(CheckpointError, match="no seal"):
            self._fresh(tmp_path, resume=True)

    def test_non_json_line_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._fresh(tmp_path)
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            self._fresh(tmp_path, resume=True)

    def test_stale_schema_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = seal_journal_record(
            {"kind": "campaign-header", "format": 99, "table": "4",
             "scale": 0.1, "seeds": [1, 2]}
        )
        path.write_text(json.dumps(header, sort_keys=True) + "\n")
        with pytest.raises(CheckpointError, match="format 99"):
            self._fresh(tmp_path, resume=True)

    def test_different_campaign_identity_refused(self, tmp_path):
        self._fresh(tmp_path)
        with pytest.raises(CheckpointError, match="different campaign"):
            self._fresh(tmp_path, resume=True, seeds=[1, 2, 3])

    def test_config_digest_mismatch_refused(self, tmp_path):
        journal = self._fresh(tmp_path)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            error="boom", attempts=1)
        with pytest.raises(CheckpointError, match="config changed"):
            journal.lookup(CIRCUIT, "lbl", 1, 0.1, "b" * 64)

    def test_binding_change_refused(self, tmp_path):
        journal = self._fresh(tmp_path)
        journal.bind(["s298"], {"lbl": "a" * 64})
        resumed = self._fresh(tmp_path, resume=True)
        with pytest.raises(CheckpointError, match="digests changed"):
            resumed.bind(["s298"], {"lbl": "b" * 64})

    def test_failed_cell_is_not_replayed(self, tmp_path):
        journal = self._fresh(tmp_path)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            error="boom", attempts=3)
        assert journal.lookup(CIRCUIT, "lbl", 1, 0.1, "a" * 64) is None
        assert journal.cells(status="failed")[0]["attempts"] == 3


class TestCampaignReplay:
    def test_completed_cells_replay_bit_identically(self, tmp_path):
        collector = TelemetryCollector(source="test")
        with campaign_scope(CampaignJournal.create(
                tmp_path / "j.jsonl", table="t", scale=0.1, seeds=[1, 2],
                collector=collector)):
            first = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1,
                               collector=collector)
        assert collector.counters.get("campaign.cells.completed") == 2
        resumed = CampaignJournal.create(
            tmp_path / "j.jsonl", table="t", scale=0.1, seeds=[1, 2],
            resume=True, collector=collector)
        with campaign_scope(resumed):
            second = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1,
                                collector=collector)
        assert collector.counters.get("campaign.resumed") == 1
        assert collector.counters.get("campaign.cells.skipped") == 2
        assert [r.test_sequence for r in second.runs] == \
            [r.test_sequence for r in first.runs]
        assert second.runs == first.runs

    def test_experiments_resume_output_is_byte_identical(self, tmp_path, capsys):
        argv = ["--table", "4", "--scale", "0.1", "--seeds", "1",
                "--circuits", CIRCUIT, "--journal", str(tmp_path / "j.jsonl")]
        assert experiments_main(argv) == 0
        fresh = capsys.readouterr().out
        assert experiments_main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == fresh


class TestAggregationGuard:
    def test_total_faults_disagreement_fails_loudly(self, monkeypatch):
        import repro.harness.runner as runner

        real = runner._run_one_seed

        def skewed(compiled, config, seed, collector=None):
            result = real(compiled, config, seed, collector)
            if seed == 2:
                result.total_faults += 1
            return result

        monkeypatch.setattr(runner, "_run_one_seed", skewed)
        with pytest.raises(RuntimeError, match="disagree on the collapsed"):
            run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=1)


class TestSeedPool:
    def test_pool_matches_serial_bit_identically(self):
        serial = _run_serial([1, 2])
        pooled = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2)
        assert not pooled.failed_seeds
        assert list(map(_fingerprint, pooled.runs)) == \
            list(map(_fingerprint, serial.runs))
        assert not _drain_children()

    def test_chaos_crash_scoped_to_one_seed(self, monkeypatch):
        # Seed 2 draws task_seq 1, then 2 and 3 on its retries; seed 1
        # draws task_seq 0.  Crash every attempt of seed 2 only.
        chaos = _chaos_seed(
            lambda c: c.decide(0) is None
            and all(c.decide(i) == "crash" for i in (1, 2, 3)),
            crash=0.35,
        )
        monkeypatch.setenv("REPRO_CHAOS", f"crash:{chaos.crash},seed:{chaos.seed}")
        monkeypatch.setenv("REPRO_SEED_RETRIES", "2")
        collector = TelemetryCollector(source="test")
        agg = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2,
                         collector=collector)
        assert [f.seed for f in agg.failed_seeds] == [2]
        assert agg.failed_seeds[0].attempts == 3
        assert collector.counters.get("harness.seed.retries") == 2
        assert len(agg.runs) == 1
        monkeypatch.delenv("REPRO_CHAOS")
        clean = _run_serial([1, 2])
        assert _fingerprint(agg.runs[0]) == _fingerprint(clean.runs[0])
        assert agg.total_faults == clean.total_faults
        assert not _drain_children()

    def test_crashed_seed_recovers_on_retry(self, monkeypatch):
        # Crash only the *first* attempt of seed 1 (task_seq 0); its
        # retry (task_seq 2) and seed 2 (task_seq 1) run clean.
        chaos = _chaos_seed(
            lambda c: c.decide(0) == "crash"
            and c.decide(1) is None and c.decide(2) is None,
            crash=0.35,
        )
        monkeypatch.setenv("REPRO_CHAOS", f"crash:{chaos.crash},seed:{chaos.seed}")
        collector = TelemetryCollector(source="test")
        agg = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2,
                         collector=collector)
        assert not agg.failed_seeds
        assert collector.counters.get("harness.seed.retries") == 1
        monkeypatch.delenv("REPRO_CHAOS")
        assert list(map(_fingerprint, agg.runs)) == \
            list(map(_fingerprint, _run_serial([1, 2]).runs))
        assert not _drain_children()

    def test_hung_seed_times_out_and_fails(self, monkeypatch):
        chaos = _chaos_seed(
            lambda c: c.decide(0) is None and c.decide(1) == "hang",
            hang=0.35,
        )
        monkeypatch.setenv(
            "REPRO_CHAOS",
            f"hang:{chaos.hang},seed:{chaos.seed},hang_seconds:60",
        )
        agg = run_gatest(
            CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2,
            retry=RetryPolicy(max_retries=0, task_timeout=1.0),
        )
        assert [f.seed for f in agg.failed_seeds] == [2]
        assert "timeout" in agg.failed_seeds[0].error
        assert len(agg.runs) == 1
        assert not _drain_children()

    def test_failed_seeds_journal_as_failed_cells(self, tmp_path, monkeypatch):
        chaos = _chaos_seed(
            lambda c: c.decide(0) is None and c.decide(1) == "crash",
            crash=0.35,
        )
        monkeypatch.setenv("REPRO_CHAOS", f"crash:{chaos.crash},seed:{chaos.seed}")
        monkeypatch.setenv("REPRO_SEED_RETRIES", "0")
        journal = CampaignJournal.create(tmp_path / "j.jsonl", table="t",
                                         scale=0.1, seeds=[1, 2])
        with campaign_scope(journal):
            agg = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2)
        assert [f.seed for f in agg.failed_seeds] == [2]
        failed = journal.cells(status="failed")
        assert [c["seed"] for c in failed] == [2]
        # A resumed campaign re-attempts exactly the failed cell.
        monkeypatch.delenv("REPRO_CHAOS")
        resumed = CampaignJournal.create(tmp_path / "j.jsonl", table="t",
                                         scale=0.1, seeds=[1, 2], resume=True)
        with campaign_scope(resumed):
            healed = run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1,
                                jobs=2)
        assert not healed.failed_seeds
        assert not resumed.cells(status="failed")
        assert list(map(_fingerprint, healed.runs)) == \
            list(map(_fingerprint, _run_serial([1, 2]).runs))


class TestWorkerTelemetryShipback:
    def test_worker_traces_merge_under_seed_scopes(self):
        collector = TelemetryCollector(source="test")
        with use(collector):
            run_gatest(CIRCUIT, TestGenConfig(), [1, 2], scale=0.1, jobs=2,
                       collector=collector)
        assert collector.counters.get("worker.trace.merged") == 2
        scopes = {r.get("scope") for r in collector.events("span")}
        assert {"worker.1", "worker.2"} <= scopes
        worker_spans = [r for r in collector.events("span")
                        if r.get("scope") == "worker.1"]
        assert all(r["path"].startswith("worker.1/") for r in worker_spans)
        # Worker-side counters folded into campaign-wide aggregates.
        assert collector.counters.get("ga.evaluations", 0) > 0

    def test_eval_jobs_default_reaches_seed_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        set_default_eval_jobs(2)
        try:
            collector = TelemetryCollector(source="test")
            # word_width=8 splits s298's fault list into several word
            # groups so within-run sharding has something to shard.
            agg = run_gatest(CIRCUIT, TestGenConfig(word_width=8), [1, 2],
                             scale=0.1, jobs=2, collector=collector)
        finally:
            set_default_eval_jobs(None)
        assert not agg.failed_seeds
        # The sharded-evaluation counter can only come from inside the
        # seed workers — proof the harness default crossed the pool.
        assert collector.counters.get("parallel.evaluate.sharded", 0) > 0
        assert not _drain_children()


class TestCampaignKillResumeEndToEnd:
    """SIGKILL a journaled campaign, resume it, compare output bytes."""

    ARGS = ["--table", "4", "--scale", "0.1", "--seeds", "2",
            "--circuits", CIRCUIT]

    def _campaign(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ) + "/src"
        env.pop("REPRO_CHAOS", None)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.harness.experiments", *self.ARGS,
             *extra],
            env=env, cwd=tmp_path,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = self._campaign(tmp_path)
        ref_out, ref_err = reference.communicate(timeout=600)
        assert reference.returncode == 0, ref_err.decode()

        journal = tmp_path / "j.jsonl"
        victim = self._campaign(tmp_path, "--journal", str(journal))
        # Kill as soon as the first completed cell lands in the journal.
        deadline = time.monotonic() + 120
        while victim.poll() is None:
            if journal.exists() and "campaign-cell" in journal.read_text():
                break
            if time.monotonic() > deadline:  # pragma: no cover
                victim.kill()
                pytest.fail("no journaled cell appeared within 120s")
            time.sleep(0.002)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        assert "campaign-cell" in journal.read_text()

        trace = tmp_path / "trace.jsonl"
        resumer = self._campaign(
            tmp_path, "--journal", str(journal), "--resume",
            "--trace", str(trace),
        )
        res_out, res_err = resumer.communicate(timeout=600)
        assert resumer.returncode == 0, res_err.decode()

        # Everything up to the trailing trace-summary line must match
        # the uninterrupted run byte for byte.
        table_out = res_out.decode().rsplit("wrote ", 1)[0]
        assert table_out == ref_out.decode()

        counters = {
            r["name"]: r["value"]
            for r in map(json.loads, trace.read_text().splitlines())
            if r.get("kind") == "counter"
        }
        assert counters.get("campaign.resumed") == 1
        assert counters.get("campaign.cells.skipped", 0) > 0
