"""Tests for profiles and the synthetic circuit generator."""

import pytest

from repro.circuit import (
    ISCAS89_PROFILES,
    CircuitProfile,
    Severity,
    get_profile,
    profile_of,
    synthesize,
    synthesize_named,
    validate,
    write_bench,
)
from repro.circuit.profiles import (
    TABLE2_CIRCUITS,
    TABLE3_CIRCUITS,
    TABLE6_CIRCUITS,
    TABLE7_CIRCUITS,
)

SMALL = ["s298", "s344", "s386", "s526", "s820", "s1196"]


class TestProfiles:
    def test_table2_circuits_have_profiles(self):
        for name in TABLE2_CIRCUITS:
            assert name in ISCAS89_PROFILES

    def test_study_lists_subset_of_table2(self):
        for names in (TABLE3_CIRCUITS, TABLE6_CIRCUITS, TABLE7_CIRCUITS):
            assert set(names) <= set(TABLE2_CIRCUITS)

    def test_paper_table2_values_spot_checks(self):
        p = get_profile("s298")
        assert (p.n_pi, p.seq_depth, p.total_faults) == (3, 8, 308)
        p = get_profile("s5378")
        assert (p.n_pi, p.seq_depth, p.total_faults) == (35, 36, 4603)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("s999")

    def test_scaled_preserves_pis_and_scales_depth(self):
        p = get_profile("s1423").scaled(0.25)
        assert p.n_pi == 17
        assert p.seq_depth == round(10 * 0.25)
        assert p.n_ff == round(74 * 0.25)
        assert p.total_faults is None

    def test_scaled_depth_floor_two(self):
        p = get_profile("s1423").scaled(0.1)  # depth 10 * 0.1 -> floor 2
        assert p.seq_depth == 2

    def test_scaled_depth_capped_by_ffs(self):
        p = get_profile("s820").scaled(0.1)  # only 1 FF left
        assert p.seq_depth == 1

    def test_scaled_identity(self):
        p = get_profile("s298")
        assert p.scaled(1.0) is p

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            get_profile("s298").scaled(0)
        with pytest.raises(ValueError):
            get_profile("s298").scaled(1.5)


class TestSynthesis:
    @pytest.mark.parametrize("name", SMALL)
    def test_profile_match(self, name):
        profile = get_profile(name)
        circuit = synthesize_named(name)
        assert circuit.num_inputs == profile.n_pi
        assert circuit.num_outputs == profile.n_po
        assert circuit.num_dffs == profile.n_ff
        assert circuit.sequential_depth() == profile.seq_depth
        # Gate count tracks the profile loosely (tree folding adds a few).
        assert abs(circuit.num_gates - profile.n_gates) <= 0.35 * profile.n_gates

    @pytest.mark.parametrize("name", SMALL)
    def test_deterministic_given_seed(self, name):
        a = write_bench(synthesize_named(name, seed=7, scale=0.3))
        b = write_bench(synthesize_named(name, seed=7, scale=0.3))
        assert a == b

    def test_different_seed_differs(self):
        a = write_bench(synthesize_named("s298", seed=1))
        b = write_bench(synthesize_named("s298", seed=2))
        assert a != b

    @pytest.mark.parametrize("name", SMALL)
    def test_no_error_violations(self, name):
        circuit = synthesize_named(name, scale=0.4)
        errors = [v for v in validate(circuit) if v.severity is Severity.ERROR]
        assert errors == []

    def test_scaled_depth_matches_scaled_profile(self):
        circuit = synthesize_named("s5378", scale=0.05)
        assert circuit.sequential_depth() == get_profile("s5378").scaled(0.05).seq_depth

    def test_profile_of_round_trip(self):
        circuit = synthesize_named("s386", scale=0.5)
        realized = profile_of(circuit)
        assert realized.n_pi == circuit.num_inputs
        assert realized.seq_depth == circuit.sequential_depth()

    def test_custom_profile(self):
        profile = CircuitProfile("tiny", n_pi=4, n_po=2, n_ff=5, n_gates=30, seq_depth=3)
        circuit = synthesize(profile, seed=1)
        assert circuit.num_dffs == 5
        assert circuit.sequential_depth() == 3

    def test_depth_one_profile(self):
        profile = CircuitProfile("flat", n_pi=3, n_po=1, n_ff=2, n_gates=12, seq_depth=1)
        circuit = synthesize(profile)
        assert circuit.sequential_depth() == 1


class TestSynthesizedTestability:
    """The substrate must be *testable* for the paper's dynamics to
    reproduce: random vectors must reach reasonable coverage and the
    deep core must initialize (DESIGN.md §3)."""

    def test_core_initializes_within_depth_frames(self):
        import random
        from repro.circuit.gates import X
        from repro.sim import SerialSimulator

        circuit = synthesize_named("s298", scale=0.5)
        depth = circuit.sequential_depth()
        sim = SerialSimulator(circuit)
        sim.begin(None)
        rng = random.Random(0)
        for _ in range(depth):
            sim.step([[rng.randint(0, 1) for _ in range(circuit.num_inputs)]])
        core_ffs = [
            k for k, ff in enumerate(circuit.dffs)
            if circuit.node_names[ff].startswith("cff")
        ]
        values = sim.state.ff_values
        assert all(values[k] != X for k in core_ffs)

    def test_random_vectors_reach_majority_coverage(self):
        import random
        from repro.faults import FaultSimulator

        circuit = synthesize_named("s298", scale=0.5)
        fsim = FaultSimulator(circuit)
        rng = random.Random(0)
        vectors = [
            [rng.randint(0, 1) for _ in range(circuit.num_inputs)]
            for _ in range(400)
        ]
        fsim.commit(vectors)
        assert fsim.fault_coverage > 0.5
