"""Tests for the Figure-2 phase state machine."""

import pytest

from repro.core import Phase, PhaseTracker


def make_tracker(limit=4):
    return PhaseTracker(progress_limit=limit)


class TestInitialization:
    def test_starts_in_phase1(self):
        assert make_tracker().phase is Phase.INITIALIZATION

    def test_moves_to_detection_when_all_set(self):
        tracker = make_tracker()
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        assert tracker.phase is Phase.DETECTION

    def test_stays_while_progressing(self):
        tracker = make_tracker(limit=2)
        tracker.record_vector(detected=0, ffs_set=1, all_ffs_set=False)
        tracker.record_vector(detected=0, ffs_set=2, all_ffs_set=False)
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=False)
        assert tracker.phase is Phase.INITIALIZATION

    def test_stagnation_escape(self):
        """Uninitializable circuits must not wedge phase 1 forever."""
        tracker = make_tracker(limit=3)
        tracker.record_vector(detected=0, ffs_set=1, all_ffs_set=False)  # improves
        for _ in range(2):
            tracker.record_vector(detected=0, ffs_set=1, all_ffs_set=False)
            assert tracker.phase is Phase.INITIALIZATION
        tracker.record_vector(detected=0, ffs_set=1, all_ffs_set=False)
        assert tracker.phase is Phase.DETECTION


class TestDetectionActivity:
    def detecting_tracker(self):
        tracker = make_tracker(limit=3)
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        return tracker

    def test_noncontributing_moves_to_activity(self):
        tracker = self.detecting_tracker()
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        assert tracker.phase is Phase.ACTIVITY
        assert tracker.noncontributing == 1

    def test_detection_returns_to_phase2_and_resets(self):
        tracker = self.detecting_tracker()
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        assert tracker.noncontributing == 2
        tracker.record_vector(detected=5, ffs_set=3, all_ffs_set=True)
        assert tracker.phase is Phase.DETECTION
        assert tracker.noncontributing == 0

    def test_exhaustion_at_progress_limit(self):
        tracker = self.detecting_tracker()
        for _ in range(3):
            assert not tracker.vectors_exhausted
            tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)
        assert tracker.vectors_exhausted

    def test_detecting_vector_in_detection_stays(self):
        tracker = self.detecting_tracker()
        tracker.record_vector(detected=2, ffs_set=3, all_ffs_set=True)
        assert tracker.phase is Phase.DETECTION


class TestTransitions:
    def test_transition_log(self):
        tracker = make_tracker(limit=2)
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)   # -> 2
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)   # -> 3
        tracker.record_vector(detected=1, ffs_set=3, all_ffs_set=True)   # -> 2
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)   # -> 3
        tracker.record_vector(detected=0, ffs_set=3, all_ffs_set=True)   # stays 3
        tracker.enter_sequences()
        phases = [p for _, p in tracker.transitions]
        assert phases == [
            Phase.INITIALIZATION, Phase.DETECTION, Phase.ACTIVITY,
            Phase.DETECTION, Phase.ACTIVITY, Phase.SEQUENCES,
        ]

    def test_enter_sequences_idempotent(self):
        tracker = make_tracker()
        tracker.enter_sequences()
        tracker.enter_sequences()
        assert sum(1 for _, p in tracker.transitions if p is Phase.SEQUENCES) == 1

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            PhaseTracker(progress_limit=0)
