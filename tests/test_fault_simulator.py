"""Tests for the PROOFS-style parallel-fault sequential fault simulator.

The key guarantee: the word-parallel machinery agrees exactly with a
naive scalar fault-at-a-time reference on every circuit and sequence.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import mini_fsm, resettable_counter, s27, synthesize_named
from repro.circuit.gates import X, eval_gate_scalar
from repro.faults import (
    STEM,
    Fault,
    FaultSimulator,
    FaultStatus,
    collapsed_fault_list,
)
from repro.sim import GoodState

from tests.conftest import random_vectors
from tests.test_sim import make_random_circuit


# ---------------------------------------------------------------------------
# Scalar fault-at-a-time reference
# ---------------------------------------------------------------------------

def reference_run(circuit, fault, vectors):
    """Simulate good and faulty machines scalar-wise; return detection."""

    def machine(active_fault):
        ff = {f: X for f in circuit.dffs}
        frames = []
        for vec in vectors:
            values = {}
            for j, pi in enumerate(circuit.inputs):
                values[pi] = vec[j]
            for f in circuit.dffs:
                values[f] = ff[f]
            if active_fault and active_fault.pin == STEM and active_fault.node in values:
                values[active_fault.node] = active_fault.stuck_at
            for node in circuit.topo_order:
                ins = []
                for pin, src in enumerate(circuit.fanins[node]):
                    v = values[src]
                    if (
                        active_fault
                        and active_fault.node == node
                        and active_fault.pin == pin
                    ):
                        v = active_fault.stuck_at
                    ins.append(v)
                v = eval_gate_scalar(circuit.node_types[node], ins)
                if active_fault and active_fault.pin == STEM and active_fault.node == node:
                    v = active_fault.stuck_at
                values[node] = v
            for f in circuit.dffs:
                v = values[circuit.fanins[f][0]]
                if active_fault and active_fault.node == f and active_fault.pin == 0:
                    v = active_fault.stuck_at
                ff[f] = v
            frames.append([values[po] for po in circuit.outputs])
        return frames

    good = machine(None)
    faulty = machine(fault)
    return any(
        g != X and f != X and g != f
        for gf, ff_ in zip(good, faulty)
        for g, f in zip(gf, ff_)
    )


def reference_detected_set(circuit, vectors):
    return {
        fault
        for fault in collapsed_fault_list(circuit)
        if reference_run(circuit, fault, vectors)
    }


# ---------------------------------------------------------------------------
# Agreement with the reference
# ---------------------------------------------------------------------------

class TestAgainstReference:
    @pytest.mark.parametrize("factory,seed,n", [
        (s27, 7, 30),
        (mini_fsm, 3, 25),
        (lambda: resettable_counter(3), 5, 25),
    ])
    def test_known_circuits(self, factory, seed, n):
        circuit = factory()
        vectors = random_vectors(circuit, n, seed=seed)
        sim = FaultSimulator(circuit)
        result = sim.commit(vectors)
        parallel = {f for f, _ in result.detections}
        assert parallel == reference_detected_set(circuit, vectors)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3000), vec_seed=st.integers(0, 100))
    def test_random_circuits(self, seed, vec_seed):
        circuit = make_random_circuit(seed, n_pi=3, n_ff=2, n_gates=10)
        vectors = random_vectors(circuit, 10, seed=vec_seed)
        sim = FaultSimulator(circuit)
        result = sim.commit(vectors)
        parallel = {f for f, _ in result.detections}
        assert parallel == reference_detected_set(circuit, vectors)

    @pytest.mark.parametrize("width", [1, 3, 17, 64, 200])
    def test_word_width_invariance(self, width, s27_circuit):
        vectors = random_vectors(s27_circuit, 20, seed=11)
        sim = FaultSimulator(s27_circuit, word_width=width)
        sim.commit(vectors)
        base = FaultSimulator(s27_circuit, word_width=64)
        base.commit(vectors)
        assert sim.detected_count == base.detected_count
        assert sim.undetected_faults() == base.undetected_faults()

    def test_incremental_commits_match_single_commit(self, minifsm_circuit):
        """State (good + faulty divergences) must carry across commits."""
        vectors = random_vectors(minifsm_circuit, 24, seed=13)
        whole = FaultSimulator(minifsm_circuit)
        whole.commit(vectors)
        pieces = FaultSimulator(minifsm_circuit)
        for i in range(0, 24, 3):
            pieces.commit(vectors[i:i + 3])
        assert whole.detected_count == pieces.detected_count
        assert whole.good_state.ff_values == pieces.good_state.ff_values
        assert whole.undetected_faults() == pieces.undetected_faults()


class TestEvaluate:
    def test_evaluate_does_not_mutate(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 5, seed=1))
        before = sim.snapshot()
        sim.evaluate(random_vectors(s27_circuit, 6, seed=2))
        after = sim.snapshot()
        assert before.good_state.ff_values == after.good_state.ff_values
        assert before.divergence == after.divergence
        assert before.active == after.active

    def test_evaluate_matches_commit_detection_count(self, minifsm_circuit):
        vectors = random_vectors(minifsm_circuit, 8, seed=3)
        sim = FaultSimulator(minifsm_circuit)
        eval_result = sim.evaluate(vectors)
        commit_result = sim.commit(vectors)
        assert eval_result.detected == commit_result.detected_count

    def test_sample_restricts_simulation(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sample = sim.active[:5]
        result = sim.evaluate(random_vectors(s27_circuit, 10, seed=4), sample=sample)
        assert result.num_faults_simulated == 5
        assert result.detected <= 5

    def test_empty_sample_good_machine_only(self, counter3_circuit):
        sim = FaultSimulator(counter3_circuit)
        result = sim.evaluate([[1, 0]], sample=[])
        assert result.detected == 0
        assert result.ffs_set == 3  # reset initializes all FFs

    def test_ffs_changed_reported(self, counter3_circuit):
        sim = FaultSimulator(counter3_circuit)
        sim.commit([[1, 0]])  # reset -> 000
        result = sim.evaluate([[0, 1]], sample=[])
        assert result.ffs_changed == 1  # bit 0 toggles

    def test_faulty_events_counted_when_requested(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        with_events = sim.evaluate(
            random_vectors(s27_circuit, 3, seed=5), count_faulty_events=True
        )
        without = sim.evaluate(
            random_vectors(s27_circuit, 3, seed=5), count_faulty_events=False
        )
        assert with_events.faulty_events > 0
        assert without.faulty_events == 0
        assert with_events.detected == without.detected

    def test_prop_counts_monotone_with_frames(self, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        result = sim.evaluate(random_vectors(minifsm_circuit, 6, seed=6))
        assert result.prop_sum >= result.prop_final
        assert result.frames == 6


class TestEvaluateBatch:
    """The wide-word batch evaluator must equal the serial path exactly."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2000),
        n_cand=st.integers(1, 6),
        frames=st.integers(1, 4),
        events=st.booleans(),
    )
    def test_batch_equals_serial(self, seed, n_cand, frames, events):
        circuit = make_random_circuit(seed, n_pi=3, n_ff=2, n_gates=10)
        sim = FaultSimulator(circuit)
        sim.commit(random_vectors(circuit, 4, seed=seed))  # create divergences
        rng = random.Random(seed)
        candidates = [
            [
                [rng.randint(0, 1) for _ in range(circuit.num_inputs)]
                for _ in range(frames)
            ]
            for _ in range(n_cand)
        ]
        serial = [
            sim.evaluate(c, count_faulty_events=events) for c in candidates
        ]
        batch = sim.evaluate_batch(candidates, count_faulty_events=events)
        assert serial == batch

    def test_batch_with_sample(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sample = sim.active[:7]
        candidates = [[v] for v in random_vectors(s27_circuit, 8, seed=3)]
        serial = [sim.evaluate(c, sample=sample) for c in candidates]
        batch = sim.evaluate_batch(candidates, sample=sample)
        assert serial == batch

    def test_batch_empty_cases(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        assert sim.evaluate_batch([]) == []
        result = sim.evaluate_batch([[[0, 0, 0, 0]]], sample=[])
        assert result[0].detected == 0

    def test_batch_frame_count_checked(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        with pytest.raises(ValueError, match="same frame count"):
            sim.evaluate_batch([
                [[0, 0, 0, 0]],
                [[0, 0, 0, 0], [1, 1, 1, 1]],
            ])

    def test_batch_does_not_mutate(self, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 3, seed=1))
        before = sim.snapshot()
        sim.evaluate_batch([
            random_vectors(minifsm_circuit, 2, seed=s) for s in range(4)
        ])
        after = sim.snapshot()
        assert before.good_state.ff_values == after.good_state.ff_values
        assert before.divergence == after.divergence


class TestStateManagement:
    def test_snapshot_restore_round_trip(self, minifsm_circuit):
        sim = FaultSimulator(minifsm_circuit)
        sim.commit(random_vectors(minifsm_circuit, 6, seed=7))
        snap = sim.snapshot()
        detected_before = sim.detected_count
        sim.commit(random_vectors(minifsm_circuit, 12, seed=8))
        sim.restore(snap)
        assert sim.detected_count == detected_before
        # After restore, continuing must be equivalent to never diverging.
        replay = random_vectors(minifsm_circuit, 4, seed=9)
        a = sim.evaluate(replay)
        sim.restore(snap)
        b = sim.evaluate(replay)
        assert a.detected == b.detected

    def test_restore_is_deep(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 4, seed=10))
        snap = sim.snapshot()
        snap_divergence = {f: dict(d) for f, d in snap.divergence.items()}
        sim.commit(random_vectors(s27_circuit, 8, seed=11))
        assert snap.divergence == snap_divergence  # snapshot untouched

    def test_reset(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 10, seed=12))
        sim.reset()
        assert sim.detected_count == 0
        assert sim.good_state.ff_values == [X, X, X]
        assert sim.divergence == {}
        assert sim.vectors_applied == 0

    def test_detected_faults_dropped(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        result = sim.commit(random_vectors(s27_circuit, 15, seed=13))
        for fault_id in range(len(sim.faults)):
            if sim.status[fault_id] is FaultStatus.DETECTED:
                assert fault_id not in sim.active
                assert fault_id not in sim.divergence

    def test_vectors_applied_tracked(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        sim.commit(random_vectors(s27_circuit, 5, seed=1))
        sim.commit(random_vectors(s27_circuit, 7, seed=2))
        assert sim.vectors_applied == 12

    def test_coverage_properties(self, s27_circuit):
        sim = FaultSimulator(s27_circuit)
        assert sim.fault_coverage == 0.0
        sim.commit(random_vectors(s27_circuit, 30, seed=14))
        assert 0.0 < sim.fault_coverage <= 1.0
        assert sim.detected_count + len(sim.active) == sim.num_faults


class TestConstruction:
    def test_custom_fault_list(self, s27_circuit):
        faults = collapsed_fault_list(s27_circuit)[:4]
        sim = FaultSimulator(s27_circuit, faults=faults)
        assert sim.num_faults == 4

    def test_bad_word_width(self, s27_circuit):
        with pytest.raises(ValueError):
            FaultSimulator(s27_circuit, word_width=0)

    def test_synthetic_circuit_smoke(self):
        circuit = synthesize_named("s386", scale=0.2)
        sim = FaultSimulator(circuit)
        sim.commit(random_vectors(circuit, 50, seed=15))
        assert sim.detected_count > 0
