"""Distributed campaigns: leases, reaping, degradation, host chaos
(docs/ROBUSTNESS.md §6, src/repro/harness/distributed.py).

The journal is the only coordination channel, so most concurrency edges
are testable single-process by writing the records a peer would have
written (a lease that expired between load and claim, a torn tail from
a SIGKILLed appender, duplicate seals racing arbitration).  The
end-to-end classes then run real coordinator + worker processes and
hold the output to the serial run byte for byte.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.checkpoint import CheckpointError, seal_journal_record
from repro.core.config import TestGenConfig
from repro.harness import CampaignJournal, run_gatest
from repro.harness.campaign import result_to_json
from repro.harness.distributed import (
    DistributedCoordinator,
    _next_claimable,
    campaign_worker_main,
    config_from_json,
    config_to_json,
)
from repro.harness.experiments import main as experiments_main
from repro.parallel.resilience import ChaosConfig, RetryPolicy
from repro.sim import ckernel
from repro.telemetry import TelemetryCollector

CIRCUIT = "s298"
SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _drain_children(timeout=10.0):
    """Wait for worker processes to exit; returns the stragglers."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children()


def _counters(collector):
    out = {}
    for record in collector.records():
        if record.get("kind") == "counter":
            out[record["name"]] = out.get(record["name"], 0) + record["value"]
    return out


# ----------------------------------------------------------------------
# Host-level chaos: parsing and decisions
# ----------------------------------------------------------------------


class TestHostChaos:
    def test_parse_host_fault_modes(self):
        cfg = ChaosConfig.parse("lease-stall:0.4,worker-vanish:0.3,seed:5")
        assert cfg.lease_stall == 0.4
        assert cfg.worker_vanish == 0.3
        assert cfg.enabled

    def test_parse_underscore_aliases(self):
        cfg = ChaosConfig.parse("lease_stall:0.1,worker_vanish:0.2")
        assert (cfg.lease_stall, cfg.worker_vanish) == (0.1, 0.2)

    def test_bad_probability_names_the_token(self):
        with pytest.raises(ValueError, match=r"'2' in 'lease-stall:2'"):
            ChaosConfig.parse("lease-stall:2")

    def test_unknown_key_names_the_token(self):
        with pytest.raises(ValueError, match=r"unknown chaos key 'bogus'"):
            ChaosConfig.parse("crash:0.1,bogus:0.1")

    def test_missing_colon_names_the_entry(self):
        with pytest.raises(ValueError, match=r"'crash0.1' is not key:value"):
            ChaosConfig.parse("crash0.1")

    def test_non_number_names_the_token(self):
        with pytest.raises(ValueError, match=r"'x' in 'crash:x'"):
            ChaosConfig.parse("crash:x")

    def test_decide_host_is_deterministic_per_seq(self):
        cfg = ChaosConfig(lease_stall=0.5, worker_vanish=0.2, seed=11)
        first = [cfg.decide_host(seq) for seq in range(64)]
        assert first == [cfg.decide_host(seq) for seq in range(64)]
        assert set(first) <= {None, "lease-stall", "worker-vanish"}
        assert "lease-stall" in first and "worker-vanish" in first

    def test_decide_host_certainty(self):
        stall = ChaosConfig(lease_stall=1.0, seed=0)
        vanish = ChaosConfig(worker_vanish=1.0, seed=0)
        assert all(stall.decide_host(s) == "lease-stall" for s in range(8))
        assert all(vanish.decide_host(s) == "worker-vanish" for s in range(8))

    def test_host_probabilities_validated_together(self):
        with pytest.raises(ValueError, match="lease-stall"):
            ChaosConfig(lease_stall=0.8, worker_vanish=0.8)


# ----------------------------------------------------------------------
# Config wire format
# ----------------------------------------------------------------------


class TestConfigWire:
    def test_round_trip_keeps_execution_knobs(self):
        config = TestGenConfig(
            population_scale=0.5, eval_jobs=3, sim_kernel="numpy",
            eval_cache=False,
        )
        rebuilt = config_from_json(json.loads(json.dumps(
            config_to_json(config)
        )))
        assert rebuilt == config
        assert rebuilt.eval_jobs == 3
        assert rebuilt.sim_kernel == "numpy"
        assert isinstance(rebuilt.seq_length_multipliers, tuple)

    def test_unknown_field_refused(self):
        data = config_to_json(TestGenConfig())
        data["warp_factor"] = 9
        with pytest.raises(CheckpointError, match="warp_factor"):
            config_from_json(data)


# ----------------------------------------------------------------------
# Journal concurrency edges (single-process, peer records written by hand)
# ----------------------------------------------------------------------


def _dist_journal(tmp_path, **kwargs):
    params = dict(table="4", scale=0.1, seeds=[1, 2], append_mode=True)
    params.update(kwargs)
    return CampaignJournal.create(tmp_path / "j.jsonl", **params)


class TestJournalLeaseEdges:
    def test_peer_sees_appended_lease_after_refresh(self, tmp_path):
        journal = _dist_journal(tmp_path)
        peer = CampaignJournal.open(tmp_path / "j.jsonl")
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="alpha", ttl=60.0)
        assert peer.lease_for(CIRCUIT, "lbl", 1, 0.1) is None
        peer.refresh()
        lease = peer.lease_for(CIRCUIT, "lbl", 1, 0.1)
        assert lease is not None and lease["host"] == "alpha"

    def test_torn_tail_after_lease_is_skipped_on_attach(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="alpha", ttl=60.0)
        path = tmp_path / "j.jsonl"
        path.write_text(path.read_text() + '{"kind":"campaign-cel')
        peer = CampaignJournal.open(path)
        assert peer.lease_for(CIRCUIT, "lbl", 1, 0.1) is not None

    def test_mid_file_corruption_still_refused(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="alpha", ttl=60.0)
        journal.grant_lease(CIRCUIT, "lbl", 2, 0.1, "a" * 64,
                            host="beta", ttl=60.0)
        path = tmp_path / "j.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = '{"kind":"campaign-lea'  # torn, but not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            CampaignJournal.open(path)

    def test_duplicate_ok_first_sealed_wins(self, tmp_path):
        collector = TelemetryCollector(source="test")
        journal = _dist_journal(tmp_path, collector=collector)
        result = run_gatest(CIRCUIT, TestGenConfig(), [1],
                            scale=0.1, jobs=1).runs[0]
        payload = result_to_json(result)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            result=payload, host="alpha")
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            result=payload, host="beta")
        winner = journal.result_for(CIRCUIT, "lbl", 1, 0.1)
        assert winner["host"] == "alpha"
        assert _counters(collector).get("campaign.cells.duplicate") == 1
        # A fresh attach arbitrates from the file identically.
        peer = CampaignJournal.open(tmp_path / "j.jsonl")
        assert peer.result_for(CIRCUIT, "lbl", 1, 0.1)["host"] == "alpha"

    def test_ok_heals_earlier_failure(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            error="boom", attempts=1, host="alpha")
        result = run_gatest(CIRCUIT, TestGenConfig(), [1],
                            scale=0.1, jobs=1).runs[0]
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            result=result_to_json(result), host="beta")
        assert journal.result_for(CIRCUIT, "lbl", 1, 0.1)["status"] == "ok"

    def test_pending_result_treats_stale_failure_as_superseded(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.record_cell(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            error="boom", attempts=1, host="alpha")
        failed = journal.pending_result(CIRCUIT, "lbl", 1, 0.1)
        assert failed is not None and failed["status"] == "failed"
        # A newer lease supersedes the failure: the cell is pending again.
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="beta", ttl=60.0)
        assert journal.pending_result(CIRCUIT, "lbl", 1, 0.1) is None
        assert journal.result_for(CIRCUIT, "lbl", 1, 0.1) is not None

    def test_lease_expired_between_load_and_claim(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="alpha", ttl=0.05)
        worker = CampaignJournal.open(tmp_path / "j.jsonl")
        live = _next_claimable(worker, "alpha", time.time())
        assert live is not None  # claimable while the TTL holds...
        time.sleep(0.06)
        # ...but not after it lapses: the reaper owns expired leases.
        assert _next_claimable(worker, "alpha", time.time()) is None

    def test_worker_once_does_not_execute_expired_lease(self, tmp_path):
        journal = _dist_journal(tmp_path)
        journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                            host="alpha", ttl=0.01,
                            config=config_to_json(TestGenConfig()))
        time.sleep(0.02)
        assert campaign_worker_main(tmp_path / "j.jsonl", "alpha",
                                    once=True) == 0
        journal.refresh()
        assert journal.result_for(CIRCUIT, "lbl", 1, 0.1) is None

    def test_rewrite_mode_refuses_leases(self, tmp_path):
        journal = _dist_journal(tmp_path, append_mode=False)
        with pytest.raises(RuntimeError, match="append-mode"):
            journal.grant_lease(CIRCUIT, "lbl", 1, 0.1, "a" * 64,
                                host="alpha", ttl=60.0)

    def test_resume_refusal_names_field_and_both_values(self, tmp_path):
        _dist_journal(tmp_path)
        with pytest.raises(
            CheckpointError,
            match=r"seeds is \[1, 2\], this run wants \[1, 2, 3\]",
        ):
            _dist_journal(tmp_path, resume=True, seeds=[1, 2, 3])


# ----------------------------------------------------------------------
# Coordinator degradation (in-process; no workers ever attach)
# ----------------------------------------------------------------------


class TestDegradation:
    def test_no_workers_degrades_to_local_and_completes(self, tmp_path):
        collector = TelemetryCollector(source="test")
        journal = _dist_journal(tmp_path, seeds=[1], collector=collector)
        policy = RetryPolicy(task_timeout=0.05, max_retries=0)
        coordinator = DistributedCoordinator(
            journal, ["ghost"], poll=0.01, policy=policy,
            collector=collector,
        )
        from repro.harness import compiled_circuit_for
        config = TestGenConfig()
        compiled = compiled_circuit_for(CIRCUIT, 0.1)
        results, failures = coordinator.run_cells(
            CIRCUIT, compiled, config, [1], scale=0.1, label="lbl",
            digest=config.digest(),
        )
        assert not failures and 1 in results
        assert coordinator.degraded
        counters = _counters(collector)
        assert counters.get("campaign.lease.granted", 0) >= 1
        assert counters.get("campaign.lease.expired", 0) >= 1
        assert counters.get("campaign.lease.degraded") == 1
        assert counters.get("campaign.lease.healed", 0) >= 1
        # The locally-run cell is sealed with the coordinator as host.
        record = journal.result_for(CIRCUIT, "lbl", 1, 0.1)
        assert record["host"] == "coordinator"
        # Degradation is sticky: later groups skip leasing entirely.
        results2, _ = coordinator.run_cells(
            CIRCUIT, compiled, config, [2], scale=0.1, label="lbl",
            digest=config.digest(),
        )
        assert 2 in results2
        assert _counters(collector)["campaign.lease.granted"] == \
            counters["campaign.lease.granted"]

    def test_degraded_result_matches_direct_run(self, tmp_path):
        journal = _dist_journal(tmp_path, seeds=[1])
        policy = RetryPolicy(task_timeout=0.05, max_retries=0)
        coordinator = DistributedCoordinator(
            journal, ["ghost"], poll=0.01, policy=policy,
        )
        from repro.harness import compiled_circuit_for
        config = TestGenConfig()
        compiled = compiled_circuit_for(CIRCUIT, 0.1)
        results, _ = coordinator.run_cells(
            CIRCUIT, compiled, config, [1], scale=0.1, label="lbl",
            digest=config.digest(),
        )
        direct = run_gatest(CIRCUIT, config, [1], scale=0.1, jobs=1).runs[0]
        assert results[1].detected == direct.detected
        assert results[1].test_sequence == direct.test_sequence

    def test_coordinator_requires_append_mode(self, tmp_path):
        journal = _dist_journal(tmp_path, append_mode=False)
        with pytest.raises(ValueError, match="append-mode"):
            DistributedCoordinator(journal, ["alpha"])

    def test_coordinator_requires_hosts(self, tmp_path):
        journal = _dist_journal(tmp_path)
        with pytest.raises(ValueError, match="host"):
            DistributedCoordinator(journal, [])


# ----------------------------------------------------------------------
# End-to-end: coordinator + worker processes over one journal
# ----------------------------------------------------------------------


ARGS = ["--table", "4", "--scale", "0.1", "--seeds", "2",
        "--circuits", CIRCUIT]


def _spawn(tmp_path, argv, *, chaos=None, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", *argv], env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def _spawn_worker(tmp_path, journal, host, **kwargs):
    return _spawn(
        tmp_path,
        ["repro.cli", "campaign-worker", "--journal", str(journal),
         "--host", host, "--max-idle", "120"],
        **kwargs,
    )


def _spawn_coordinator(tmp_path, journal, *extra, **kwargs):
    hosts = tmp_path / "hosts.txt"
    if not hosts.exists():
        hosts.write_text("alpha\nbeta\n")
    return _spawn(
        tmp_path,
        ["repro.harness.experiments", *ARGS,
         "--journal", str(journal), "--workers-from", str(hosts), *extra],
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_table(tmp_path_factory):
    """The uninterrupted single-host reference output."""
    tmp = tmp_path_factory.mktemp("serial")
    proc = _spawn(tmp, ["repro.harness.experiments", *ARGS])
    out, err = proc.communicate(timeout=600)
    assert proc.returncode == 0, err.decode()
    return out.decode()


def _await_first_cell(journal, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if "campaign-cell" in journal.read_text():
                return
        except OSError:
            pass
        time.sleep(0.01)
    pytest.fail("no journaled cell appeared in time")  # pragma: no cover


def _trace_counters(trace_path):
    out = {}
    for line in trace_path.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "counter":
            out[record["name"]] = out.get(record["name"], 0) + record["value"]
    return out


class TestDistributedEndToEnd:
    def test_two_workers_bit_identical_to_serial(self, tmp_path,
                                                 serial_table):
        journal = tmp_path / "j.jsonl"
        workers = [_spawn_worker(tmp_path, journal, h)
                   for h in ("alpha", "beta")]
        coordinator = _spawn_coordinator(tmp_path, journal)
        out, err = coordinator.communicate(timeout=600)
        assert coordinator.returncode == 0, err.decode()
        assert out.decode() == serial_table
        for worker in workers:
            worker.communicate(timeout=120)
            assert worker.returncode == 0
        text = journal.read_text()
        assert '"kind":"campaign-close"' in text
        hosts = {json.loads(line)["host"]
                 for line in text.splitlines()
                 if '"kind":"campaign-cell"' in line}
        assert hosts <= {"alpha", "beta", "coordinator"}
        assert hosts & {"alpha", "beta"}

    def test_sigkill_worker_with_lease_stall_chaos(self, tmp_path,
                                                   serial_table):
        """The acceptance scenario: two workers with ``lease-stall``
        chaos armed, one SIGKILLed mid-campaign; the reap / re-lease /
        degradation machinery must still complete the matrix with
        byte-identical tables, visibly in the lease counters."""
        journal = tmp_path / "j.jsonl"
        trace = tmp_path / "trace.jsonl"
        chaos = "lease-stall:0.4,seed:3"
        alpha = _spawn_worker(tmp_path, journal, "alpha", chaos=chaos)
        beta = _spawn_worker(tmp_path, journal, "beta", chaos=chaos)
        coordinator = _spawn_coordinator(
            tmp_path, journal, "--trace", str(trace), "--lease-ttl", "2",
        )
        _await_first_cell(journal)
        os.kill(beta.pid, signal.SIGKILL)
        beta.wait(timeout=30)
        out, err = coordinator.communicate(timeout=600)
        assert coordinator.returncode == 0, err.decode()
        table = out.decode().rsplit("wrote ", 1)[0]
        assert table == serial_table
        alpha.communicate(timeout=120)
        assert alpha.returncode == 0
        counters = _trace_counters(trace)
        assert counters.get("campaign.lease.expired", 0) >= 1
        assert counters.get("campaign.lease.healed", 0) >= 1
        assert counters["campaign.cells.completed"] == 10
        assert not _drain_children()

    def test_worker_vanish_chaos_is_reaped(self, tmp_path, serial_table):
        journal = tmp_path / "j.jsonl"
        trace = tmp_path / "trace.jsonl"
        # Every claimed lease kills the worker; the coordinator must
        # finish the campaign alone after exhausting the budget.
        worker = _spawn_worker(tmp_path, journal, "alpha",
                               chaos="worker-vanish:1.0,seed:0")
        hosts = tmp_path / "hosts.txt"
        hosts.write_text("alpha\n")
        coordinator = _spawn_coordinator(
            tmp_path, journal, "--trace", str(trace), "--lease-ttl", "1",
            extra_env={"REPRO_LEASE_RETRIES": "1"},
        )
        out, err = coordinator.communicate(timeout=600)
        assert coordinator.returncode == 0, err.decode()
        table = out.decode().rsplit("wrote ", 1)[0]
        assert table == serial_table
        worker.wait(timeout=120)
        assert worker.returncode == 86  # chaos vanish exit code
        counters = _trace_counters(trace)
        assert counters.get("campaign.lease.expired", 0) >= 1
        assert counters.get("campaign.lease.degraded") == 1


# ----------------------------------------------------------------------
# C-kernel artifact shipping (satellite: no per-host recompiles)
# ----------------------------------------------------------------------


class TestKernelShipping:
    @pytest.mark.skipif(not ckernel.available(), reason="no C compiler")
    def test_distributed_c_cell_does_not_recompile_per_host(
        self, tmp_path, monkeypatch
    ):
        """The lease ships the coordinator's compiled artifact; a worker
        with an empty kernel cache *and a broken compiler* must still
        run the cell on the C kernel (a recompile attempt would either
        fail or show up as ``c.kernels.built`` from the worker)."""
        monkeypatch.setenv("REPRO_CKERNEL_CACHE",
                           str(tmp_path / "coord-cache"))
        journal_path = tmp_path / "j.jsonl"
        collector = TelemetryCollector(source="test")
        journal = CampaignJournal.create(
            journal_path, table="4", scale=0.1, seeds=[1],
            append_mode=True, collector=collector,
        )
        coordinator = DistributedCoordinator(
            journal, ["alpha"], poll=0.02, collector=collector,
        )
        from repro.harness import compiled_circuit_for
        config = TestGenConfig(sim_kernel="c")
        compiled = compiled_circuit_for(CIRCUIT, 0.1)
        worker = _spawn_worker(
            tmp_path, journal_path, "alpha",
            extra_env={
                "REPRO_CKERNEL_CACHE": str(tmp_path / "worker-cache"),
                "REPRO_CKERNEL_CC": str(tmp_path / "no-such-cc"),
            },
        )
        results, failures = coordinator.run_cells(
            CIRCUIT, compiled, config, [1], scale=0.1, label="lbl",
            digest=config.digest(),
        )
        coordinator.close()
        worker_out, worker_err = worker.communicate(timeout=300)
        assert worker.returncode == 0, worker_err.decode()
        assert not failures and 1 in results

        counters = _counters(collector)
        # Exactly one build: the coordinator's, whose artifact was
        # shipped.  The worker's shipped-path hit is merged back flat.
        assert counters.get("c.kernels.built", 0) <= 1
        assert counters.get("c.cache.hits", 0) >= 1
        assert counters.get("c.fallbacks", 0) == 0
        lease = journal.lease_for(CIRCUIT, "lbl", 1, 0.1)
        assert lease["kernel_artifact"] is not None
        assert lease["config"]["sim_kernel"] == "c"
        record = journal.result_for(CIRCUIT, "lbl", 1, 0.1)
        assert record["host"] == "alpha"

        serial = run_gatest(CIRCUIT, TestGenConfig(), [1],
                            scale=0.1, jobs=1).runs[0]
        assert results[1].detected == serial.detected
        assert results[1].test_sequence == serial.test_sequence
