"""The process execution tier and the service control plane.

What PR 8 added on top of the PR 7 service, each with its contract
under test here (docs/SERVICE.md, docs/ROBUSTNESS.md §7):

* **control-plane fields** — ``priority`` ordering (highest first, FIFO
  within a priority) and per-attempt ``deadline_s``, validated at
  submit;
* **cancellation / preemption** — ``DELETE`` kills queued jobs
  immediately and preempts running run jobs cooperatively at a stage
  boundary, leaving a resumable ``preempted`` checkpoint that a
  resubmission finishes bit-identically;
* **admission control** — a bounded queue rejects overflow with 429 +
  ``Retry-After`` *before* anything is ledgered;
* **the tier itself** — run jobs execute in supervised worker
  processes with chaos-injected crash/hang recovery: checkpoint-
  resuming retries, hard pool teardown, and sticky degradation to
  bit-identical in-thread execution when the budget is spent;
* **client resilience** — transient connection errors retry with
  capped backoff; 429 surfaces as the typed ``ServiceBusyError``;
* **crash contracts end-to-end** — a chaos-armed ``gatest serve``
  completes every accepted job and leaves no orphaned processes; a
  SIGKILL racing a preemption checkpoint still lands the job in a
  terminal ``preempted`` state after restart.
"""

from __future__ import annotations

import asyncio
import http.client
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.circuit import s27
from repro.core import GaTestGenerator, TestGenConfig
from repro.parallel.resilience import RetryPolicy
from repro.service import (
    Job,
    JobManager,
    JobValidationError,
    QueueFullError,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
    ServiceServer,
    parse_job,
    run_key,
)
from repro.telemetry import TelemetryCollector

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _manager(tmp_path, **kw):
    kw.setdefault("workers", 1)
    collector = kw.pop("collector", TelemetryCollector())
    return JobManager(tmp_path / "state", collector=collector, **kw), collector


@contextmanager
def _served(manager):
    """A ServiceServer for ``manager`` on an ephemeral localhost port."""
    server = ServiceServer(manager, port=0)
    ready = threading.Event()

    def run():
        async def go():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(go())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to bind"
    client = ServiceClient(port=server.port)
    try:
        yield client
    finally:
        try:
            client.shutdown()
        except (ServiceError, OSError):
            pass
        thread.join(timeout=30)
        assert not thread.is_alive(), "server thread failed to shut down"


# ----------------------------------------------------------------------
# Validation: priority and deadline_s
# ----------------------------------------------------------------------


class TestControlPlaneFields:
    def test_priority_and_deadline_accepted(self):
        spec = parse_job(
            {"kind": "run", "circuit": "s27", "config": {"seed": 1},
             "priority": 5, "deadline_s": 2.5}
        )
        assert spec.priority == 5
        assert spec.deadline_s == 2.5
        fsim = parse_job(
            {"kind": "fsim", "circuit": "s27", "vectors": [[0, 1]],
             "priority": -3}
        )
        assert fsim.priority == -3
        assert fsim.deadline_s is None

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"kind": "run", "circuit": "s27", "priority": "high"}, "priority"),
            ({"kind": "run", "circuit": "s27", "priority": True}, "priority"),
            ({"kind": "run", "circuit": "s27", "priority": 1.5}, "priority"),
            ({"kind": "run", "circuit": "s27", "deadline_s": 0}, "deadline_s"),
            ({"kind": "run", "circuit": "s27", "deadline_s": -2}, "deadline_s"),
            ({"kind": "run", "circuit": "s27", "deadline_s": "2"}, "deadline_s"),
            ({"kind": "fsim", "circuit": "s27", "vectors": [[0]],
              "deadline_s": 1}, "run jobs"),
        ],
    )
    def test_rejections(self, payload, message):
        with pytest.raises(JobValidationError, match=re.escape(message)):
            parse_job(payload)

    def test_scheduling_fields_change_digest_not_run_key(self):
        base = {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
        a = parse_job(base)
        b = parse_job({**base, "priority": 9, "deadline_s": 30,
                       "checkpoint_every": 3})
        c = parse_job({"kind": "run", "circuit": "s27", "config": {"seed": 2}})
        assert a.digest != b.digest  # distinct requests...
        # ...but the same canonical run, so the same checkpoint.
        assert run_key(a, a.config) == run_key(b, b.config)
        assert run_key(a, a.config) != run_key(c, c.config)

    def test_deadline_policy_resolution(self, tmp_path, monkeypatch):
        manager, _ = _manager(tmp_path, use_tier=False)
        try:
            spec = parse_job(
                {"kind": "run", "circuit": "s27", "config": {"seed": 1},
                 "deadline_s": 2.5}
            )
            bare = parse_job(
                {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
            )
            monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
            monkeypatch.delenv("REPRO_JOB_RETRIES", raising=False)
            assert manager._job_policy(spec).task_timeout == 2.5
            assert manager._job_policy(bare).task_timeout is None
            monkeypatch.setenv("REPRO_JOB_TIMEOUT", "7")
            monkeypatch.setenv("REPRO_JOB_RETRIES", "3")
            # The request's explicit deadline beats the env...
            assert manager._job_policy(spec).task_timeout == 2.5
            # ...which beats no deadline at all.
            assert manager._job_policy(bare).task_timeout == 7.0
            assert manager._job_policy(bare).max_retries == 3
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Priority scheduling and cancellation (manager level)
# ----------------------------------------------------------------------


class TestPriorityAndCancel:
    def test_queue_order(self):
        def job(seq, priority, status="queued"):
            spec = parse_job(
                {"kind": "run", "circuit": "s27",
                 "config": {"seed": seq}, "priority": priority}
            )
            j = Job(id=f"j{seq}", seq=seq, spec=spec)
            j.status = status
            return j

        jobs = [job(1, 0), job(2, 5), job(3, 5), job(4, -1),
                job(5, 0), job(6, 9, status="running")]
        assert [j.id for j in JobManager.queue_order(jobs)] == [
            "j2", "j3", "j1", "j5", "j4"  # running j6 excluded
        ]

    def test_dispatch_follows_priority_then_fifo(self, tmp_path):
        manager, _ = _manager(tmp_path, use_tier=False)
        try:
            # _cond is an RLock-backed Condition: holding it parks the
            # worker, so all four jobs are queued before any dispatch —
            # the completion order is purely the scheduler's.
            with manager._cond:
                jobs = [
                    manager.submit(
                        {"kind": "run", "circuit": "s27",
                         "config": {"seed": seed}, "priority": priority}
                    )[0]
                    for seed, priority in [(1, 0), (2, 2), (3, 1), (4, 2)]
                ]
            assert manager.wait_idle(timeout=600)
            completed = [
                r["id"] for r in manager.ledger.load()
                if r["event"] == "completed"
            ]
            assert completed == [
                jobs[1].id, jobs[3].id, jobs[2].id, jobs[0].id
            ]
        finally:
            manager.close()

    def test_cancel_queued_job(self, tmp_path):
        manager, collector = _manager(tmp_path, use_tier=False)
        try:
            with manager._cond:
                keep, _ = manager.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
                )
                doomed, _ = manager.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": 2}}
                )
                assert manager.cancel(doomed.id) == "cancelled"
            assert manager.wait_idle(timeout=600)
            assert keep.status == "done", keep.error
            assert doomed.status == "cancelled"
            assert doomed.result is None
            assert collector.counters["service.jobs.cancelled"] == 1
            events = [
                r for r in manager.ledger.load()
                if r["event"] == "cancelled"
            ]
            assert [r["id"] for r in events] == [doomed.id]
            # Idempotent on terminal jobs; None for unknown ids.
            assert manager.cancel(doomed.id) == "cancelled"
            assert manager.cancel("j9999-nothere") is None
        finally:
            manager.close()

    def test_preempt_then_resubmit_resumes_bit_identically(self, tmp_path):
        reference = GaTestGenerator(s27(), TestGenConfig(seed=3)).run()
        manager, collector = _manager(tmp_path)  # tier on: preemption
        payload = {"kind": "run", "circuit": "s27", "config": {"seed": 3},
                   "checkpoint_every": 1}
        try:
            # Arm the stop file before the worker can start: the
            # generator observes it at its first stage boundary and
            # preempts deterministically.
            with manager._cond:
                job, _ = manager.submit(payload)
                manager._stop_path(job).touch()
            assert manager.wait_idle(timeout=600)
            assert job.status == "preempted", job.error
            assert "preempted" in job.error
            assert collector.counters["service.jobs.preempted"] == 1
            assert job.collector.counters.get("run.preempted") == 1
            ckpts = list((tmp_path / "state" / "checkpoints").glob("run-*.ckpt"))
            assert len(ckpts) == 1  # the resumable preemption checkpoint
            # The consumed stop file must not leak into the resubmission.
            assert not manager._stop_path(job).exists()

            again, coalesced = manager.submit(payload)
            assert not coalesced and again.id != job.id
            assert manager.wait_idle(timeout=600)
            assert again.status == "done", again.error
            assert collector.counters.get("run.resumed") == 1
            assert again.result["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            assert again.result["detected"] == reference.detected
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_overflow_rejected_before_ledger(self, tmp_path):
        manager, collector = _manager(tmp_path, use_tier=False, queue_max=1)
        try:
            with manager._cond:
                accepted, _ = manager.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
                )
                with pytest.raises(QueueFullError) as err:
                    manager.submit(
                        {"kind": "run", "circuit": "s27", "config": {"seed": 2}}
                    )
                assert err.value.retry_after >= 1
                # Coalescing adds no queue entry, so it is exempt even
                # at capacity.
                same, coalesced = manager.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
                )
                assert coalesced and same is accepted
            assert manager.wait_idle(timeout=600)
            assert collector.counters["service.queue.rejected"] == 1
            accepted_ids = [
                r["id"] for r in manager.ledger.load()
                if r["event"] == "accepted"
            ]
            assert accepted_ids == [accepted.id]  # rejection left no trace
        finally:
            manager.close()

    def test_http_429_with_retry_after(self, tmp_path):
        manager, _ = _manager(tmp_path, use_tier=False, queue_max=0)
        with _served(manager) as client:
            with pytest.raises(ServiceBusyError) as err:
                client.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
                )
            assert err.value.status == 429
            assert err.value.retry_after == 1.0
            health = client.healthz()
            assert health["queue"]["max"] == 0
            assert health["counters"]["service.queue.rejected"] == 1
        assert not (tmp_path / "state" / "ledger.jsonl").exists()
        manager.close()


# ----------------------------------------------------------------------
# The tier: isolation, chaos recovery, degradation
# ----------------------------------------------------------------------


class TestProcessTier:
    def test_in_thread_escape_hatch_is_bit_identical(self, tmp_path):
        reference = GaTestGenerator(s27(), TestGenConfig(seed=2)).run()
        manager, _ = _manager(tmp_path, use_tier=False)
        try:
            assert manager.tier is None
            job, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 2}}
            )
            assert manager.wait_idle(timeout=600)
            assert job.status == "done", job.error
            assert job.result["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            assert job.result["detected"] == reference.detected
        finally:
            manager.close()

    def test_crash_recovers_via_retry(self, tmp_path, monkeypatch):
        # seed 5 makes tier task 1 crash and task 2 (the retry) run
        # clean — a deterministic worker death the tier must heal.
        monkeypatch.setenv("REPRO_CHAOS", "crash:0.5,seed:5")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "1")
        reference = GaTestGenerator(s27(), TestGenConfig(seed=8)).run()
        manager, collector = _manager(tmp_path)
        try:
            job, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 8}}
            )
            assert manager.wait_idle(timeout=600)
            assert job.status == "done", job.error
            assert collector.counters["service.tier.restarts"] == 1
            assert collector.counters["service.tier.retries"] == 1
            assert manager.tier_stats()["degraded"] is False
            assert "service.jobs.degraded" not in collector.counters
            assert job.result["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
        finally:
            manager.close()

    def test_crash_exhaustion_degrades_stickily(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:1.0,seed:1")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "1")
        reference = GaTestGenerator(s27(), TestGenConfig(seed=5)).run()
        manager, collector = _manager(tmp_path)
        try:
            job, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 5}}
            )
            assert manager.wait_idle(timeout=600)
            # Every tier attempt crashed; the job still completed —
            # degraded to the in-thread path — and bit-identically.
            assert job.status == "done", job.error
            assert collector.counters["service.tier.restarts"] == 2
            assert collector.counters["service.tier.retries"] == 1
            assert collector.counters["service.jobs.degraded"] == 1
            assert manager.tier_stats()["degraded"] is True
            assert job.result["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            # Degradation is sticky: the next job skips the tier
            # entirely instead of re-spending the retry budget.
            second, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 6}}
            )
            assert manager.wait_idle(timeout=600)
            assert second.status == "done", second.error
            assert collector.counters["service.tier.restarts"] == 2
            assert collector.counters["service.jobs.degraded"] == 2
        finally:
            manager.close()

    def test_hung_worker_hits_deadline_and_degrades(self, tmp_path, monkeypatch):
        # A wedged worker (sleep far past any deadline) must surface as
        # a deadline timeout, not a stalled service.
        monkeypatch.setenv("REPRO_CHAOS", "hang:1.0,seed:2,hang_seconds:60")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "0")
        manager, collector = _manager(tmp_path)
        try:
            start = time.monotonic()
            job, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 1},
                 "deadline_s": 0.75}
            )
            assert manager.wait_idle(timeout=600)
            assert job.status == "done", job.error
            assert time.monotonic() - start < 60  # never waited out the hang
            assert collector.counters["service.tier.restarts"] == 1
            assert manager.tier_stats()["degraded"] is True
        finally:
            manager.close()

    @pytest.mark.parametrize("use_tier", [True, False])
    def test_truncated_checkpoint_falls_back_to_fresh_run(
        self, tmp_path, use_tier
    ):
        manager, collector = _manager(tmp_path, use_tier=use_tier)
        payload = {"kind": "run", "circuit": "s27", "config": {"seed": 7},
                   "checkpoint_every": 1}
        try:
            job, _ = manager.submit(payload)
            assert manager.wait_idle(timeout=600)
            assert job.status == "done", job.error
            (ckpt,) = (tmp_path / "state" / "checkpoints").glob("run-*.ckpt")
            blob = ckpt.read_bytes()
            ckpt.write_bytes(blob[: len(blob) // 2])  # torn mid-file

            again, _ = manager.submit(payload)
            assert manager.wait_idle(timeout=600)
            assert again.status == "done", again.error
            # The corruption was detected and recovered *loudly*: the
            # job collector carries the fallback counter (shipped from
            # the tier worker when one ran), and the result is the
            # fresh-run result — identical, by determinism.
            assert again.collector.counters["service.jobs.resume_fallback"] == 1
            assert collector.counters["service.jobs.resume_fallback"] == 1
            assert again.result["test_sequence"] == job.result["test_sequence"]
            assert again.result["detected"] == job.result["detected"]
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Loud close(): stragglers are counted and named
# ----------------------------------------------------------------------


class TestCloseStragglers:
    def test_wedged_worker_is_counted_and_named(self, tmp_path, capsys):
        manager, collector = _manager(tmp_path, use_tier=False)
        started = threading.Event()
        release = threading.Event()

        def wedged(job):
            started.set()
            release.wait()
            manager._finish(job, result={})

        manager._execute_run = wedged
        try:
            job, _ = manager.submit(
                {"kind": "run", "circuit": "s27", "config": {"seed": 1}}
            )
            assert started.wait(30)
            manager.close(timeout=0.2)
            assert collector.counters["service.close.stragglers"] == 1
            err = capsys.readouterr().err
            assert "leaked 1 worker thread" in err
            assert job.id in err
        finally:
            release.set()


# ----------------------------------------------------------------------
# Client retry
# ----------------------------------------------------------------------


def _closed_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestClientRetry:
    def test_connection_refused_retries_with_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client = ServiceClient(port=_closed_port(), retries=2, timeout=5)
        with pytest.raises(OSError):
            client.healthz()
        policy = RetryPolicy(max_retries=2, task_timeout=None)
        assert sleeps == [policy.backoff(0), policy.backoff(1)]

    def test_zero_retries_raises_immediately(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client = ServiceClient(port=_closed_port(), retries=0, timeout=5)
        with pytest.raises(OSError):
            client.healthz()
        assert sleeps == []

    def test_transient_reset_retries_then_succeeds(self, tmp_path, monkeypatch):
        manager, _ = _manager(tmp_path, use_tier=False)
        with _served(manager) as client:
            real = http.client.HTTPConnection
            calls = {"n": 0}

            class Flaky(real):
                def request(self, *args, **kwargs):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise ConnectionResetError("injected reset")
                    return super().request(*args, **kwargs)

            monkeypatch.setattr(http.client, "HTTPConnection", Flaky)
            monkeypatch.setattr(
                "repro.service.client.time.sleep", lambda s: None
            )
            assert client.healthz()["status"] == "ok"
            assert calls["n"] == 2  # one injected failure, one success
            monkeypatch.undo()
        manager.close()


# ----------------------------------------------------------------------
# End-to-end crash contracts (subprocess gatest serve)
# ----------------------------------------------------------------------


def _serve(state_dir, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_JOB_RETRIES", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, start_new_session=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    assert match, f"no listening line: {line!r}"
    return proc, ServiceClient(port=int(match.group(1)))


def _assert_process_group_empty(pgid, timeout=30.0):
    """No process (serve, tier worker, forkserver) survives shutdown."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.killpg(pgid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.05)
    pytest.fail(f"process group {pgid} still has live processes")


class TestChaosServiceEndToEnd:
    def test_chaos_armed_service_completes_every_job(self, tmp_path):
        """Certain worker crashes never stall the service: every
        accepted job reaches a terminal state (degraded, bit-identical)
        and teardown leaves no orphaned processes."""
        proc, client = _serve(
            tmp_path / "state",
            extra_env={"REPRO_CHAOS": "crash:1.0,seed:3",
                       "REPRO_JOB_RETRIES": "0"},
        )
        try:
            jobs = [
                client.submit(
                    {"kind": "run", "circuit": "s27", "config": {"seed": seed}}
                )
                for seed in (11, 12, 13)
            ]
            for job in jobs:
                done = client.wait(job["id"], timeout=600)
                assert done["status"] == "done", done["error"]
            health = client.healthz()
            assert health["status"] == "ok"  # service outlived the chaos
            assert health["tier"]["degraded"] is True
            assert health["tier"]["restarts"] >= 1
            assert health["counters"]["service.jobs.degraded"] == 3
            client.shutdown()
            assert proc.wait(timeout=60) == 0
            _assert_process_group_empty(proc.pid)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)

    def test_sigkill_during_preemption_still_lands_preempted(self, tmp_path):
        """DELETE a running job, then SIGKILL the service before the
        preemption settles: after restart the job must still reach the
        terminal ``preempted`` state (the stop file and ledger survive),
        and resubmitting finishes bit-identically from the checkpoint."""
        reference = GaTestGenerator(s27(), TestGenConfig(seed=9)).run()
        state = tmp_path / "state"
        payload = {"kind": "run", "circuit": "s27", "config": {"seed": 9},
                   "checkpoint_every": 1}

        victim, client = _serve(state)
        try:
            job = client.submit(payload)
            ckpt_dir = state / "checkpoints"
            deadline = time.monotonic() + 120
            while not list(ckpt_dir.glob("run-*.ckpt")):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.005)
            client.cancel(job["id"])  # preemption now in flight
        finally:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

        survivor, client = _serve(state)
        try:
            ended = client.wait(job["id"], timeout=600)
            assert ended["status"] == "preempted", ended
            again = client.submit(payload)
            assert again["id"] != job["id"]
            done = client.wait(again["id"], timeout=600)
            assert done["status"] == "done", done["error"]
            assert done["result"]["test_sequence"] == [
                list(v) for v in reference.test_sequence
            ]
            assert done["result"]["detected"] == reference.detected
            client.shutdown()
            assert survivor.wait(timeout=60) == 0
        finally:
            if survivor.poll() is None:  # pragma: no cover - cleanup
                os.killpg(survivor.pid, signal.SIGKILL)
                survivor.wait(timeout=30)
