"""Smoke tests for the public package surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_workflow():
    """The README quickstart must work verbatim."""
    from repro import GaTestGenerator, TestGenConfig, s27

    result = GaTestGenerator(s27(), TestGenConfig(seed=1)).run()
    assert result.fault_coverage > 0.5
    assert len(result.test_sequence) > 0


def test_all_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_alls():
    import repro.baselines
    import repro.circuit
    import repro.core
    import repro.faults
    import repro.ga
    import repro.harness
    import repro.sim

    for module in (repro.circuit, repro.sim, repro.faults, repro.ga,
                   repro.core, repro.baselines):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_fault_simulator_exported():
    from repro import FaultSimulator, generate_faults
    from repro.circuit import s27

    sim = FaultSimulator(s27())
    assert sim.num_faults > 0
    assert len(generate_faults(s27())) > sim.num_faults
