"""Tests for the reproduction extensions: compaction, transition faults,
island-model GA (the paper's conclusion items, DESIGN.md §5)."""

import random

import pytest

from repro.circuit import mini_fsm, resettable_counter, s27, shift_register
from repro.circuit.gates import X, eval_gate_scalar
from repro.core import GaTestGenerator, TestGenConfig, compact_test_set
from repro.core.compaction import TestSetCompactor
from repro.faults import (
    FaultSimulator,
    TransitionFault,
    TransitionFaultSimulator,
    generate_transition_faults,
)
from repro.ga import BinaryCoding, GAParams, IslandGA, IslandParams

from tests.conftest import random_vectors


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

class TestCompaction:
    def test_preserves_coverage(self):
        circuit = s27()
        result = GaTestGenerator(circuit, TestGenConfig(seed=1)).run()
        compaction = compact_test_set(circuit, result.test_sequence)
        assert compaction.compacted_detected >= compaction.original_detected
        fsim = FaultSimulator(circuit)
        fsim.commit(compaction.test_sequence)
        assert fsim.detected_count >= result.detected

    def test_shrinks_padded_test_set(self):
        """A test set padded with useless tail vectors compacts hard."""
        circuit = s27()
        result = GaTestGenerator(circuit, TestGenConfig(seed=1)).run()
        padded = result.test_sequence + [[0, 0, 0, 0]] * 20
        compaction = compact_test_set(circuit, padded)
        assert compaction.compacted_vectors <= len(result.test_sequence)
        assert compaction.reduction > 0.4

    def test_empty_test_set(self):
        compaction = compact_test_set(s27(), [])
        assert compaction.original_vectors == 0
        assert compaction.compacted_vectors == 0
        assert compaction.reduction == 0.0

    def test_useless_test_set_compacts_to_nothing(self):
        # A single constant vector detects a few faults; repeating it 30
        # times detects no more, so almost everything is dropped.
        circuit = s27()
        vectors = [[1, 1, 1, 1]] * 30
        compaction = compact_test_set(circuit, vectors)
        assert compaction.compacted_vectors <= 2
        assert compaction.compacted_detected >= compaction.original_detected

    def test_trials_counted(self):
        compactor = TestSetCompactor(s27())
        compaction = compactor.compact(random_vectors(s27(), 10, seed=1))
        assert compaction.trials == compactor.trials > 0

    def test_custom_fault_list(self):
        circuit = s27()
        from repro.faults import collapsed_fault_list

        faults = collapsed_fault_list(circuit)[:8]
        vectors = random_vectors(circuit, 20, seed=2)
        compaction = compact_test_set(circuit, vectors, faults=faults)
        fsim = FaultSimulator(circuit, faults=faults)
        fsim.commit(compaction.test_sequence)
        assert fsim.detected_count == compaction.compacted_detected


# ---------------------------------------------------------------------------
# Transition faults
# ---------------------------------------------------------------------------

def reference_transition_run(circuit, fault, vectors):
    """Scalar conditional-stuck-at reference for one transition fault."""

    def machine(active):
        ff = {f: X for f in circuit.dffs}
        prev_values = {n: X for n in range(circuit.num_nodes)}
        frames = []
        for vec in vectors:
            good = {}
            for j, pi in enumerate(circuit.inputs):
                good[pi] = vec[j]
            for f in circuit.dffs:
                good[f] = ff["good", f] if ("good", f) in ff else ff.get(f, X)
            # First compute the fault-free frame (excitation condition).
            good_vals = dict(good)
            for node in circuit.topo_order:
                good_vals[node] = eval_gate_scalar(
                    circuit.node_types[node],
                    (good_vals[s] for s in circuit.fanins[node]),
                )
            yield_frame = good_vals
            frames.append(yield_frame)
            for f in circuit.dffs:
                ff[f] = good_vals[circuit.fanins[f][0]]
        return frames

    # Fault-free trace (for excitation) — full scalar resimulation.
    good_frames = []
    ff = {f: X for f in circuit.dffs}
    for vec in vectors:
        values = {}
        for j, pi in enumerate(circuit.inputs):
            values[pi] = vec[j]
        for f in circuit.dffs:
            values[f] = ff[f]
        for node in circuit.topo_order:
            values[node] = eval_gate_scalar(
                circuit.node_types[node],
                (values[s] for s in circuit.fanins[node]),
            )
        good_frames.append(values)
        for f in circuit.dffs:
            ff[f] = values[circuit.fanins[f][0]]

    # Faulty machine with per-frame conditional forcing.
    ff = {f: X for f in circuit.dffs}
    detected = False
    prev = {n: X for n in range(circuit.num_nodes)}
    for t, vec in enumerate(vectors):
        good = good_frames[t]
        excited = (
            prev[fault.node] == 1 - fault.slow_to
            and good[fault.node] == fault.slow_to
        )
        values = {}
        for j, pi in enumerate(circuit.inputs):
            values[pi] = vec[j]
        for f in circuit.dffs:
            values[f] = ff[f]
        if excited and fault.node in values:
            values[fault.node] = fault.stuck_value
        for node in circuit.topo_order:
            v = eval_gate_scalar(
                circuit.node_types[node],
                (values[s] for s in circuit.fanins[node]),
            )
            if excited and node == fault.node:
                v = fault.stuck_value
            values[node] = v
        for po in circuit.outputs:
            g, f_ = good[po], values[po]
            if g != X and f_ != X and g != f_:
                detected = True
        for f in circuit.dffs:
            ff[f] = values[circuit.fanins[f][0]]
        prev = good
    return detected


class TestTransitionFaults:
    def test_fault_list_size(self, s27_circuit):
        assert len(generate_transition_faults(s27_circuit)) == 2 * s27_circuit.num_nodes

    def test_describe(self, s27_circuit):
        fault = TransitionFault(s27_circuit.id_of("G10"), 1)
        assert fault.describe(s27_circuit) == "G10 slow-to-rise"

    def test_no_transitions_no_detections(self):
        circuit = shift_register(3)
        sim = TransitionFaultSimulator(circuit)
        sim.commit([[1]] * 12)
        assert sim.detected_count == 0

    def test_toggling_stream_detects_shift_register(self):
        circuit = shift_register(3)
        sim = TransitionFaultSimulator(circuit)
        sim.commit([[b] for b in (0, 1) * 6])
        assert sim.detected_count == sim.num_faults

    @pytest.mark.parametrize("factory,seed", [
        (s27, 3), (mini_fsm, 5), (lambda: resettable_counter(3), 7),
    ])
    def test_against_scalar_reference(self, factory, seed):
        circuit = factory()
        vectors = random_vectors(circuit, 20, seed=seed)
        sim = TransitionFaultSimulator(circuit)
        result = sim.commit(vectors)
        parallel = {f for f, _ in result.detections}
        reference = {
            f for f in generate_transition_faults(circuit)
            if reference_transition_run(circuit, f, vectors)
        }
        assert parallel == reference

    def test_incremental_commits_track_prev_values(self):
        """Excitation across a commit boundary must still fire."""
        circuit = shift_register(2)
        whole = TransitionFaultSimulator(circuit)
        whole.commit([[0], [1], [0], [1], [0], [1]])
        pieces = TransitionFaultSimulator(circuit)
        for vec in [[0], [1], [0], [1], [0], [1]]:
            pieces.commit([vec])
        assert whole.detected_count == pieces.detected_count

    def test_snapshot_restore_includes_prev_values(self):
        circuit = shift_register(2)
        sim = TransitionFaultSimulator(circuit)
        sim.commit([[0]])
        snap = sim.snapshot()
        sim.commit([[1], [0], [1]])
        after = sim.detected_count
        sim.restore(snap)
        sim.commit([[1], [0], [1]])
        assert sim.detected_count == after

    def test_evaluate_matches_commit(self):
        circuit = mini_fsm()
        sim = TransitionFaultSimulator(circuit)
        vectors = random_vectors(circuit, 8, seed=9)
        evaluation = sim.evaluate(vectors)
        commit = sim.commit(vectors)
        assert evaluation.detected == commit.detected_count

    def test_evaluate_batch_matches_serial(self):
        circuit = mini_fsm()
        sim = TransitionFaultSimulator(circuit)
        sim.commit(random_vectors(circuit, 4, seed=1))
        candidates = [
            random_vectors(circuit, 3, seed=s) for s in range(5)
        ]
        serial = [sim.evaluate(c) for c in candidates]
        batch = sim.evaluate_batch(candidates)
        assert serial == batch

    def test_gatest_on_transition_model(self):
        result = GaTestGenerator(
            mini_fsm(), TestGenConfig(seed=1, fault_model="transition")
        ).run()
        assert result.fault_coverage > 0.5

    def test_bad_fault_model_rejected(self):
        with pytest.raises(ValueError, match="fault model"):
            TestGenConfig(fault_model="bridging")


# ---------------------------------------------------------------------------
# Island-model GA
# ---------------------------------------------------------------------------

def onemax(chromosomes):
    return [float(sum(c)) for c in chromosomes]


class TestIslandGA:
    def test_single_island_matches_plain_ga_interface(self):
        coding = BinaryCoding(20)
        params = GAParams(population_size=8, generations=6, mutation_rate=0.05)
        result = IslandGA(
            coding, onemax, params, IslandParams(n_islands=1),
            rng=random.Random(0),
        ).run()
        assert result.generations_run == 6
        assert result.evaluations == 8 * 7  # initial + 6 generations

    def test_multi_island_evaluation_accounting(self):
        coding = BinaryCoding(20)
        params = GAParams(population_size=6, generations=4, mutation_rate=0.05)
        result = IslandGA(
            coding, onemax, params,
            IslandParams(n_islands=3, migration_interval=2),
            rng=random.Random(0),
        ).run()
        assert result.evaluations == 3 * 6 * (4 + 1)

    def test_converges(self):
        coding = BinaryCoding(30)
        params = GAParams(population_size=8, generations=20, mutation_rate=1 / 30)
        result = IslandGA(
            coding, onemax, params,
            IslandParams(n_islands=4, migration_interval=3),
            rng=random.Random(2),
        ).run()
        assert result.best.fitness >= 26

    def test_migration_spreads_good_genes(self):
        """With migration, a fit individual seeded into one island must
        lift the global best even when other islands start poor."""
        coding = BinaryCoding(16)
        params = GAParams(
            population_size=4, generations=6, mutation_rate=0.0,
            crossover_prob=0.0,
        )
        ga = IslandGA(
            coding, onemax, params,
            IslandParams(n_islands=2, migration_interval=1, migrants=1),
            rng=random.Random(3),
        )
        result = ga.run()
        assert result.best.fitness >= 8  # sanity: something decent survives

    def test_params_validated(self):
        with pytest.raises(ValueError):
            IslandParams(n_islands=0)
        with pytest.raises(ValueError):
            IslandParams(migration_interval=0)
        with pytest.raises(ValueError):
            IslandParams(migrants=-1)

    def test_gatest_with_islands(self):
        a = GaTestGenerator(mini_fsm(), TestGenConfig(seed=1, n_islands=2)).run()
        assert a.detected > 0

    def test_islands_config_validated(self):
        with pytest.raises(ValueError):
            TestGenConfig(n_islands=0)
