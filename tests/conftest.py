"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.circuit import (
    c17,
    mini_fsm,
    parity_tracker,
    resettable_counter,
    s27,
    shift_register,
    synthesize_named,
    uninitializable_loop,
)


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture(scope="session")
def s27_circuit():
    return s27()


@pytest.fixture(scope="session")
def c17_circuit():
    return c17()


@pytest.fixture(scope="session")
def minifsm_circuit():
    return mini_fsm()


@pytest.fixture(scope="session")
def counter3_circuit():
    return resettable_counter(3)


@pytest.fixture(scope="session")
def tiny_synth():
    """A small synthetic circuit (scaled s298) used by integration tests."""
    return synthesize_named("s298", seed=3, scale=0.15)


def random_vectors(circuit, count, seed=0):
    """Deterministic random binary vectors for a circuit."""
    rng = random.Random(seed)
    return [
        [rng.randint(0, 1) for _ in range(circuit.num_inputs)]
        for _ in range(count)
    ]
