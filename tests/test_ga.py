"""Tests for the GA engine: codings, operators, selection, evolution."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.ga import (
    BinaryCoding,
    GAParams,
    GAResult,
    GeneticAlgorithm,
    Individual,
    Mutation,
    NonbinaryCoding,
    OnePoint,
    Population,
    TwoPoint,
    Uniform,
    make_coding,
    make_crossover,
    make_selection,
)


@pytest.fixture
def rng():
    return random.Random(99)


# ---------------------------------------------------------------------------
# Codings
# ---------------------------------------------------------------------------

class TestBinaryCoding:
    def test_length(self):
        assert BinaryCoding(5, 3).length == 15

    def test_random_in_alphabet(self, rng):
        chrom = BinaryCoding(8, 2).random(rng)
        assert len(chrom) == 16
        assert set(chrom) <= {0, 1}

    def test_decode_splits_frames(self):
        coding = BinaryCoding(3, 2)
        assert coding.decode([1, 0, 1, 0, 1, 1]) == [[1, 0, 1], [0, 1, 1]]

    def test_decode_length_checked(self):
        with pytest.raises(ValueError):
            BinaryCoding(3, 2).decode([0, 1])

    def test_mutate_gene_flips(self, rng):
        coding = BinaryCoding(4)
        assert coding.mutate_gene(0, rng) == 1
        assert coding.mutate_gene(1, rng) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BinaryCoding(0)


class TestNonbinaryCoding:
    def test_length_is_frames(self):
        assert NonbinaryCoding(5, 3).length == 3

    def test_random_in_alphabet(self, rng):
        coding = NonbinaryCoding(4, 6)
        chrom = coding.random(rng)
        assert len(chrom) == 6
        assert all(0 <= g < 16 for g in chrom)

    def test_decode_bits(self):
        coding = NonbinaryCoding(4, 2)
        assert coding.decode([0b1010, 0b0001]) == [[0, 1, 0, 1], [1, 0, 0, 0]]

    def test_mutate_gene_replaces_vector(self):
        coding = NonbinaryCoding(16, 1)
        rng = random.Random(5)
        gene = coding.mutate_gene(12345, rng)
        assert 0 <= gene < 2 ** 16

    def test_phenotypes_agree_with_binary(self, rng):
        """Both codings must decode to the same phenotype space."""
        binary = BinaryCoding(4, 3)
        nonbinary = NonbinaryCoding(4, 3)
        chrom_b = binary.random(rng)
        pheno = binary.decode(chrom_b)
        chrom_n = [sum(bit << j for j, bit in enumerate(vec)) for vec in pheno]
        assert nonbinary.decode(chrom_n) == pheno

    def test_make_coding(self):
        assert isinstance(make_coding("binary", 4, 2), BinaryCoding)
        assert isinstance(make_coding("nonbinary", 4, 2), NonbinaryCoding)
        with pytest.raises(ValueError):
            make_coding("ternary", 4)


# ---------------------------------------------------------------------------
# Crossover
# ---------------------------------------------------------------------------

class TestCrossover:
    @pytest.mark.parametrize("op", [OnePoint(), TwoPoint(), Uniform()])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_gene_conservation(self, op, data):
        """At every position, children hold a permutation of parent genes."""
        length = data.draw(st.integers(2, 20))
        a = data.draw(st.lists(st.integers(0, 9), min_size=length, max_size=length))
        b = data.draw(st.lists(st.integers(0, 9), min_size=length, max_size=length))
        rng = random.Random(data.draw(st.integers(0, 999)))
        child_a, child_b = op.cross(a, b, rng)
        for i in range(length):
            assert Counter([child_a[i], child_b[i]]) == Counter([a[i], b[i]])

    def test_one_point_contiguity(self):
        a, b = [0] * 10, [1] * 10
        rng = random.Random(3)
        child_a, child_b = OnePoint().cross(a, b, rng)
        # Exactly one transition in each child.
        changes = sum(
            1 for i in range(9) if child_a[i] != child_a[i + 1]
        )
        assert changes == 1
        assert child_a != a and child_b != b

    def test_two_point_segment(self):
        a, b = [0] * 12, [1] * 12
        rng = random.Random(4)
        child_a, _ = TwoPoint().cross(a, b, rng)
        changes = sum(1 for i in range(11) if child_a[i] != child_a[i + 1])
        assert changes in (0, 1, 2)

    def test_uniform_swap_prob_one_swaps_everything(self):
        a, b = [0] * 8, [1] * 8
        child_a, child_b = Uniform(swap_prob=1.0).cross(a, b, random.Random(0))
        assert child_a == b and child_b == a

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OnePoint().cross([0, 1], [0], random.Random(0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Uniform().cross([], [], random.Random(0))

    def test_length_one_degenerates(self):
        for op in (OnePoint(), TwoPoint()):
            assert op.cross([5], [7], random.Random(0)) == ([5], [7])

    def test_make_crossover(self):
        assert isinstance(make_crossover("uniform"), Uniform)
        with pytest.raises(ValueError):
            make_crossover("3-point")


# ---------------------------------------------------------------------------
# Mutation
# ---------------------------------------------------------------------------

class TestMutation:
    def test_rate_zero_identity(self, rng):
        coding = BinaryCoding(20)
        chrom = coding.random(rng)
        assert Mutation(0.0).mutate(chrom, coding, rng) == chrom

    def test_rate_one_flips_all_binary(self, rng):
        coding = BinaryCoding(20)
        chrom = coding.random(rng)
        mutated = Mutation(1.0).mutate(chrom, coding, rng)
        assert all(m == 1 - c for m, c in zip(mutated, chrom))

    def test_input_not_modified(self, rng):
        coding = BinaryCoding(10)
        chrom = [0] * 10
        Mutation(1.0).mutate(chrom, coding, rng)
        assert chrom == [0] * 10

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            Mutation(1.5)

    def test_expected_rate_statistics(self):
        coding = BinaryCoding(1000)
        rng = random.Random(1)
        chrom = [0] * 1000
        mutated = Mutation(1 / 16).mutate(chrom, coding, rng)
        flips = sum(mutated)
        assert 30 <= flips <= 100  # E = 62.5


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------

class TestSelection:
    FITNESSES = [1.0, 2.0, 4.0, 8.0]

    @pytest.mark.parametrize("name", ["roulette", "sus", "tournament", "tournament-r"])
    def test_biased_toward_fit(self, name):
        scheme = make_selection(name)
        rng = random.Random(7)
        picks = scheme.select(self.FITNESSES, 4000, rng)
        counts = Counter(picks)
        assert counts[3] > counts[0]  # fittest picked more than least fit

    def test_sus_low_noise(self):
        """SUS expectation: copies within one of N * f_i / sum."""
        scheme = make_selection("sus")
        rng = random.Random(3)
        picks = scheme.select(self.FITNESSES, 60, rng)
        counts = Counter(picks)
        total = sum(self.FITNESSES)
        for i, f in enumerate(self.FITNESSES):
            expected = 60 * f / total
            assert abs(counts[i] - expected) <= 1

    def test_tournament_without_replacement_worst_never_wins_round(self):
        scheme = make_selection("tournament")
        rng = random.Random(5)
        # One full traversal = 2 picks from 4 individuals: the worst
        # individual (index 0) can never win its tournament.
        picks = scheme.select(self.FITNESSES, 2, rng)
        assert 0 not in picks

    @pytest.mark.parametrize("name", ["roulette", "sus", "tournament", "tournament-r"])
    def test_zero_fitness_fallback(self, name):
        scheme = make_selection(name)
        picks = scheme.select([0.0, 0.0, 0.0], 30, random.Random(1))
        assert len(picks) == 30
        assert set(picks) <= {0, 1, 2}

    @pytest.mark.parametrize("name", ["roulette", "sus"])
    def test_negative_fitness_rejected(self, name):
        with pytest.raises(ValueError):
            make_selection(name).select([1.0, -1.0], 2, random.Random(0))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            make_selection("tournament").select([], 1, random.Random(0))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_selection("lottery")

    @pytest.mark.parametrize("name", ["roulette", "sus", "tournament", "tournament-r"])
    def test_deterministic_given_rng(self, name):
        scheme = make_selection(name)
        a = scheme.select(self.FITNESSES, 10, random.Random(42))
        b = scheme.select(self.FITNESSES, 10, random.Random(42))
        assert a == b


# ---------------------------------------------------------------------------
# Population
# ---------------------------------------------------------------------------

class TestPopulation:
    def make(self):
        return Population([Individual([i], float(i)) for i in range(5)])

    def test_best(self):
        assert self.make().best().fitness == 4.0

    def test_worst_indices(self):
        assert self.make().worst_indices(2) == [0, 1]

    def test_replace_worst(self):
        pop = self.make()
        pop.replace_worst([Individual([9], 9.0), Individual([8], 8.0)])
        assert sorted(pop.fitnesses) == [2.0, 3.0, 4.0, 8.0, 9.0]

    def test_replace_all_size_checked(self):
        with pytest.raises(ValueError):
            self.make().replace_all([Individual([0], 0.0)])

    def test_replace_worst_overflow_checked(self):
        pop = self.make()
        with pytest.raises(ValueError):
            pop.replace_worst([Individual([0], 0.0)] * 6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Population([])

    def test_mean(self):
        assert self.make().mean_fitness() == 2.0


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def onemax(chromosomes):
    return [float(sum(c)) for c in chromosomes]


class TestEngine:
    def test_converges_on_onemax(self):
        coding = BinaryCoding(30)
        ga = GeneticAlgorithm(
            coding, onemax,
            GAParams(population_size=16, generations=25, mutation_rate=1 / 30),
            rng=random.Random(0),
        )
        result = ga.run()
        assert result.best.fitness >= 27

    def test_evaluation_accounting_nonoverlapping(self):
        coding = BinaryCoding(10)
        params = GAParams(population_size=8, generations=5, mutation_rate=0.1)
        ga = GeneticAlgorithm(coding, onemax, params, rng=random.Random(1))
        result = ga.run()
        assert result.evaluations == 8 * (5 + 1)

    def test_evaluation_accounting_overlapping(self):
        coding = BinaryCoding(10)
        params = GAParams(
            population_size=16, generations=5, mutation_rate=0.1, generation_gap=0.25
        )
        ga = GeneticAlgorithm(coding, onemax, params, rng=random.Random(1))
        result = ga.run()
        assert params.offspring_per_generation == 4
        assert result.evaluations == 16 + 5 * 4

    def test_best_ever_never_decreases(self):
        coding = BinaryCoding(20)
        history_best = []

        def spy(gen, pop):
            history_best.append(pop.best().fitness)

        ga = GeneticAlgorithm(
            coding, onemax,
            GAParams(population_size=8, generations=10, mutation_rate=0.2),
            rng=random.Random(2),
        )
        result = ga.run(on_generation=spy)
        assert result.best.fitness >= max(history_best) - 1e-9
        assert len(result.history) == 11

    def test_offspring_even(self):
        params = GAParams(population_size=9, generations=1, generation_gap=0.33)
        assert params.offspring_per_generation % 2 == 0

    def test_initial_population_supplied(self):
        coding = BinaryCoding(4)
        initial = [[1, 1, 1, 1]] * 6
        ga = GeneticAlgorithm(
            coding, onemax,
            GAParams(population_size=6, generations=1, mutation_rate=0.0),
            rng=random.Random(0), initial=initial,
        )
        result = ga.run()
        assert result.best.fitness == 4.0
        assert result.best_generation == 0

    def test_initial_population_size_checked(self):
        coding = BinaryCoding(4)
        with pytest.raises(ValueError, match="initial population"):
            GeneticAlgorithm(
                coding, onemax,
                GAParams(population_size=6, generations=1),
                initial=[[0, 0, 0, 0]],
            ).run()

    def test_evaluator_mismatch_detected(self):
        coding = BinaryCoding(4)
        ga = GeneticAlgorithm(
            coding, lambda chroms: [1.0],
            GAParams(population_size=4, generations=1),
            rng=random.Random(0),
        )
        with pytest.raises(ValueError, match="evaluator returned"):
            ga.run()

    def test_params_validation(self):
        with pytest.raises(ValueError):
            GAParams(population_size=1)
        with pytest.raises(ValueError):
            GAParams(population_size=4, generations=0)
        with pytest.raises(ValueError):
            GAParams(population_size=4, generation_gap=0.0)
        with pytest.raises(ValueError):
            GAParams(population_size=4, crossover_prob=2.0)

    def test_crossover_prob_zero_clones_parents(self):
        coding = BinaryCoding(12)
        params = GAParams(
            population_size=4, generations=3, mutation_rate=0.0, crossover_prob=0.0
        )
        ga = GeneticAlgorithm(coding, onemax, params, rng=random.Random(3))
        result = ga.run()
        # With no crossover and no mutation, genes never change: best is
        # the best of the initial random population.
        assert result.best_generation == 0

    def test_scheme_ordering_on_onemax(self):
        """The paper's headline GA finding, reproduced on onemax:
        tournament selection beats proportionate selection."""
        coding = BinaryCoding(40)

        def mean_best(selection):
            scores = []
            for seed in range(5):
                ga = GeneticAlgorithm(
                    coding, onemax,
                    GAParams(population_size=16, generations=15,
                             selection=selection, mutation_rate=1 / 40),
                    rng=random.Random(seed),
                )
                scores.append(ga.run().best.fitness)
            return sum(scores) / len(scores)

        assert mean_best("tournament") > mean_best("roulette")
