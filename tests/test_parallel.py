"""Determinism suite for fault-sharded evaluation and the eval cache.

The contract under test (ISSUE: parallel evaluation): every
``eval_jobs`` / ``eval_cache`` setting must produce *bit-identical*
results to the plain serial simulator — identical ``CandidateEval``
observables and identical final test sets — because shard merges are
exact (disjoint fault subsets summed) and cache entries are invalidated
by the committed-state epoch.
"""

from __future__ import annotations

import random

import pytest

from repro.circuit import s27, synthesize_named
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator
from repro.faults.transition import TransitionFaultSimulator
from repro.ga.chromosome import make_coding
from repro.ga.engine import GAParams, GeneticAlgorithm
from repro.harness import run_gatest
from repro.parallel import EvalCache, ParallelEvaluator, eval_key, plan_shards
from repro.parallel.sharding import shard_groups

from tests.conftest import random_vectors


def _circuits():
    """s27 plus two synthesized circuits (the ISSUE's determinism set)."""
    return [
        s27(),
        synthesize_named("s298", seed=3, scale=0.15),
        synthesize_named("s386", seed=5, scale=0.15),
    ]


@pytest.fixture(autouse=True)
def _force_shard(monkeypatch):
    """Exercise the real pool fan-out even on single-CPU CI hosts (the
    evaluator's usable-CPU heuristic would otherwise score in-process)."""
    monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")


class TestShardPlanning:
    def test_partition_covers_exactly(self):
        for n_groups in range(0, 23):
            for jobs in range(1, 7):
                shards = plan_shards(n_groups, jobs)
                covered = [i for start, stop in shards for i in range(start, stop)]
                assert covered == list(range(n_groups))

    def test_balanced_within_one(self):
        for n_groups in (1, 5, 16, 33):
            for jobs in (2, 3, 4, 8):
                sizes = [stop - start for start, stop in plan_shards(n_groups, jobs)]
                assert max(sizes) - min(sizes) <= 1
                assert len(sizes) == min(jobs, n_groups)

    def test_shard_groups_concatenates_back(self):
        groups = [[1, 2], [3], [4, 5, 6], [7], [8]]
        shards = shard_groups(groups, 3)
        assert [g for shard in shards for g in shard] == groups

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 2)


class TestEvalCache:
    def test_hit_and_miss_accounting(self):
        cache = EvalCache()
        key = eval_key([[0, 1]], [0, 1, 2], False)
        assert cache.get(0, key) is None
        cache.put(0, key, "sentinel")
        assert cache.get(0, key) == "sentinel"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_epoch_change_invalidates(self):
        cache = EvalCache()
        key = eval_key([[1]], [0], False)
        cache.put(3, key, "old")
        assert cache.get(4, key) is None
        assert len(cache) == 0

    def test_eviction_bound(self):
        cache = EvalCache(max_entries=2)
        for i in range(5):
            cache.put(0, eval_key([[i]], [0], False), i)
        assert len(cache) == 2

    def test_key_distinguishes_sample_and_flags(self):
        base = eval_key([[0, 1]], [0, 1], False)
        assert eval_key([[0, 1]], [0, 2], False) != base
        assert eval_key([[0, 1]], [0, 1], True) != base
        assert eval_key([[0, 0]], [0, 1], False) != base


class TestSerialPathUntouched:
    def test_default_simulator_has_no_parallel_layer(self):
        sim = FaultSimulator(s27())
        assert sim._parallel is None
        sim.close()  # a no-op, but must be callable

    def test_eval_jobs_validation(self):
        with pytest.raises(ValueError):
            FaultSimulator(s27(), eval_jobs=0)
        with pytest.raises(ValueError):
            TestGenConfig(eval_jobs=0)

    def test_config_cache_resolution(self):
        assert not TestGenConfig().eval_cache_enabled
        assert TestGenConfig(eval_jobs=2).eval_cache_enabled
        assert TestGenConfig(eval_cache=True).eval_cache_enabled
        assert not TestGenConfig(eval_jobs=4, eval_cache=False).eval_cache_enabled


@pytest.mark.parametrize("jobs", [2, 4], ids=["jobs2", "jobs4"])
class TestCandidateEvalDeterminism:
    """Sharded scores must equal serial scores observable-for-observable."""

    def test_evaluate_matches_serial(self, jobs):
        for circuit in _circuits():
            # A small word width forces several fault groups so the
            # shard fan-out genuinely crosses the process pool.
            serial = FaultSimulator(circuit, word_width=8)
            sharded = FaultSimulator(circuit, word_width=8, eval_jobs=jobs)
            warmup = random_vectors(circuit, 4, seed=11)
            serial.commit(warmup)
            sharded.commit(warmup)
            try:
                for seed in range(4):
                    vectors = random_vectors(circuit, 3, seed=seed)
                    expected = serial.evaluate(vectors, count_faulty_events=True)
                    assert sharded.evaluate(
                        vectors, count_faulty_events=True
                    ) == expected
                    # Second lookup is a cache hit; still identical.
                    assert sharded.evaluate(
                        vectors, count_faulty_events=True
                    ) == expected
                # The fan-out really ran (no silent serial fallback).
                assert sharded._parallel._pool is not None
            finally:
                sharded.close()

    def test_evaluate_batch_matches_serial(self, jobs):
        circuit = _circuits()[1]
        serial = FaultSimulator(circuit, word_width=8)
        sharded = FaultSimulator(circuit, word_width=8, eval_jobs=jobs)
        candidates = [[v] for v in random_vectors(circuit, 12, seed=2)]
        candidates += candidates[:4]  # in-batch duplicates
        try:
            assert sharded.evaluate_batch(candidates) == serial.evaluate_batch(
                candidates
            )
        finally:
            sharded.close()

    def test_sampled_evaluate_matches_serial(self, jobs):
        circuit = _circuits()[2]
        serial = FaultSimulator(circuit, word_width=8)
        sharded = FaultSimulator(circuit, word_width=8, eval_jobs=jobs)
        rng = random.Random(9)
        sample = sorted(rng.sample(serial.active, len(serial.active) // 2))
        vectors = random_vectors(circuit, 2, seed=3)
        try:
            assert sharded.evaluate(vectors, sample=sample) == serial.evaluate(
                vectors, sample=sample
            )
        finally:
            sharded.close()


@pytest.mark.parametrize("jobs", [2, 4], ids=["jobs2", "jobs4"])
class TestGeneratorDeterminism:
    """Full GATEST runs: the final test set must not depend on eval_jobs."""

    def test_final_test_sets_identical(self, jobs):
        for circuit in _circuits():
            baseline = GaTestGenerator(circuit, TestGenConfig(seed=5)).run()
            parallel = GaTestGenerator(
                circuit, TestGenConfig(seed=5, eval_jobs=jobs)
            ).run()
            assert parallel.test_sequence == baseline.test_sequence
            assert parallel.detected == baseline.detected
            assert parallel.ga_evaluations == baseline.ga_evaluations
            assert parallel.trace == baseline.trace

    def test_harness_aggregate_identical(self, jobs):
        circuit = s27()
        config = TestGenConfig(max_vectors=12)
        baseline = run_gatest("s27", config, seeds=[1, 2], circuit=circuit)
        parallel = run_gatest(
            "s27", config, seeds=[1, 2], circuit=circuit, eval_jobs=jobs
        )
        for a, b in zip(baseline.runs, parallel.runs):
            assert a.test_sequence == b.test_sequence
            assert a.detected == b.detected


class TestCacheCorrectness:
    def test_commit_epoch_bump_invalidates(self):
        """A memoized score must never survive a state change (ISSUE:
        cache-correctness across a commit() epoch bump)."""
        circuit = _circuits()[1]
        cached = FaultSimulator(circuit, eval_cache=True)
        reference = FaultSimulator(circuit)
        vectors = random_vectors(circuit, 2, seed=4)

        first = cached.evaluate(vectors)
        assert cached.evaluate(vectors) == first
        cache = cached._parallel.cache
        assert (cache.hits, cache.misses) == (1, 1)

        cached.commit(vectors)
        reference.commit(vectors)
        refreshed = cached.evaluate(vectors)
        assert refreshed == reference.evaluate(vectors)
        assert cache.misses == 2  # the post-commit lookup re-simulated

    def test_restore_also_bumps_epoch(self):
        circuit = s27()
        cached = FaultSimulator(circuit, eval_cache=True)
        vectors = random_vectors(circuit, 2, seed=6)
        snap = cached.snapshot()
        before = cached.evaluate(vectors)
        cached.commit(vectors)
        cached.restore(snap)
        # Same state as before the commit, but a conservative fresh
        # epoch: the result must be recomputed, and must match.
        assert cached.evaluate(vectors) == before
        assert cached._parallel.cache.misses == 2

    def test_duplicate_batch_scores_once(self):
        circuit = s27()
        cached = FaultSimulator(circuit, eval_cache=True)
        vector = random_vectors(circuit, 1, seed=7)[0]
        results = cached.evaluate_batch([[vector]] * 6)
        assert all(r == results[0] for r in results)
        cache = cached._parallel.cache
        assert cache.misses == 1
        assert cache.hits == 5

    def test_transition_model_uses_cache_not_shards(self):
        circuit = s27()
        serial = TransitionFaultSimulator(circuit)
        cached = TransitionFaultSimulator(circuit, eval_jobs=2)
        assert not cached._shardable
        vectors = random_vectors(circuit, 3, seed=8)
        assert cached.evaluate(vectors) == serial.evaluate(vectors)
        assert cached.evaluate(vectors) == serial.evaluate(vectors)
        assert cached._parallel.cache.hits == 1
        cached.close()


class TestEngineDedup:
    def test_dedup_preserves_results_and_reduces_calls(self):
        coding = make_coding("binary", 4, 1)
        seen = []

        def evaluator(chromosomes):
            seen.append(len(chromosomes))
            return [float(sum(c)) for c in chromosomes]

        def run(dedup):
            seen.clear()
            params = GAParams(
                population_size=8, generations=4, dedup_evaluations=dedup
            )
            ga = GeneticAlgorithm(
                coding, evaluator, params, rng=random.Random(3)
            )
            return ga.run(), sum(seen)

        plain, plain_calls = run(False)
        deduped, dedup_calls = run(True)
        assert deduped.best.chromosome == plain.best.chromosome
        assert deduped.history == plain.history
        assert deduped.evaluations == plain.evaluations  # logical count
        assert dedup_calls <= plain_calls  # fewer physical evaluations


class TestCpuHeuristic:
    def test_single_cpu_scores_in_process(self, monkeypatch):
        """With one usable CPU the fan-out is pure overhead, so the
        evaluator keeps misses in-process unless explicitly forced."""
        monkeypatch.delenv("REPRO_EVAL_FORCE_SHARD", raising=False)
        sim = FaultSimulator(_circuits()[1], word_width=8)
        evaluator = ParallelEvaluator(sim, jobs=4)
        evaluator._cpus = 1
        assert not evaluator._can_shard(8)
        evaluator._cpus = 4
        assert evaluator._can_shard(8)
        assert ParallelEvaluator(sim, jobs=4, force_shard=True)._can_shard(8)

    def test_in_process_miss_path_matches_serial(self, monkeypatch):
        """The single-candidate wide-pass miss path (what a single-CPU
        host runs) is bit-identical to the plain serial evaluate."""
        monkeypatch.delenv("REPRO_EVAL_FORCE_SHARD", raising=False)
        circuit = _circuits()[1]
        serial = FaultSimulator(circuit, word_width=8)
        adaptive = FaultSimulator(circuit, word_width=8, eval_jobs=4)
        adaptive._parallel._cpus = 1
        for seed in range(3):
            vectors = random_vectors(circuit, 3, seed=seed)
            assert adaptive.evaluate(
                vectors, count_faulty_events=True
            ) == serial.evaluate(vectors, count_faulty_events=True)
        assert adaptive._parallel._pool is None  # never fanned out
        adaptive.close()


class TestPoolReuse:
    def test_evaluator_usable_after_close(self):
        circuit = _circuits()[1]
        sim = FaultSimulator(circuit, word_width=8)
        evaluator = ParallelEvaluator(sim, jobs=2)
        vectors = random_vectors(circuit, 2, seed=1)
        first = evaluator.evaluate(vectors)
        evaluator.close()
        assert evaluator.evaluate(vectors) == first  # cache hit, no pool
        evaluator.cache.clear()
        assert evaluator.evaluate(vectors) == first  # pool recreated
        evaluator.close()
