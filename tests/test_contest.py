"""Tests for the CONTEST-like unit-Hamming-distance baseline."""

import pytest

from repro.baselines import ContestLikeGenerator
from repro.circuit import mini_fsm, resettable_counter, s27
from repro.faults import FaultSimulator


class TestContestLike:
    def test_s27_high_coverage(self):
        result = ContestLikeGenerator(s27(), seed=1).run()
        assert result.fault_coverage > 0.9

    def test_test_set_replays(self):
        result = ContestLikeGenerator(mini_fsm(), seed=2).run()
        fsim = FaultSimulator(mini_fsm())
        fsim.commit(result.test_sequence)
        assert fsim.detected_count == result.detected

    def test_unit_hamming_moves(self):
        """Consecutive vectors differ in at most one bit (the defining
        restriction of this generator family)."""
        result = ContestLikeGenerator(resettable_counter(3), seed=3).run()
        for a, b in zip(result.test_sequence, result.test_sequence[1:]):
            assert sum(x != y for x, y in zip(a, b)) <= 1

    def test_stagnation_terminates(self):
        result = ContestLikeGenerator(
            mini_fsm(), seed=4, stagnation_limit=5, max_vectors=100_000
        ).run()
        assert result.vectors < 100_000

    def test_vector_budget(self):
        result = ContestLikeGenerator(mini_fsm(), seed=5, max_vectors=7).run()
        assert result.vectors <= 7

    def test_deterministic(self):
        a = ContestLikeGenerator(s27(), seed=9).run()
        b = ContestLikeGenerator(s27(), seed=9).run()
        assert a.test_sequence == b.test_sequence

    def test_evaluations_counted(self):
        result = ContestLikeGenerator(s27(), seed=1).run()
        # n_pi + 1 candidates per committed vector.
        assert result.evaluations == result.vectors * (4 + 1)
