"""Tests for fault-list generation and collapsing."""

import pytest

from repro.circuit import Circuit, GateType, c17, s27
from repro.faults import (
    STEM,
    Fault,
    collapse_faults,
    collapsed_fault_list,
    fault_universe_size,
    generate_faults,
)


class TestGeneration:
    def test_stem_faults_on_every_node(self, s27_circuit):
        faults = generate_faults(s27_circuit)
        stems = {(f.node, f.stuck_at) for f in faults if f.pin == STEM}
        assert len(stems) == 2 * s27_circuit.num_nodes

    def test_branch_faults_only_on_fanout_stems(self, s27_circuit):
        pos = set(s27_circuit.outputs)
        for fault in generate_faults(s27_circuit):
            if fault.pin == STEM:
                continue
            driver = s27_circuit.fanins[fault.node][fault.pin]
            assert len(s27_circuit.fanouts[driver]) > 1 or driver in pos

    def test_po_tap_creates_branch_fault(self):
        # A PO that also drives a gate: the net has two observation
        # points, so the gate pin gets its own branch fault.
        from repro.circuit import Circuit, GateType

        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g", GateType.NOT, ["a"])
        c.add_gate("h", GateType.NOT, ["g"])
        c.mark_output("g")   # observed directly...
        c.mark_output("h")   # ...and through h
        c.finalize()
        faults = generate_faults(c)
        assert Fault(c.id_of("h"), 0, 0) in faults

    def test_no_branches_mode(self, s27_circuit):
        faults = generate_faults(s27_circuit, include_branches=False)
        assert all(f.pin == STEM for f in faults)

    def test_deterministic_order(self, s27_circuit):
        assert generate_faults(s27_circuit) == generate_faults(s27_circuit)

    def test_universe_size(self, c17_circuit):
        # c17: 11 nodes -> 22 stem faults; branch faults on pins fed by
        # multi-fanout nets (3, 11, 16 each fan out twice -> 6 pins -> 12).
        assert fault_universe_size(c17_circuit) == 22 + 12

    def test_describe(self, s27_circuit):
        fault = Fault(s27_circuit.id_of("G10"), STEM, 0)
        assert fault.describe(s27_circuit) == "G10 s-a-0"
        fault = Fault(s27_circuit.id_of("G10"), 1, 1)
        assert fault.describe(s27_circuit) == "G10.in1 s-a-1"


class TestCollapse:
    def test_every_fault_mapped(self, s27_circuit):
        faults = generate_faults(s27_circuit)
        collapsed = collapse_faults(s27_circuit)
        assert set(collapsed.class_of) == set(faults)
        for fault, rep in collapsed.class_of.items():
            assert rep in set(collapsed.representatives)

    def test_members_partition(self, s27_circuit):
        collapsed = collapse_faults(s27_circuit)
        all_members = [f for rep in collapsed.representatives for f in collapsed.expand(rep)]
        assert sorted(all_members) == sorted(generate_faults(s27_circuit))

    def test_representative_is_class_member(self, c17_circuit):
        collapsed = collapse_faults(c17_circuit)
        for rep in collapsed.representatives:
            assert collapsed.class_of[rep] == rep
            assert rep in collapsed.expand(rep)

    def test_and_gate_rule(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        collapsed = collapse_faults(c)
        # a s-a-0 == b s-a-0 == g s-a-0 (single-load nets: stem faults).
        rep_a = collapsed.class_of[Fault(c.id_of("a"), STEM, 0)]
        rep_b = collapsed.class_of[Fault(c.id_of("b"), STEM, 0)]
        rep_g = collapsed.class_of[Fault(c.id_of("g"), STEM, 0)]
        assert rep_a == rep_b == rep_g
        # but s-a-1 faults stay distinct.
        assert (
            collapsed.class_of[Fault(c.id_of("a"), STEM, 1)]
            != collapsed.class_of[Fault(c.id_of("b"), STEM, 1)]
        )

    def test_nand_inverts_output_value(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.NAND, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        collapsed = collapse_faults(c)
        assert (
            collapsed.class_of[Fault(c.id_of("a"), STEM, 0)]
            == collapsed.class_of[Fault(c.id_of("g"), STEM, 1)]
        )

    def test_inverter_chain_collapses_through(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("n1", GateType.NOT, ["a"])
        c.add_gate("n2", GateType.NOT, ["n1"])
        c.mark_output("n2")
        c.finalize()
        collapsed = collapse_faults(c)
        # a s-a-0 == n1 s-a-1 == n2 s-a-0: one class end to end.
        assert (
            collapsed.class_of[Fault(c.id_of("a"), STEM, 0)]
            == collapsed.class_of[Fault(c.id_of("n1"), STEM, 1)]
            == collapsed.class_of[Fault(c.id_of("n2"), STEM, 0)]
        )
        assert len(collapsed) == 2  # exactly two classes remain

    def test_dff_transparent(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_dff("q", "a")
        c.add_gate("o", GateType.BUFF, ["q"])
        c.mark_output("o")
        c.finalize()
        collapsed = collapse_faults(c)
        assert (
            collapsed.class_of[Fault(c.id_of("a"), STEM, 1)]
            == collapsed.class_of[Fault(c.id_of("q"), STEM, 1)]
        )

    def test_xor_not_collapsed(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.XOR, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        collapsed = collapse_faults(c)
        assert len(collapsed) == 6  # nothing merges across an XOR

    def test_branch_faults_collapse_with_gate_output(self, c17_circuit):
        # Net 11 feeds gates 16 and 19 (fanout 2): the branch s-a-0 on
        # 16's pin collapses with 16's output s-a-1 (NAND rule).
        c = c17_circuit
        collapsed = collapse_faults(c)
        g16 = c.id_of("16")
        pin_of_11 = list(c.fanins[g16]).index(c.id_of("11"))
        assert (
            collapsed.class_of[Fault(g16, pin_of_11, 0)]
            == collapsed.class_of[Fault(g16, STEM, 1)]
        )

    def test_collapsed_smaller_than_universe(self, s27_circuit):
        assert len(collapsed_fault_list(s27_circuit)) < fault_universe_size(s27_circuit)

    def test_custom_fault_subset(self, s27_circuit):
        subset = generate_faults(s27_circuit)[:10]
        collapsed = collapse_faults(s27_circuit, subset)
        assert set(collapsed.class_of) == set(subset)
