"""C kernel backend: compile cache, artifact shipping, fallback, telemetry.

Bit-identity of the C backend against the other three lives in
tests/test_codegen.py (the four-way equivalence suite); this module
covers everything *around* the compiled function — the on-disk artifact
cache and its version stamping, parent-to-worker artifact shipping with
the recompile-in-worker fallback, the compiler-less degradation to the
interpreter, and the ``c.*`` telemetry counters (docs/KERNELS.md,
docs/TELEMETRY.md).
"""

from __future__ import annotations

import os

import pytest

from repro.circuit import s27, synthesize_named
from repro.faults import FaultSimulator
from repro.parallel import worker
from repro.sim import ckernel, compile_circuit, kernel_for
from repro.sim.codegen import clear_kernel_cache
from repro.telemetry import TelemetryCollector

from tests.conftest import random_vectors

needs_cc = pytest.mark.skipif(
    not ckernel.available(), reason="no C compiler on PATH"
)


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """Isolated artifact cache; in-process caches cleared around the test."""
    cdir = tmp_path / "ck"
    monkeypatch.setenv(ckernel.CACHE_ENV, str(cdir))
    monkeypatch.setattr(ckernel, "_PRELOADED", {})
    clear_kernel_cache()
    yield cdir
    clear_kernel_cache()


def _wide_circuit():
    """Active fault list > 64 slots, so commits engage the C run_group."""
    return synthesize_named("s298", seed=3, scale=0.3)


class TestSourceAndDigest:
    def test_source_exports_contract_symbol(self, s27_circuit):
        src = ckernel.generate_c_source(compile_circuit(s27_circuit))
        assert "ck_run_group" in src
        assert src.count("ck_run_group") == 1  # one exported symbol
        assert "for (" in src  # frame/word loops, unlike the codegen body

    def test_digest_keyed_by_source_and_version(self, s27_circuit,
                                                monkeypatch):
        src = ckernel.generate_c_source(compile_circuit(s27_circuit))
        d1 = ckernel.source_digest(src)
        assert d1 == ckernel.source_digest(src)
        assert ckernel.source_digest(src + "\n") != d1
        path = ckernel.artifact_path(d1)
        assert f"ck-v{ckernel.CKERNEL_VERSION}-" in os.path.basename(path)
        monkeypatch.setattr(ckernel, "CKERNEL_VERSION",
                            ckernel.CKERNEL_VERSION + 1)
        assert ckernel.source_digest(src) != d1


class TestArtifactCache:
    @needs_cc
    def test_compile_then_disk_cache_hit(self, s27_circuit, fresh_cache):
        compiled = compile_circuit(s27_circuit)
        collector = TelemetryCollector()
        kernel = kernel_for(compiled, "c", collector=collector)
        assert kernel.name == "c"
        counters = collector.counters
        assert counters["c.kernels.built"] == 1
        assert counters["c.cache.misses"] == 1
        assert counters["c.compile.seconds"] > 0
        built = sorted(os.listdir(fresh_cache))
        assert [p.rsplit(".", 1)[1] for p in built] == ["c", "so"]

        # A fresh process (simulated by clearing the in-memory caches)
        # loads the artifact without invoking the compiler.
        clear_kernel_cache()
        reload = TelemetryCollector()
        kernel2 = kernel_for(compiled, "c", collector=reload)
        assert kernel2.name == "c"
        assert reload.counters["c.cache.hits"] == 1
        assert "c.kernels.built" not in reload.counters
        assert sorted(os.listdir(fresh_cache)) == built

    @needs_cc
    def test_version_bump_invalidates_stale_artifact(self, s27_circuit,
                                                     fresh_cache,
                                                     monkeypatch):
        compiled = compile_circuit(s27_circuit)
        kernel_for(compiled, "c", collector=TelemetryCollector())
        stale = {p for p in os.listdir(fresh_cache) if p.endswith(".so")}

        monkeypatch.setattr(ckernel, "CKERNEL_VERSION",
                            ckernel.CKERNEL_VERSION + 1)
        clear_kernel_cache()
        collector = TelemetryCollector()
        kernel = kernel_for(compiled, "c", collector=collector)
        assert kernel.name == "c"
        # The stale artifact was not reused: a new one was compiled
        # under the bumped version tag, next to the old one.
        assert collector.counters["c.cache.misses"] == 1
        assert collector.counters["c.kernels.built"] == 1
        fresh = {p for p in os.listdir(fresh_cache) if p.endswith(".so")}
        assert stale < fresh and len(fresh) == 2

    @needs_cc
    def test_cached_artifact_loads_without_compiler(self, s27_circuit,
                                                    fresh_cache,
                                                    monkeypatch):
        """``available()`` gates *compiling*; a warm cache still serves."""
        compiled = compile_circuit(s27_circuit)
        kernel_for(compiled, "c", collector=TelemetryCollector())
        monkeypatch.setenv(ckernel.CC_ENV, "/nonexistent-cc")
        assert not ckernel.available()
        clear_kernel_cache()
        collector = TelemetryCollector()
        kernel = kernel_for(compiled, "c", collector=collector)
        assert kernel.name == "c"
        assert collector.counters["c.cache.hits"] == 1


class TestCompilerAbsentFallback:
    def test_falls_back_to_interpreter_with_warning(self, s27_circuit,
                                                    fresh_cache,
                                                    monkeypatch):
        """No compiler, cold cache: ``--kernel c`` degrades to the
        interpreter with a warning naming the backend — never an error,
        never a wrong result."""
        monkeypatch.setenv(ckernel.CC_ENV, "/nonexistent-cc")
        assert not ckernel.available()
        compiled = compile_circuit(s27_circuit)
        collector = TelemetryCollector()
        with pytest.warns(RuntimeWarning, match="c kernel.*falling back"):
            sim = FaultSimulator(compiled, kernel="c", collector=collector)
        assert sim.kernel_name == "interp"
        assert collector.counters["c.fallbacks"] == 1
        # ... and the fallback still simulates correctly end to end.
        ref = FaultSimulator(compiled, kernel="interp")
        vectors = random_vectors(s27_circuit, 4, seed=1)
        assert sim.commit(vectors) == ref.commit(vectors)

    def test_relative_cc_override_is_not_path_backed(self, monkeypatch):
        monkeypatch.setenv(ckernel.CC_ENV, "definitely-not-a-compiler")
        assert ckernel._find_cc() is None
        monkeypatch.delenv(ckernel.CC_ENV)
        # Environment restored: the PATH search resumes.
        assert ckernel._find_cc() is not None or not ckernel.available()


class TestArtifactShipping:
    @needs_cc
    def test_shipping_payload_round_trip(self, s27_circuit, fresh_cache,
                                         tmp_path, monkeypatch):
        compiled = compile_circuit(s27_circuit)
        assert ckernel.shipping_payload(compiled) is None  # not built yet
        kernel_for(compiled, "c", collector=TelemetryCollector())
        payload = ckernel.shipping_payload(compiled)
        assert payload is not None
        digest, path = payload
        assert os.path.exists(path) and digest in path

        # A "worker" with an empty cache and a preloaded artifact loads
        # the shipped library directly — no compile, no disk-cache miss.
        monkeypatch.setenv(ckernel.CACHE_ENV, str(tmp_path / "worker-ck"))
        clear_kernel_cache()
        ckernel.preload_artifact(digest, path)
        collector = TelemetryCollector()
        kernel = kernel_for(compiled, "c", collector=collector)
        assert kernel.name == "c"
        assert collector.counters["c.cache.hits"] == 1
        assert "c.kernels.built" not in collector.counters

    @needs_cc
    def test_unusable_preload_recompiles(self, s27_circuit, fresh_cache):
        """The recompile-in-worker fallback: a shipped path that does not
        exist on this host falls through to a local compile."""
        compiled = compile_circuit(s27_circuit)
        src = ckernel.generate_c_source(compiled)
        digest = ckernel.source_digest(src)
        ckernel.preload_artifact(digest, "/nonexistent/shipped.so")
        collector = TelemetryCollector()
        kernel = kernel_for(compiled, "c", collector=collector)
        assert kernel.name == "c"
        assert collector.counters["c.cache.misses"] == 1
        assert collector.counters["c.kernels.built"] == 1

    @needs_cc
    def test_init_worker_registers_artifact(self, s27_circuit, fresh_cache):
        compiled = compile_circuit(s27_circuit)
        parent = FaultSimulator(compiled, kernel="c")
        payload = ckernel.shipping_payload(compiled)
        assert payload is not None
        worker.init_worker(compiled, list(parent.faults), 64,
                           kernel="c", kernel_artifact=payload)
        try:
            assert ckernel._PRELOADED.get(payload[0]) == payload[1]
            assert worker._SIM is not None
            assert worker._SIM.kernel_name == "c"
        finally:
            worker._SIM = None

    @needs_cc
    def test_sharded_matches_serial(self, fresh_cache, monkeypatch):
        """eval_jobs=2 through the real pool with the C backend: shipped
        or recompiled, shard results stay bit-identical to serial."""
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        circuit = _wide_circuit()
        serial = FaultSimulator(circuit, kernel="c")
        sharded = FaultSimulator(
            serial.compiled, kernel="c", eval_jobs=2, eval_cache=False
        )
        warm = random_vectors(circuit, 4, seed=2)
        serial.commit(warm)
        sharded.commit(warm)
        try:
            for seed in (3, 4):
                vectors = random_vectors(circuit, 2, seed=seed)
                assert sharded.evaluate(vectors) == serial.evaluate(vectors)
        finally:
            sharded.close()


class TestTelemetry:
    @needs_cc
    def test_selection_and_group_counters(self, fresh_cache):
        circuit = _wide_circuit()
        collector = TelemetryCollector()
        sim = FaultSimulator(circuit, kernel="c", collector=collector)
        assert sim.kernel_name == "c"
        assert collector.counters["sim.kernel.c"] == 1
        sim.commit(random_vectors(circuit, 4, seed=1))
        counters = collector.counters
        assert counters["c.kernels.built"] == 1
        assert counters["c.group.passes"] >= 1
        assert counters["c.group.slot_frames"] > 0

    @needs_cc
    def test_narrow_groups_stay_on_bigints(self, fresh_cache):
        """s27's whole fault list fits one 64-slot word, so commits never
        touch the compiled runner (the width guard in _run_group)."""
        circuit = s27()
        collector = TelemetryCollector()
        sim = FaultSimulator(circuit, kernel="c", collector=collector)
        sim.commit(random_vectors(circuit, 6, seed=1))
        assert "c.group.passes" not in collector.counters
        assert sim.detected_count > 0
