"""Tests for the structural Verilog bridge."""

import pytest

from repro.circuit import (
    Circuit,
    GateType,
    VerilogError,
    load_verilog,
    mini_fsm,
    parse_verilog,
    s27,
    save_verilog,
    synthesize_named,
    write_verilog,
)
from repro.sim import SerialSimulator

from tests.conftest import random_vectors


class TestWriter:
    def test_module_structure(self, s27_circuit):
        text = write_verilog(s27_circuit)
        assert "module s27 (clk, G0, G1, G2, G3, G17);" in text
        assert text.count("dff ff_") == 3
        assert "module dff (q, d, clk);" in text
        assert "endmodule" in text

    def test_gate_primitives(self, s27_circuit):
        text = write_verilog(s27_circuit)
        assert "nor " in text and "nand " in text and "not " in text

    def test_custom_module_name(self, s27_circuit):
        assert "module my_top (" in write_verilog(s27_circuit, module_name="my_top")

    def test_escaped_identifiers(self):
        c = Circuit("t")
        c.add_input("a.b")  # not a legal Verilog identifier
        c.add_gate("y", GateType.NOT, ["a.b"])
        c.mark_output("y")
        c.finalize()
        text = write_verilog(c)
        assert "\\a.b " in text


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [s27, mini_fsm])
    def test_structure_preserved(self, factory):
        circuit = factory()
        back = parse_verilog(write_verilog(circuit), name=circuit.name)
        assert back.num_nodes == circuit.num_nodes
        assert back.num_dffs == circuit.num_dffs
        assert back.num_inputs == circuit.num_inputs
        assert back.num_outputs == circuit.num_outputs

    def test_behaviour_preserved(self):
        circuit = synthesize_named("s386", scale=0.25)
        back = parse_verilog(write_verilog(circuit), name=circuit.name)
        vectors = random_vectors(circuit, 12, seed=5)
        assert (
            SerialSimulator(circuit).run_sequence(vectors)
            == SerialSimulator(back).run_sequence(vectors)
        )

    def test_file_io(self, tmp_path, s27_circuit):
        path = tmp_path / "s27.v"
        save_verilog(s27_circuit, path)
        loaded = load_verilog(path)
        assert loaded.num_nodes == s27_circuit.num_nodes


class TestReader:
    def test_positional_dff_ports(self):
        text = """
        module t (clk, a, q);
          input clk; input a; output q;
          wire q;
          dff f0 (q, a, clk);
        endmodule
        """
        circuit = parse_verilog(text)
        assert circuit.num_dffs == 1

    def test_top_selection(self):
        text = write_verilog(s27())
        circuit = parse_verilog(text, top="s27")
        assert circuit.name == "s27"
        with pytest.raises(VerilogError, match="not found"):
            parse_verilog(text, top="nope")

    def test_vector_signals_rejected(self):
        text = """
        module t (clk, a, y);
          input clk; input [3:0] a; output y;
          buf g (y, a);
        endmodule
        """
        with pytest.raises(VerilogError, match="vector"):
            parse_verilog(text)

    def test_behavioural_rejected(self):
        text = """
        module t (clk, a, y);
          input clk; input a; output y;
          assign y = ~a;
        endmodule
        """
        with pytest.raises(VerilogError, match="behavioural"):
            parse_verilog(text)

    def test_unknown_cell_rejected(self):
        text = """
        module t (clk, a, y);
          input clk; input a; output y;
          mux2 g (y, a, a);
        endmodule
        """
        with pytest.raises(VerilogError, match="unsupported cell"):
            parse_verilog(text)

    def test_no_module_rejected(self):
        with pytest.raises(VerilogError, match="no module"):
            parse_verilog("wire x;")

    def test_comments_stripped(self):
        text = """
        // header comment
        module t (clk, a, y);
          input clk; input a; output y; /* block
          comment */ not g (y, a);
        endmodule
        """
        circuit = parse_verilog(text)
        assert circuit.num_gates == 1
