"""Telemetry layer: timers, counters, schema, no-op guarantees.

Covers the ISSUE-1 checklist: hierarchical timer nesting, counter
aggregation, JSONL round-trip against the documented schema, the
disabled (null) path adding no records and leaking no attributes into
the GA/generator result records, and a benchmark-style guard that the
no-op collector path keeps ``FaultSimulator.evaluate`` throughput
within 5%.
"""

from __future__ import annotations

import dataclasses
import random
import time

import pytest

from repro.circuit import s27
from repro.core import GaTestGenerator, TestGenConfig
from repro.core.results import TestGenResult
from repro.faults import FaultSimulator
from repro.ga.engine import GAResult
from repro.harness.runner import run_matrix
from repro.telemetry import (
    NULL,
    NullCollector,
    SCHEMA_VERSION,
    SchemaError,
    TelemetryCollector,
    get_collector,
    install,
    make_record,
    metrics_summary,
    read_trace,
    trace_summary,
    use,
    validate_record,
    validate_trace,
    write_trace,
)


def small_config(**kw) -> TestGenConfig:
    return TestGenConfig(seed=1, **kw)


def run_s27(collector=None) -> TestGenResult:
    return GaTestGenerator(s27(), small_config(), collector=collector).run()


# ----------------------------------------------------------------------
# Scoped timers
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_hierarchical_paths(self):
        collector = TelemetryCollector()
        with collector.span("outer"):
            with collector.span("mid", tag="x"):
                with collector.span("inner"):
                    pass
            with collector.span("mid2"):
                pass
        spans = collector.events("span")
        # Children close before parents, so records are inner-first.
        assert [s["path"] for s in spans] == [
            "outer/mid/inner", "outer/mid", "outer/mid2", "outer",
        ]
        assert [s["depth"] for s in spans] == [2, 1, 1, 0]
        assert spans[1]["tag"] == "x"

    def test_parent_elapsed_covers_children(self):
        collector = TelemetryCollector()
        with collector.span("parent") as parent:
            with collector.span("child") as child:
                time.sleep(0.002)
        assert parent.elapsed >= child.elapsed > 0
        records = {s["name"]: s for s in collector.events("span")}
        assert records["parent"]["dur"] >= records["child"]["dur"]
        # t0 offsets are relative to collector construction and ordered.
        assert records["parent"]["t0"] <= records["child"]["t0"]

    def test_null_span_still_measures_elapsed(self):
        # Callers (runner progress lines, TestGenResult.elapsed_seconds)
        # read span.elapsed even when telemetry is disabled.
        with NULL.span("anything") as span:
            time.sleep(0.002)
        assert span.elapsed > 0
        assert NULL.records() == []

    def test_sibling_spans_do_not_inherit_closed_scope(self):
        collector = TelemetryCollector()
        with collector.span("a"):
            pass
        with collector.span("b"):
            pass
        assert [s["path"] for s in collector.events("span")] == ["a", "b"]


# ----------------------------------------------------------------------
# Counters / gauges / context
# ----------------------------------------------------------------------


class TestCountersAndGauges:
    def test_counter_aggregation(self):
        collector = TelemetryCollector()
        collector.inc("x")
        collector.inc("x", 4)
        collector.inc("y", 2.5)
        assert collector.counters == {"x": 5, "y": 2.5}
        finals = {
            r["name"]: r["value"] for r in collector.records()
            if r["kind"] == "counter"
        }
        assert finals == {"x": 5, "y": 2.5}

    def test_gauge_keeps_last_value_and_emits_samples(self):
        collector = TelemetryCollector()
        collector.gauge("coverage", 0.25)
        collector.gauge("coverage", 0.75)
        assert collector.gauges == {"coverage": 0.75}
        samples = collector.events("gauge")
        assert [s["value"] for s in samples] == [0.25, 0.75]
        assert samples[0]["t"] <= samples[1]["t"]

    def test_bind_attaches_and_restores_context(self):
        collector = TelemetryCollector()
        with collector.bind(phase="P1", ga_run=3):
            collector.generation(generation=0, best=1.0, mean=0.5,
                                 evaluations=8, population=8)
            with collector.bind(phase="P2"):
                collector.generation(generation=1, best=2.0, mean=1.0,
                                     evaluations=16, population=8)
        collector.generation(generation=2, best=3.0, mean=2.0,
                             evaluations=24, population=8)
        gens = collector.events("generation")
        assert (gens[0]["phase"], gens[0]["ga_run"]) == ("P1", 3)
        assert (gens[1]["phase"], gens[1]["ga_run"]) == ("P2", 3)
        assert "phase" not in gens[2] and "ga_run" not in gens[2]

    def test_install_and_use_swap_default(self):
        assert get_collector() is NULL
        collector = TelemetryCollector()
        with use(collector):
            assert get_collector() is collector
            inner = NullCollector()
            previous = install(inner)
            assert previous is collector
            install(previous)
        assert get_collector() is NULL


# ----------------------------------------------------------------------
# Schema + JSONL round-trip
# ----------------------------------------------------------------------


class TestSchema:
    def test_round_trip_preserves_records(self, tmp_path):
        collector = TelemetryCollector()
        with collector.span("outer", circuit="s27"):
            collector.inc("sim.evaluate.calls", 7)
        collector.gauge("coverage", 0.5)
        collector.stage(event="vector", phase="INITIALIZATION", frames=1,
                        detected=2, committed=True, coverage=0.1,
                        vectors_total=1, faults_active=24)
        path = tmp_path / "trace.jsonl"
        count = collector.dump(path)
        loaded = read_trace(path)
        assert len(loaded) == count
        assert loaded == collector.records()
        validate_trace(loaded)

    def test_write_trace_validates_on_write(self, tmp_path):
        with pytest.raises(SchemaError):
            write_trace(tmp_path / "bad.jsonl", [{"v": SCHEMA_VERSION,
                                                  "kind": "nope"}])

    def test_validate_rejects_bad_version(self):
        with pytest.raises(SchemaError, match="schema version"):
            validate_record({"v": 99, "kind": "meta", "schema": 99,
                             "source": "x"})

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown record kind"):
            validate_record(make_record("frobnicate"))

    def test_validate_rejects_missing_and_mistyped_fields(self):
        with pytest.raises(SchemaError, match="missing required field"):
            validate_record(make_record("counter", name="x"))
        with pytest.raises(SchemaError, match="counter.value"):
            validate_record(make_record("counter", name="x", value="high"))
        # bool must not satisfy a numeric field
        with pytest.raises(SchemaError, match="got bool"):
            validate_record(make_record("counter", name="x", value=True))

    def test_trace_must_lead_with_meta(self):
        with pytest.raises(SchemaError, match="must be meta"):
            validate_trace([make_record("counter", name="x", value=1)])

    def test_read_trace_reports_line_numbers(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"v": 1, "kind": "meta", "schema": 1, "source": "t"}\n'
                        "not json\n")
        with pytest.raises(SchemaError, match=":2:"):
            read_trace(path)


# ----------------------------------------------------------------------
# Instrumented stack, enabled
# ----------------------------------------------------------------------


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def traced(self):
        collector = TelemetryCollector()
        result = run_s27(collector)
        return collector, result

    def test_trace_validates_against_schema(self, traced):
        collector, _ = traced
        validate_trace(collector.records())

    def test_stage_records_mirror_result_trace(self, traced):
        collector, result = traced
        stages = collector.events("stage")
        assert len(stages) == len(result.trace)
        for record, event in zip(stages, result.trace):
            assert record["event"] == event.kind
            assert record["phase"] == event.phase.name
            assert record["frames"] == event.frames
            assert record["detected"] == event.detected
            assert record["committed"] == event.committed
        final = stages[-1]
        assert final["coverage"] == pytest.approx(result.fault_coverage)
        assert final["vectors_total"] == result.vectors

    def test_generation_records_carry_phase_context(self, traced):
        collector, result = traced
        gens = collector.events("generation")
        assert gens, "expected per-generation GA records"
        assert all("phase" in g and "ga_run" in g and "stage" in g
                   for g in gens)
        assert max(g["ga_run"] for g in gens) == result.ga_runs - 1
        # Evaluations tally: final counter equals the result's total.
        assert collector.counters["ga.evaluations"] == result.ga_evaluations
        assert collector.counters["ga.runs"] == result.ga_runs

    def test_simulator_counters_present(self, traced):
        collector, result = traced
        counters = collector.counters
        assert counters["sim.commit.calls"] >= 1
        assert counters["sim.commit.detected"] == result.detected
        assert counters["sim.batch.calls"] >= 1
        assert counters["sim.pattern.steps"] >= 1

    def test_run_span_matches_elapsed_seconds(self, traced):
        collector, result = traced
        spans = {s["name"]: s for s in collector.events("span")}
        assert spans["generator.run"]["dur"] == pytest.approx(
            result.elapsed_seconds, abs=1e-6
        )
        assert spans["generator.vectors"]["path"] == \
            "generator.run/generator.vectors"

    def test_summary_renders(self, traced):
        collector, _ = traced
        text = metrics_summary(collector)
        assert "counters" in text and "GA generations" in text
        assert trace_summary(collector.records())


class TestHarnessSpans:
    def test_run_matrix_uses_cell_spans(self):
        collector = TelemetryCollector()
        lines = []
        config = TestGenConfig(seed=1)
        run_matrix(["s298"], {"base": config}, seeds=[1], scale=0.1,
                   progress=lines.append, collector=collector)
        spans = {s["name"] for s in collector.events("span")}
        assert "harness.cell" in spans and "harness.run_gatest" in spans
        cell = [s for s in collector.events("span")
                if s["name"] == "harness.cell"][0]
        assert cell["circuit"] == "s298" and cell["label"] == "base"
        # The progress line's elapsed is the span's measurement.
        assert lines and f"({cell['dur']:.1f}s)" in lines[0]


# ----------------------------------------------------------------------
# Disabled (no-op) path
# ----------------------------------------------------------------------


class TestDisabledPath:
    def test_default_collector_is_null(self):
        assert get_collector() is NULL
        assert not NULL.enabled

    def test_null_collector_records_nothing(self):
        fsim = FaultSimulator(s27())
        fsim.evaluate([[0, 1, 0, 1]])
        fsim.commit([[1, 1, 0, 0]])
        assert fsim.collector is NULL
        assert NULL.records() == []
        assert NULL.dump("/nonexistent/should-not-be-written") == 0

    def test_no_attributes_leak_into_result_records(self):
        result = run_s27()  # default (null) collector
        assert {f.name for f in dataclasses.fields(TestGenResult)} == {
            "circuit_name", "test_sequence", "detected", "total_faults",
            "elapsed_seconds", "ga_evaluations", "ga_runs",
            "phase_transitions", "trace", "detections",
        }
        assert {f.name for f in dataclasses.fields(GAResult)} == {
            "best", "best_generation", "generations_run", "evaluations",
            "history",
        }
        assert not hasattr(result, "telemetry")
        assert not any(hasattr(e, "telemetry") for e in result.trace)

    def test_disabled_runs_match_enabled_runs_bit_for_bit(self):
        baseline = run_s27()
        traced = run_s27(TelemetryCollector())
        assert traced.test_sequence == baseline.test_sequence
        assert traced.detected == baseline.detected
        assert traced.ga_evaluations == baseline.ga_evaluations

    def test_noop_collector_evaluate_throughput_within_5pct(self):
        """Benchmark-style guard: instrumentation with the no-op
        collector must not change ``FaultSimulator.evaluate`` throughput
        by more than 5%.  The enabled collector path is measured as the
        upper bound — the null path does strictly less work.

        Timing discipline (this test used to flake on loaded CI hosts,
        where throughput drifts 20%+ between measurement blocks under
        frequency scaling): the two paths are timed *interleaved* in
        back-to-back pairs so host drift hits both sides alike, the
        slowdown is the median of the per-pair best-of-3 ratios, and a
        measurement outside the contract is retried once before it
        fails — a genuine regression fails both rounds, a noisy run
        does not.  The 5% contract itself is unchanged.
        """
        rng = random.Random(7)
        circuit = s27()
        vectors = [[rng.randint(0, 1) for _ in range(4)] for _ in range(8)]

        def measured_slowdown() -> float:
            sims = {
                "disabled": FaultSimulator(circuit, collector=NullCollector()),
                "enabled": FaultSimulator(
                    circuit, collector=TelemetryCollector()
                ),
            }

            def timed_loop(fsim) -> float:
                t0 = time.perf_counter()
                for _ in range(40):
                    fsim.evaluate(vectors)
                return time.perf_counter() - t0

            for fsim in sims.values():
                timed_loop(fsim)  # warm-up
            ratios = sorted(
                min(timed_loop(sims["disabled"]) for _ in range(3))
                / min(timed_loop(sims["enabled"]) for _ in range(3))
                for _ in range(5)
            )
            return 1.0 / ratios[len(ratios) // 2]

        slowdown = measured_slowdown()
        if abs(slowdown - 1.0) > 0.05:  # one retry sheds transient load
            slowdown = measured_slowdown()
        assert slowdown == pytest.approx(1.0, abs=0.05), (
            f"telemetry overhead too high: enabled path is "
            f"{(slowdown - 1) * 100:.1f}% slower than the no-op path"
        )
