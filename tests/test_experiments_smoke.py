"""Smoke tests for the per-table experiment drivers.

Each driver runs end to end at minimal scale (tiny circuits, one seed)
so regressions in the regeneration pipeline surface in the unit suite,
not only during long benchmark runs.
"""

import pytest

from repro.harness import experiments


SMALL = dict(scale=0.1, seeds=[1], circuits=["s298"])


def test_table_1():
    out = experiments.table_1(1.0, [1])
    assert "1/8" in out


def test_table_2_driver():
    out = experiments.table_2(**SMALL)
    assert "Table 2 (measured" in out
    assert "Table 2 (paper)" in out
    assert "s298" in out


def test_table_3_driver():
    out = experiments.table_3(**SMALL)
    assert "Selection-scheme summary" in out
    assert "tournament" in out
    assert "supplement" in out  # the vectors grid


def test_table_4_driver():
    out = experiments.table_4(**SMALL)
    assert "1/256" in out


def test_table_5_driver():
    out = experiments.table_5(**SMALL)
    assert "non64" in out


def test_table_6_driver():
    out = experiments.table_6(**SMALL)
    assert "spdup" in out


def test_table_7_driver():
    out = experiments.table_7(**SMALL)
    assert "3/4" in out


def test_figures():
    out1 = experiments.figure_1(0.1, [1], ["s298"])
    assert "stage 1" in out1
    out2 = experiments.figure_2(0.1, [1], ["s298"])
    assert "INITIALIZATION" in out2


def test_main_cli(capsys):
    code = experiments.main(["--table", "1"])
    assert code == 0
    assert "Table 1" in capsys.readouterr().out
