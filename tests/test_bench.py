"""Tests for the .bench parser and writer."""

import pytest

from repro.circuit import (
    BenchParseError,
    GateType,
    parse_bench,
    save_bench,
    load_bench,
    synthesize_named,
    write_bench,
)

SIMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
"""


class TestParse:
    def test_simple(self):
        c = parse_bench(SIMPLE, name="simple")
        assert c.name == "simple"
        assert c.num_inputs == 2
        assert c.node_types[c.id_of("y")] is GateType.NAND

    def test_case_insensitive_keywords(self):
        c = parse_bench("input(a)\noutput(y)\ny = nand(a, a)")
        assert c.node_types[c.id_of("y")] is GateType.NAND

    def test_inline_comment(self):
        c = parse_bench("INPUT(a) # the input\nOUTPUT(y)\ny = NOT(a)")
        assert c.num_inputs == 1

    def test_forward_reference(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(a)")
        assert c.num_gates == 2

    def test_dff(self):
        c = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)")
        assert c.num_dffs == 1
        assert c.sequential_depth() == 1

    def test_inv_and_buf_aliases(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = INV(a)\ny = BUF(n)")
        assert c.node_types[c.id_of("n")] is GateType.NOT
        assert c.node_types[c.id_of("y")] is GateType.BUFF

    def test_unknown_gate_reports_line(self):
        with pytest.raises(BenchParseError, match="line 3.*FROB"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)")

    def test_garbage_line_reports_line(self):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench")

    def test_dff_multiple_inputs_rejected(self):
        with pytest.raises(BenchParseError, match="exactly one"):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)")

    def test_empty_fanin_rejected(self):
        with pytest.raises(BenchParseError, match="no fanins"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND()")

    def test_missing_definition_rejected(self):
        with pytest.raises(BenchParseError, match="never defined"):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)")

    def test_duplicate_input_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)")


class TestErrorReporting:
    """Malformed .bench input dies with the file name and line number."""

    def test_truncated_gate_line(self):
        with pytest.raises(BenchParseError, match="line 3") as exc:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NAND(a,")
        assert exc.value.lineno == 3

    def test_truncated_io_declaration(self):
        with pytest.raises(BenchParseError, match="line 1"):
            parse_bench("INPUT(a")

    def test_duplicate_gate_definition(self):
        with pytest.raises(BenchParseError, match="line 4"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)")

    def test_unknown_gate_keyword(self):
        with pytest.raises(BenchParseError, match="unknown gate type 'XNOR9'"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = XNOR9(a)")

    def test_source_name_in_message(self, tmp_path):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        with pytest.raises(BenchParseError, match=r"broken\.bench: line 3"):
            load_bench(path)

    def test_source_and_lineno_attributes(self, tmp_path):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(a)\nnot bench at all\n")
        with pytest.raises(BenchParseError) as exc:
            load_bench(path)
        assert exc.value.source == "bad.bench"
        assert exc.value.lineno == 2

    def test_finalize_error_names_file_without_lineno(self, tmp_path):
        path = tmp_path / "ghost.bench"
        path.write_text("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n")
        with pytest.raises(BenchParseError, match=r"ghost\.bench: .*never defined"):
            load_bench(path)

    def test_no_double_prefix_on_dff_arity_error(self):
        """The DFF-arity error is a BenchParseError raised inside the
        CircuitError-wrapping block; it must not be wrapped twice."""
        with pytest.raises(BenchParseError) as exc:
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)")
        assert str(exc.value).count("line 4") == 1


class TestRoundTrip:
    def test_simple_round_trip(self):
        c1 = parse_bench(SIMPLE, name="t")
        c2 = parse_bench(write_bench(c1), name="t")
        assert c1.num_nodes == c2.num_nodes
        assert [c1.node_types[i] for i in range(c1.num_nodes)] == [
            c2.node_types[c2.id_of(c1.node_names[i])] for i in range(c1.num_nodes)
        ]

    @pytest.mark.parametrize("name", ["s298", "s386"])
    def test_synth_round_trip(self, name):
        c1 = synthesize_named(name, scale=0.2)
        text = write_bench(c1)
        c2 = parse_bench(text, name=c1.name)
        assert c1.num_nodes == c2.num_nodes
        assert c1.num_dffs == c2.num_dffs
        assert c1.sequential_depth() == c2.sequential_depth()
        # Structure must be identical node by node.
        for node_id in range(c1.num_nodes):
            name1 = c1.node_names[node_id]
            other = c2.id_of(name1)
            assert c1.node_types[node_id] == c2.node_types[other]
            assert [c1.node_names[f] for f in c1.fanins[node_id]] == [
                c2.node_names[f] for f in c2.fanins[other]
            ]

    def test_file_io(self, tmp_path, s27_circuit):
        path = tmp_path / "s27.bench"
        save_bench(s27_circuit, path)
        loaded = load_bench(path)
        assert loaded.name == "s27"
        assert loaded.num_nodes == s27_circuit.num_nodes


class TestBundledCircuits:
    def test_s27_structure(self, s27_circuit):
        assert s27_circuit.num_inputs == 4
        assert s27_circuit.num_outputs == 1
        assert s27_circuit.num_dffs == 3
        assert s27_circuit.num_gates == 10

    def test_c17_structure(self, c17_circuit):
        assert c17_circuit.num_inputs == 5
        assert c17_circuit.num_outputs == 2
        assert c17_circuit.num_gates == 6
        assert all(
            c17_circuit.node_types[i] in (GateType.INPUT, GateType.NAND)
            for i in range(c17_circuit.num_nodes)
        )
