"""Tests for netlist validation checks."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType, Severity, check, validate


def rules_of(circuit):
    return {(v.rule, v.node) for v in validate(circuit)}


def test_clean_circuit_is_clean(s27_circuit):
    assert validate(s27_circuit) == []


def test_dangling_node_warned():
    c = Circuit("t")
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("dead", GateType.NOT, ["a"])
    c.mark_output("g1")
    c.finalize()
    assert ("dangling", "dead") in rules_of(c)


def test_dead_logic_warned():
    c = Circuit("t")
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("g2", GateType.NOT, ["g1"])  # drives g3, but g3 unobserved
    c.add_gate("g3", GateType.NOT, ["g2"])
    c.add_gate("out", GateType.BUFF, ["a"])
    c.mark_output("out")
    c.finalize()
    rules = rules_of(c)
    assert ("dangling", "g3") in rules
    assert ("dead-logic", "g2") in rules or ("dead-logic", "g1") in rules


def test_duplicate_fanin_warned():
    c = Circuit("t")
    c.add_input("a")
    # Builder allows duplicate fanins (they occur in real netlists);
    # validation flags them.
    c.add_gate("g", GateType.AND, ["a", "a"])
    c.mark_output("g")
    c.finalize()
    assert ("duplicate-fanin", "g") in rules_of(c)


def test_degenerate_gate_warned():
    c = Circuit("t")
    c.add_input("a")
    c.add_gate("g", GateType.AND, ["a"])
    c.mark_output("g")
    c.finalize()
    assert ("degenerate-gate", "g") in rules_of(c)


def test_check_passes_on_warnings_only():
    c = Circuit("t")
    c.add_input("a")
    c.add_gate("g", GateType.AND, ["a"])  # warning, not error
    c.mark_output("g")
    c.finalize()
    check(c)  # must not raise


def test_severity_str():
    c = Circuit("t")
    c.add_input("a")
    c.add_gate("g", GateType.AND, ["a"])
    c.mark_output("g")
    c.finalize()
    violation = validate(c)[0]
    assert "degenerate-gate" in str(violation)
    assert violation.severity is Severity.WARNING
