"""Tests for crash-safe (tmp + fsync + rename) artifact writes."""

import json
import os

import pytest

from repro.atomicio import atomic_open, atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_creates_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_crash_mid_write_preserves_previous(self, tmp_path):
        """An exception inside the write leaves the old contents intact
        and no temporary file behind."""
        path = tmp_path / "out.txt"
        path.write_text("previous contents")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("half a new fi")
                raise RuntimeError("simulated crash")
        assert path.read_text() == "previous contents"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_crash_on_fresh_target_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("doomed")
                raise RuntimeError
        assert os.listdir(tmp_path) == []

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"a": [1, 2], "b": None}, indent=2)
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": None}


class TestArtifactsAreAtomic:
    """The artifact writers all route through the atomic helper."""

    def test_trace_write_is_atomic(self, tmp_path, monkeypatch):
        """A failing trace write must not clobber the previous trace."""
        from repro.telemetry import sink
        from repro.telemetry.records import make_record

        path = tmp_path / "trace.jsonl"
        sink.write_trace(path, [make_record("counter", name="x", value=1)])
        previous = path.read_text()

        def explode(record):
            raise RuntimeError("simulated failure mid-trace")

        records = [make_record("counter", name="y", value=2)]
        monkeypatch.setattr(sink, "validate_record", explode)
        with pytest.raises(RuntimeError):
            sink.write_trace(path, records)
        assert path.read_text() == previous
        assert os.listdir(tmp_path) == ["trace.jsonl"]

    def test_cli_test_vector_output_is_atomic(self, tmp_path):
        from repro.cli import _write_tests

        path = tmp_path / "tests.txt"
        _write_tests(path, [[0, 1], [1, 0]])
        assert os.listdir(tmp_path) == ["tests.txt"]
        assert "01" in path.read_text()
