"""Tests for the resilience layer: self-healing worker pool, chaos
injection, degradation, orphan cleanup, and checkpoint/resume.

The chaos tests drive the real worker pool (``eval_jobs=2`` with
``REPRO_EVAL_FORCE_SHARD=1``) through injected crashes and hangs and
assert the recovered results are bit-identical to the serial reference
path — the core robustness contract (docs/ROBUSTNESS.md).
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.circuit import s27
from repro.core import CheckpointError, GaTestGenerator, TestGenConfig
from repro.core.checkpoint import load_run_checkpoint
from repro.parallel import ChaosConfig, RetryPolicy
from repro.telemetry import TelemetryCollector, use

#: Shared small-run configuration: word_width=8 splits s27's 26 faults
#: into 4 groups so two workers genuinely shard the fault list.
WW = 8


def _drain_children(timeout=10.0):
    """Wait for worker processes to exit; returns the stragglers."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return multiprocessing.active_children()


class TestChaosConfig:
    def test_parse_full_spec(self):
        cfg = ChaosConfig.parse("crash:0.2,hang:0.1,seed:9,hang_seconds:5")
        assert cfg == ChaosConfig(crash=0.2, hang=0.1, seed=9, hang_seconds=5.0)

    def test_parse_partial_spec(self):
        assert ChaosConfig.parse("crash:1.0") == ChaosConfig(crash=1.0)

    def test_parse_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos key"):
            ChaosConfig.parse("crash:0.5,explode:1")

    def test_parse_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="not key:value"):
            ChaosConfig.parse("crash")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(crash=0.7, hang=0.7)

    def test_decide_is_deterministic(self):
        cfg = ChaosConfig(crash=0.3, hang=0.3, seed=4)
        first = [cfg.decide(i) for i in range(200)]
        second = [cfg.decide(i) for i in range(200)]
        assert first == second
        assert "crash" in first and "hang" in first and None in first

    def test_decide_differs_across_seeds(self):
        a = ChaosConfig(crash=0.5, seed=1)
        b = ChaosConfig(crash=0.5, seed=2)
        assert [a.decide(i) for i in range(64)] != [b.decide(i) for i in range(64)]

    def test_from_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosConfig.from_env() is None

    def test_from_env_disabled_probabilities(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:0,hang:0,seed:3")
        assert ChaosConfig.from_env() is None

    def test_from_env_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:0.25,seed:3")
        assert ChaosConfig.from_env() == ChaosConfig(crash=0.25, seed=3)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=4.0,
                             backoff_max=2.0)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.8)
        assert policy.backoff(3) == 2.0  # capped

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_EVAL_RETRIES", "5")
        policy = RetryPolicy.from_env()
        assert policy.task_timeout == 7.5
        assert policy.max_retries == 5

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_EVAL_RETRIES", "5")
        policy = RetryPolicy.from_env(task_timeout=1.0, max_retries=0)
        assert policy.task_timeout == 1.0
        assert policy.max_retries == 0

    def test_nonpositive_timeout_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_TIMEOUT", raising=False)
        assert RetryPolicy.from_env(task_timeout=-1).task_timeout is None
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "0")
        assert RetryPolicy.from_env().task_timeout is None


class TestSelfHealingPool:
    """Chaos-injected worker failures must never change results."""

    @pytest.fixture(autouse=True)
    def _shard_on_one_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        monkeypatch.delenv("REPRO_EVAL_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_EVAL_RETRIES", raising=False)

    def _serial_reference(self):
        return GaTestGenerator(s27(), TestGenConfig(seed=5, word_width=WW)).run()

    def test_crash_chaos_is_bit_identical_to_serial(self, monkeypatch):
        """Workers die mid-run (p=0.15); retries recover; the final test
        set matches the serial reference exactly."""
        reference = self._serial_reference()
        monkeypatch.setenv("REPRO_CHAOS", "crash:0.15,seed:7")
        collector = TelemetryCollector(source="test")
        with use(collector):
            result = GaTestGenerator(
                s27(), TestGenConfig(seed=5, word_width=WW, eval_jobs=2),
                collector=collector,
            ).run()
        assert result.test_sequence == reference.test_sequence
        assert result.detected == reference.detected
        assert result.trace == reference.trace
        assert collector.counters.get("parallel.retries", 0) >= 1
        assert collector.counters.get("parallel.pool.restarts", 0) >= 1
        assert not _drain_children()

    def test_certain_crash_degrades_to_serial(self, monkeypatch):
        """With crash:1.0 every pool attempt dies; after bounded retries
        the evaluator degrades permanently — and still matches serial."""
        reference = self._serial_reference()
        monkeypatch.setenv("REPRO_CHAOS", "crash:1.0,seed:1")
        collector = TelemetryCollector(source="test")
        with use(collector):
            result = GaTestGenerator(
                s27(), TestGenConfig(seed=5, word_width=WW, eval_jobs=2),
                collector=collector,
            ).run()
        assert result.test_sequence == reference.test_sequence
        assert collector.counters.get("parallel.degraded", 0) == 1
        # Degradation is sticky: exactly max_retries retries were spent.
        assert collector.counters.get("parallel.retries", 0) == 2
        assert not _drain_children()

    def test_hung_worker_hits_timeout_and_recovers(self, monkeypatch):
        """A wedged worker (hang chaos) surfaces as a task timeout; the
        pool is killed and respawned, and no children are leaked."""
        monkeypatch.setenv("REPRO_CHAOS", "hang:1.0,seed:2,hang_seconds:30")
        monkeypatch.setenv("REPRO_EVAL_TIMEOUT", "1.0")
        monkeypatch.setenv("REPRO_EVAL_RETRIES", "1")
        collector = TelemetryCollector(source="test")
        start = time.monotonic()
        with use(collector):
            result = GaTestGenerator(
                s27(),
                TestGenConfig(seed=5, word_width=WW, eval_jobs=2, max_vectors=3),
                collector=collector,
            ).run()
        # Bounded: one timed-out pass + one retry, then serial.
        assert time.monotonic() - start < 20
        assert collector.counters.get("parallel.pool.restarts", 0) >= 1
        assert collector.counters.get("parallel.degraded", 0) == 1
        assert result.vectors == 3
        assert not _drain_children()


class TestOrphanCleanup:
    def test_generator_interrupt_reaps_workers(self, monkeypatch):
        """An interrupt mid-run must not strand pool worker processes."""
        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        generator = GaTestGenerator(
            s27(), TestGenConfig(seed=1, word_width=WW, eval_jobs=2)
        )
        # Force the pool into existence, then interrupt the run.
        generator.fsim.evaluate_batch(
            [[[0] * generator.compiled.num_pis]]
        )
        assert multiprocessing.active_children()

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(GaTestGenerator, "_evolve_vector", interrupt)
        with pytest.raises(KeyboardInterrupt):
            generator.run()
        assert not _drain_children()

    def test_cli_interrupt_reaps_workers(self, monkeypatch, capsys):
        """The CLI's try/finally shields the evaluator lifetime too."""
        from repro import cli

        monkeypatch.setenv("REPRO_EVAL_FORCE_SHARD", "1")
        monkeypatch.delenv("REPRO_CHAOS", raising=False)

        def run_then_die(self, **kwargs):
            # Bring the worker pool up (s27 at the default word width has
            # a single fault group, so scoring alone would not shard; and
            # the executor only spawns processes on first submit).
            pool = self.fsim._parallel._get_pool()
            assert pool is not None
            pool.submit(os.getpid).result(timeout=60)
            assert multiprocessing.active_children()
            raise KeyboardInterrupt

        monkeypatch.setattr(GaTestGenerator, "run", run_then_die)
        with pytest.raises(KeyboardInterrupt):
            cli.main(["run", "s27", "--eval-jobs", "2", "--seed", "1"])
        assert not _drain_children()


class TestCheckpointResume:
    """Crash-safe checkpoint/resume of full generator runs."""

    CONFIG = TestGenConfig(seed=3)

    def _interrupted_run(self, monkeypatch, tmp_path, interrupt_after,
                         checkpoint_every=2):
        """Run with checkpoints, aborting after N checkpoint writes."""
        import repro.core.generator as generator_module

        path = tmp_path / "run.ckpt"
        real_save = generator_module.save_run_checkpoint
        writes = []

        def save_then_maybe_die(ckpt_path, payload):
            real_save(ckpt_path, payload)
            writes.append(payload["stage"])
            if len(writes) >= interrupt_after:
                raise KeyboardInterrupt

        monkeypatch.setattr(
            generator_module, "save_run_checkpoint", save_then_maybe_die
        )
        with pytest.raises(KeyboardInterrupt):
            GaTestGenerator(s27(), self.CONFIG).run(
                checkpoint_path=path, checkpoint_every=checkpoint_every
            )
        monkeypatch.setattr(generator_module, "save_run_checkpoint", real_save)
        return path, writes

    def test_resume_is_bit_identical(self, monkeypatch, tmp_path):
        reference = GaTestGenerator(s27(), self.CONFIG).run()
        path, writes = self._interrupted_run(monkeypatch, tmp_path, 2)
        assert writes  # the run really was cut short mid-flight
        collector = TelemetryCollector(source="test")
        with use(collector):
            resumed = GaTestGenerator(
                s27(), self.CONFIG, collector=collector
            ).run(checkpoint_path=path, resume=True)
        assert resumed.test_sequence == reference.test_sequence
        assert resumed.detected == reference.detected
        assert resumed.trace == reference.trace
        assert resumed.phase_transitions == reference.phase_transitions
        assert resumed.detections == reference.detections
        assert resumed.ga_evaluations == reference.ga_evaluations
        assert collector.counters.get("run.resumed") == 1
        assert collector.counters.get("checkpoint.writes", 0) >= 1

    def test_resume_mid_sequences_is_bit_identical(self, monkeypatch, tmp_path):
        """Interrupt late enough to land in the sequence stage."""
        reference = GaTestGenerator(s27(), self.CONFIG).run()
        # Count how many stage events the full run produces, then cut at
        # ~90% so the checkpoint lands in the sequence loop.
        total = len(reference.trace)
        path, writes = self._interrupted_run(
            monkeypatch, tmp_path, max(1, int(total * 0.9)), checkpoint_every=1
        )
        assert "sequences" in writes
        resumed = GaTestGenerator(s27(), self.CONFIG).run(
            checkpoint_path=path, resume=True
        )
        assert resumed.test_sequence == reference.test_sequence
        assert resumed.trace == reference.trace

    def test_completed_run_leaves_done_checkpoint(self, tmp_path):
        path = tmp_path / "run.ckpt"
        first = GaTestGenerator(s27(), self.CONFIG).run(checkpoint_path=path)
        payload = load_run_checkpoint(path)
        assert payload["stage"] == "done"
        # Resuming a finished run reproduces its result without work.
        again = GaTestGenerator(s27(), self.CONFIG).run(
            checkpoint_path=path, resume=True
        )
        assert again.test_sequence == first.test_sequence
        assert again.ga_evaluations == first.ga_evaluations

    def test_resume_under_different_execution_knobs(self, monkeypatch, tmp_path):
        """Execution-only knobs (eval_jobs, kernel) may change at resume;
        the result must not."""
        reference = GaTestGenerator(s27(), self.CONFIG).run()
        path, _ = self._interrupted_run(monkeypatch, tmp_path, 2)
        other_exec = TestGenConfig(seed=3, eval_jobs=2, sim_kernel="interp")
        resumed = GaTestGenerator(s27(), other_exec).run(
            checkpoint_path=path, resume=True
        )
        assert resumed.test_sequence == reference.test_sequence

    def test_wrong_config_rejected(self, monkeypatch, tmp_path):
        path, _ = self._interrupted_run(monkeypatch, tmp_path, 1)
        with pytest.raises(CheckpointError, match="configuration"):
            GaTestGenerator(s27(), TestGenConfig(seed=99)).run(
                checkpoint_path=path, resume=True
            )

    def test_wrong_circuit_rejected(self, monkeypatch, tmp_path):
        from repro.circuit import mini_fsm

        path, _ = self._interrupted_run(monkeypatch, tmp_path, 1)
        with pytest.raises(CheckpointError, match="different structure"):
            GaTestGenerator(mini_fsm(), self.CONFIG).run(
                checkpoint_path=path, resume=True
            )

    def test_corrupt_checkpoint_rejected(self, monkeypatch, tmp_path):
        path, _ = self._interrupted_run(monkeypatch, tmp_path, 1)
        payload = json.loads(path.read_text())
        payload["ga_runs"] = 12345
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="content-hash"):
            GaTestGenerator(s27(), self.CONFIG).run(
                checkpoint_path=path, resume=True
            )

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            GaTestGenerator(s27(), self.CONFIG).run(resume=True)

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            GaTestGenerator(s27(), self.CONFIG).run(
                checkpoint_path=tmp_path / "x", checkpoint_every=0
            )


class TestKillResumeEndToEnd:
    """SIGKILL a live ``gatest run`` and resume it from its checkpoint."""

    def _cli(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            (os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        ) + "/src"
        env.pop("REPRO_CHAOS", None)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", "s27", "--seed", "4",
             "--checkpoint", str(tmp_path / "run.ckpt"), *extra],
            env=env, cwd=tmp_path,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        # Uninterrupted reference, fully in-process.
        reference = GaTestGenerator(s27(), TestGenConfig(seed=4)).run()

        ckpt = tmp_path / "run.ckpt"
        out = tmp_path / "tests.txt"
        victim = self._cli(
            tmp_path, "--checkpoint-every", "1", "-o", str(out)
        )
        # Kill as soon as the first checkpoint lands.  If the run is so
        # fast it finishes first, resume degenerates to the (also
        # asserted) done-checkpoint path — the comparison still holds.
        deadline = time.monotonic() + 60
        while not ckpt.exists() and victim.poll() is None:
            if time.monotonic() > deadline:  # pragma: no cover
                victim.kill()
                pytest.fail("no checkpoint appeared within 60s")
            time.sleep(0.002)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        assert ckpt.exists()

        resumer = self._cli(tmp_path, "--resume", "-o", str(out))
        stdout, stderr = resumer.communicate(timeout=300)
        assert resumer.returncode == 0, stderr.decode()

        resumed_vectors = [
            [int(ch) for ch in line]
            for line in out.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert resumed_vectors == reference.test_sequence
        summary = stdout.decode()
        assert f"det {reference.detected}/{reference.total_faults}" in summary
