"""End-to-end tests for the GATEST generator."""

import pytest

from repro.circuit import mini_fsm, resettable_counter, s27, uninitializable_loop
from repro.core import GaTestGenerator, Phase, TestGenConfig, generate_tests
from repro.faults import FaultSimulator


@pytest.fixture(scope="module")
def s27_result():
    from repro.circuit import s27 as make
    return GaTestGenerator(make(), TestGenConfig(seed=1)).run()


class TestEndToEnd:
    def test_s27_full_coverage(self, s27_result):
        # s27's collapsed fault list is fully testable; GATEST finds all.
        assert s27_result.detected == s27_result.total_faults
        assert s27_result.fault_coverage == 1.0

    def test_test_set_replays_to_same_coverage(self, s27_result):
        """The reported test set must actually achieve the reported
        coverage when replayed through a fresh fault simulator."""
        from repro.circuit import s27 as make
        fsim = FaultSimulator(make())
        fsim.commit(s27_result.test_sequence)
        assert fsim.detected_count == s27_result.detected

    def test_deterministic_given_seed(self):
        a = GaTestGenerator(s27(), TestGenConfig(seed=5)).run()
        b = GaTestGenerator(s27(), TestGenConfig(seed=5)).run()
        assert a.test_sequence == b.test_sequence
        assert a.detected == b.detected

    def test_seeds_differ(self):
        a = GaTestGenerator(s27(), TestGenConfig(seed=1)).run()
        b = GaTestGenerator(s27(), TestGenConfig(seed=2)).run()
        assert a.test_sequence != b.test_sequence

    def test_phase_transitions_ordering(self, s27_result):
        phases = [p for _, p in s27_result.phase_transitions]
        assert phases[0] is Phase.INITIALIZATION
        # Phase 1 must be left exactly once and never re-entered.
        assert phases.count(Phase.INITIALIZATION) == 1
        assert phases[-1] is Phase.SEQUENCES

    def test_trace_matches_test_sequence(self, s27_result):
        committed_frames = sum(
            e.frames for e in s27_result.trace if e.committed
        )
        assert committed_frames == len(s27_result.test_sequence)

    def test_counts_recorded(self, s27_result):
        assert s27_result.ga_runs > 0
        assert s27_result.ga_evaluations > 0
        assert s27_result.elapsed_seconds > 0
        assert "s27" in s27_result.summary()

    def test_detections_list_consistent(self, s27_result):
        assert len(s27_result.detections) == s27_result.detected


class TestConfigVariants:
    @pytest.mark.parametrize("selection", ["roulette", "sus", "tournament-r"])
    def test_selection_schemes_run(self, selection):
        result = GaTestGenerator(
            mini_fsm(), TestGenConfig(seed=1, selection=selection)
        ).run()
        assert result.detected > 0

    @pytest.mark.parametrize("crossover", ["1-point", "2-point"])
    def test_crossover_schemes_run(self, crossover):
        result = GaTestGenerator(
            mini_fsm(), TestGenConfig(seed=1, crossover=crossover)
        ).run()
        assert result.detected > 0

    def test_nonbinary_coding(self):
        result = GaTestGenerator(
            mini_fsm(), TestGenConfig(seed=1, coding="nonbinary")
        ).run()
        assert result.detected > 0

    def test_fault_sampling(self):
        result = GaTestGenerator(
            s27(), TestGenConfig(seed=1, fault_sample=5)
        ).run()
        assert result.detected > 0

    def test_overlapping_populations(self):
        result = GaTestGenerator(
            mini_fsm(),
            TestGenConfig(seed=1, generation_gap=0.5, population_scale=1.5),
        ).run()
        assert result.detected > 0

    def test_activity_fitness_ablation(self):
        result = GaTestGenerator(
            s27(), TestGenConfig(seed=1, use_activity_fitness=False)
        ).run()
        assert result.detected > 0

    def test_max_vectors_cap(self):
        result = GaTestGenerator(
            resettable_counter(4), TestGenConfig(seed=1, max_vectors=6)
        ).run()
        assert result.vectors <= 6

    def test_functional_wrapper(self):
        result = generate_tests(s27(), TestGenConfig(seed=3))
        assert result.circuit_name == "s27"


class TestHardCircuits:
    def test_uninitializable_circuit_terminates(self):
        """Phase 1 can never complete; the stagnation escape plus the
        progress limit must still terminate the run."""
        result = GaTestGenerator(
            uninitializable_loop(), TestGenConfig(seed=1, max_vectors=200)
        ).run()
        assert result.vectors <= 200  # terminated

    def test_counter_needs_sequences(self):
        """Most counter faults need multi-frame sequences; the sequence
        stage must contribute detections."""
        result = GaTestGenerator(resettable_counter(4), TestGenConfig(seed=2)).run()
        sequence_detections = sum(
            e.detected for e in result.trace if e.kind == "sequence"
        )
        vector_detections = sum(
            e.detected for e in result.trace if e.kind == "vector"
        )
        assert result.detected == sequence_detections + vector_detections
        assert result.fault_coverage > 0.7

    def test_uncommitted_sequences_not_in_test_set(self):
        result = GaTestGenerator(resettable_counter(3), TestGenConfig(seed=4)).run()
        uncommitted = [e for e in result.trace if not e.committed]
        for event in uncommitted:
            assert event.kind == "sequence"
            assert event.detected == 0
