"""Tests for the weighted-random baseline."""

import pytest

from repro.baselines import (
    RandomTestGenerator,
    WeightedRandomGenerator,
    scoap_weights,
)
from repro.circuit import Circuit, GateType, mini_fsm, s27
from repro.faults import FaultSimulator


class TestScoapWeights:
    def test_in_valid_range(self, s27_circuit):
        weights = scoap_weights(s27_circuit)
        assert len(weights) == s27_circuit.num_inputs
        assert all(0.1 <= w <= 0.9 for w in weights)

    def test_and_loads_pull_high(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        weights = scoap_weights(c)
        assert all(w > 0.5 for w in weights)

    def test_nor_loads_pull_low(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.NOR, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        weights = scoap_weights(c)
        assert all(w < 0.5 for w in weights)


class TestWeightedRandom:
    def test_s27_high_coverage(self):
        result = WeightedRandomGenerator(s27(), seed=0, max_vectors=400).run()
        assert result.fault_coverage > 0.9

    def test_test_set_replays(self):
        result = WeightedRandomGenerator(mini_fsm(), seed=1, max_vectors=150).run()
        fsim = FaultSimulator(mini_fsm())
        fsim.commit(result.test_sequence)
        assert fsim.detected_count == result.detected

    def test_budget_respected(self):
        result = WeightedRandomGenerator(mini_fsm(), seed=2, max_vectors=30).run()
        assert result.vectors <= 30

    def test_stagnation_terminates(self):
        result = WeightedRandomGenerator(
            mini_fsm(), seed=3, max_vectors=100_000, stagnation_limit=32
        ).run()
        assert result.vectors < 100_000

    def test_deterministic(self):
        a = WeightedRandomGenerator(s27(), seed=5, max_vectors=64).run()
        b = WeightedRandomGenerator(s27(), seed=5, max_vectors=64).run()
        assert a.test_sequence == b.test_sequence

    def test_custom_weights_validated(self):
        with pytest.raises(ValueError, match="weights"):
            WeightedRandomGenerator(s27(), weights=[0.5])

    def test_extreme_weights_bias_vectors(self):
        gen = WeightedRandomGenerator(
            s27(), seed=7, weights=[0.9, 0.9, 0.9, 0.9], adapt=False,
            max_vectors=64,
        )
        result = gen.run()
        ones = sum(sum(v) for v in result.test_sequence)
        total = sum(len(v) for v in result.test_sequence)
        assert ones / total > 0.75

    def test_adaptive_weights_stay_bounded(self):
        result = WeightedRandomGenerator(
            mini_fsm(), seed=8, max_vectors=200, stagnation_limit=16
        ).run()
        assert all(0.1 <= w <= 0.9 for w in result.final_weights)
