"""Tests for the comparator test generators (random, CRIS-like, PODEM)."""

import pytest

from repro.baselines import (
    CrisLikeGenerator,
    DeterministicAtpg,
    Podem,
    PodemStatus,
    RandomTestGenerator,
    unroll,
)
from repro.circuit import (
    Circuit,
    GateType,
    c17,
    mini_fsm,
    resettable_counter,
    s27,
    shift_register,
)
from repro.faults import STEM, Fault, FaultSimulator, collapsed_fault_list


class TestRandomTpg:
    def test_s27_reaches_full_coverage(self):
        result = RandomTestGenerator(s27(), seed=0, max_vectors=500).run()
        assert result.detected == result.total_faults
        assert result.vectors <= 500

    def test_stagnation_stops_early(self):
        result = RandomTestGenerator(
            mini_fsm(), seed=0, max_vectors=100_000, stagnation_limit=64, batch=16
        ).run()
        assert result.vectors < 100_000

    def test_test_set_replays(self):
        result = RandomTestGenerator(s27(), seed=3, max_vectors=100).run()
        fsim = FaultSimulator(s27())
        fsim.commit(result.test_sequence)
        assert fsim.detected_count == result.detected

    def test_deterministic(self):
        a = RandomTestGenerator(s27(), seed=9, max_vectors=64).run()
        b = RandomTestGenerator(s27(), seed=9, max_vectors=64).run()
        assert a.test_sequence == b.test_sequence


class TestCrisLike:
    def test_runs_and_detects(self):
        result = CrisLikeGenerator(s27(), seed=1).run()
        assert result.detected > 0
        assert result.ga_evaluations > 0

    def test_sequence_length_defaults_to_depth(self):
        gen = CrisLikeGenerator(shift_register(5), seed=0)
        assert gen.sequence_length == 5

    def test_vector_budget_respected(self):
        result = CrisLikeGenerator(mini_fsm(), seed=0, max_vectors=20).run()
        assert result.vectors <= 20


class TestUnroll:
    def test_structure(self, s27_circuit):
        unrolled = unroll(s27_circuit, 3)
        assert unrolled.frames == 3
        assert len(unrolled.frame_pis) == 3
        assert all(len(f) == 4 for f in unrolled.frame_pis)
        assert len(unrolled.xstate_nodes) == 3  # frame-0 FFs
        assert len(unrolled.observables) == 3   # 1 PO x 3 frames
        assert unrolled.circuit.num_dffs == 0   # purely combinational

    def test_fault_copies_per_frame(self, s27_circuit):
        unrolled = unroll(s27_circuit, 4)
        fault = Fault(s27_circuit.id_of("G10"), STEM, 0)
        copies = unrolled.fault_copies(fault)
        assert len(copies) == 4
        assert all(c.stuck_at == 0 and c.pin == STEM for c in copies)

    def test_unrolled_behaviour_matches_sequential(self, minifsm_circuit):
        """Simulating the unrolled circuit with a vector sequence on its
        frame PIs must reproduce the sequential PO trace."""
        from repro.sim import SerialSimulator
        from tests.conftest import random_vectors

        frames = 5
        unrolled = unroll(minifsm_circuit, frames)
        vectors = random_vectors(minifsm_circuit, frames, seed=8)
        seq_trace = SerialSimulator(minifsm_circuit).run_sequence(vectors)

        comb = SerialSimulator(unrolled.circuit)
        flat = []
        for frame_vec in vectors:
            flat.extend(frame_vec)
        # Unrolled inputs: per frame [PIs..] plus frame-0 state Xs, which
        # stay unassigned (X) by passing X values.
        from repro.circuit.gates import X
        vector = []
        pi_ids = set(pid for f in unrolled.frame_pis for pid in f)
        value_of = {}
        for frame, frame_vec in enumerate(vectors):
            for pid, bit in zip(unrolled.frame_pis[frame], frame_vec):
                value_of[pid] = bit
        for node in unrolled.circuit.inputs:
            vector.append(value_of.get(node, X))
        comb.begin(None)
        comb.step([vector])
        pos = comb.po_values(0)
        n_po = minifsm_circuit.num_outputs
        unrolled_trace = [
            pos[f * n_po:(f + 1) * n_po] for f in range(frames)
        ]
        assert unrolled_trace == seq_trace

    def test_zero_frames_rejected(self, s27_circuit):
        with pytest.raises(ValueError):
            unroll(s27_circuit, 0)


class TestPodem:
    def assignable(self, unrolled):
        return [pi for frame in unrolled.frame_pis for pi in frame]

    def test_c17_all_faults_testable(self, c17_circuit):
        unrolled = unroll(c17_circuit, 1)
        for fault in collapsed_fault_list(c17_circuit):
            result = Podem(
                unrolled.circuit, unrolled.fault_copies(fault),
                self.assignable(unrolled), unrolled.observables,
            ).run()
            assert result.found, fault.describe(c17_circuit)

    def test_generated_tests_actually_detect(self, c17_circuit):
        """Every PODEM assignment must be confirmed by fault simulation."""
        unrolled = unroll(c17_circuit, 1)
        for fault in collapsed_fault_list(c17_circuit):
            result = Podem(
                unrolled.circuit, unrolled.fault_copies(fault),
                self.assignable(unrolled), unrolled.observables,
            ).run()
            vector = [
                result.assignment.get(pi, 0) for pi in unrolled.frame_pis[0]
            ]
            fsim = FaultSimulator(c17_circuit, faults=[fault])
            commit = fsim.commit([vector])
            assert commit.detected_count == 1, fault.describe(c17_circuit)

    def test_redundant_fault_proven_untestable(self):
        # y = OR(a, NOT(a)) is constant 1: y s-a-1 is undetectable.
        c = Circuit("redundant")
        c.add_input("a")
        c.add_gate("n", GateType.NOT, ["a"])
        c.add_gate("y", GateType.OR, ["a", "n"])
        c.mark_output("y")
        c.finalize()
        unrolled = unroll(c, 1)
        fault = Fault(c.id_of("y"), STEM, 1)
        result = Podem(
            unrolled.circuit, unrolled.fault_copies(fault),
            self.assignable(unrolled), unrolled.observables,
        ).run()
        assert result.status is PodemStatus.UNTESTABLE

    def test_backtrack_limit_aborts(self, minifsm_circuit):
        unrolled = unroll(minifsm_circuit, 6)
        fault = collapsed_fault_list(minifsm_circuit)[5]
        result = Podem(
            unrolled.circuit, unrolled.fault_copies(fault),
            self.assignable(unrolled), unrolled.observables,
            backtrack_limit=0,
        ).run()
        assert result.status in (PodemStatus.SUCCESS, PodemStatus.ABORTED,
                                 PodemStatus.UNTESTABLE)

    def test_requires_fault_sites(self, c17_circuit):
        unrolled = unroll(c17_circuit, 1)
        with pytest.raises(ValueError):
            Podem(unrolled.circuit, [], [], [])


class TestDeterministicAtpg:
    def test_s27_full_coverage(self):
        result = DeterministicAtpg(s27()).run()
        assert result.detected == result.total_faults
        assert result.untestable == 0

    def test_test_set_replays(self):
        result = DeterministicAtpg(mini_fsm()).run()
        fsim = FaultSimulator(mini_fsm())
        fsim.commit(result.test_sequence)
        assert fsim.detected_count == result.detected

    def test_accounting_consistent(self):
        result = DeterministicAtpg(resettable_counter(3)).run()
        assert result.targeted <= result.total_faults
        assert result.detected + result.untestable + result.aborted >= 0
        assert result.vectors == len(result.test_sequence)

    def test_shift_register_trivial(self):
        result = DeterministicAtpg(shift_register(3)).run()
        assert result.detected == result.total_faults

    def test_seed_vectors_preamble(self):
        result = DeterministicAtpg(s27(), seed_vectors=16).run()
        assert result.vectors >= 16
        assert result.detected == result.total_faults

    def test_frame_schedule_respects_max(self):
        atpg = DeterministicAtpg(s27(), max_frames=5)
        assert atpg._frame_schedule() == [1, 2, 4, 5]
