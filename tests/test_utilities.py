"""Tests for the analysis utilities: SCOAP testability, VCD, reports."""

import io
import math

import pytest

from repro.circuit import (
    Circuit,
    GateType,
    analyze_testability,
    c17,
    s27,
    shift_register,
    synthesize_named,
)
from repro.faults import FaultSimulator, coverage_report
from repro.sim import dump_vcd

from tests.conftest import random_vectors


class TestScoap:
    def test_primary_inputs_cost_one(self, s27_circuit):
        report = analyze_testability(s27_circuit)
        for pi in s27_circuit.inputs:
            assert report.cc0[pi] == 1.0
            assert report.cc1[pi] == 1.0

    def test_and_gate_rules(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        report = analyze_testability(c)
        g = c.id_of("g")
        assert report.cc1[g] == 3.0  # both inputs to 1: 1 + 1 + 1
        assert report.cc0[g] == 2.0  # one input to 0: 1 + 1
        # Observing `a` through the AND needs b=1: co(g)=0 + cc1(b) + 1.
        assert report.co[c.id_of("a")] == 2.0

    def test_not_swaps(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("n", GateType.NOT, ["a"])
        c.mark_output("n")
        c.finalize()
        report = analyze_testability(c)
        n = c.id_of("n")
        assert report.cc0[n] == 2.0
        assert report.cc1[n] == 2.0

    def test_xor_parity(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.XOR, ["a", "b"])
        c.mark_output("g")
        c.finalize()
        report = analyze_testability(c)
        g = c.id_of("g")
        assert report.cc0[g] == 3.0  # equal inputs
        assert report.cc1[g] == 3.0  # differing inputs

    def test_sequential_chain_costs_grow(self):
        report = analyze_testability(shift_register(4))
        circuit = report.circuit
        costs = [report.cc1[circuit.id_of(f"ff{i}")] for i in range(4)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_outputs_observable_at_zero(self, c17_circuit):
        report = analyze_testability(c17_circuit)
        for po in c17_circuit.outputs:
            assert report.co[po] == 0.0

    def test_all_finite_on_synthetic(self):
        circuit = synthesize_named("s386", scale=0.3)
        report = analyze_testability(circuit)
        assert not any(math.isinf(v) for v in report.cc0)
        assert not any(math.isinf(v) for v in report.cc1)
        # Dangling-free circuits: everything observable.
        assert sum(1 for v in report.co if math.isinf(v)) == 0

    def test_rankings(self, s27_circuit):
        report = analyze_testability(s27_circuit)
        hard_control = report.hardest_to_control(5)
        assert len(hard_control) == 5
        assert hard_control[0][1] >= hard_control[-1][1]
        hard_observe = report.hardest_to_observe(3)
        assert len(hard_observe) == 3

    def test_fault_difficulty_combines(self, s27_circuit):
        report = analyze_testability(s27_circuit)
        node = s27_circuit.id_of("G10")
        assert report.fault_difficulty(node, 0) == report.cc1[node] + report.co[node]

    def test_correlates_with_detection_difficulty(self):
        """SCOAP-hard faults should be over-represented among the faults
        random vectors miss (a sanity link between the two worlds)."""
        import random

        circuit = synthesize_named("s298", scale=0.5)
        report = analyze_testability(circuit)
        fsim = FaultSimulator(circuit)
        rng = random.Random(0)
        fsim.commit([
            [rng.randint(0, 1) for _ in range(circuit.num_inputs)]
            for _ in range(150)
        ])
        if not fsim.active or fsim.detected_count == 0:
            pytest.skip("degenerate run")
        import statistics

        detected = [
            report.fault_difficulty(f.node, f.stuck_at)
            for i, f in enumerate(fsim.faults) if i not in set(fsim.active)
        ]
        undetected = [
            report.fault_difficulty(f.node, f.stuck_at)
            for f in fsim.undetected_faults()
        ]
        # Medians, not means: SCOAP assigns *infinite* difficulty to
        # faults whose activation value is structurally unreachable,
        # which is informative but wrecks averages.
        assert statistics.median(undetected) > statistics.median(detected)


class TestVcd:
    def test_header_and_timesteps(self, s27_circuit):
        buffer = io.StringIO()
        vectors = random_vectors(s27_circuit, 6, seed=1)
        dump_vcd(s27_circuit, vectors, buffer)
        text = buffer.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$enddefinitions $end" in text
        for t in range(7):
            assert f"#{t}" in text
        assert text.count("$var wire 1 ") == s27_circuit.num_nodes

    def test_signal_subset(self, s27_circuit):
        buffer = io.StringIO()
        dump_vcd(
            s27_circuit, random_vectors(s27_circuit, 3, seed=2), buffer,
            signals=["G17", "G10"],
        )
        text = buffer.getvalue()
        assert text.count("$var wire 1 ") == 2
        assert "G17" in text and "G10" in text

    def test_values_match_simulation(self, s27_circuit):
        from repro.sim import SerialSimulator

        buffer = io.StringIO()
        vectors = random_vectors(s27_circuit, 5, seed=3)
        dump_vcd(s27_circuit, vectors, buffer, signals=["G17"])
        # Parse the single-signal changes back out.
        ident = None
        changes = {}
        current_time = None
        for line in buffer.getvalue().splitlines():
            if line.startswith("$var"):
                ident = line.split()[3]
            elif line.startswith("#"):
                current_time = int(line[1:])
            elif ident and line.endswith(ident) and current_time is not None:
                changes[current_time] = line[: -len(ident)]
        sim = SerialSimulator(s27_circuit)
        value = "x"
        trace = []
        sim.begin(None)
        for t, vector in enumerate(vectors):
            sim.step([vector])
            po = sim.node_value(0, s27_circuit.id_of("G17"))
            expected = {0: "0", 1: "1", 2: "x"}[po]
            if t in changes:
                value = changes[t]
            trace.append(value == expected)
        assert all(trace)

    def test_file_output(self, tmp_path, s27_circuit):
        path = tmp_path / "trace.vcd"
        dump_vcd(s27_circuit, random_vectors(s27_circuit, 2, seed=1), path)
        assert path.read_text().startswith("$date")


class TestCoverageReport:
    def make_report(self):
        circuit = s27()
        fsim = FaultSimulator(circuit)
        for vector in random_vectors(circuit, 25, seed=4):
            fsim.commit([vector])
        return fsim, coverage_report(fsim)

    def test_counts_match_simulator(self):
        fsim, report = self.make_report()
        assert report.detected == fsim.detected_count
        assert report.total_faults == fsim.num_faults
        assert report.vectors == 25
        assert len(report.undetected) == len(fsim.active)

    def test_curve_monotone(self):
        _, report = self.make_report()
        frames = [f for f, _ in report.curve]
        counts = [c for _, c in report.curve]
        assert frames == sorted(frames)
        assert counts == sorted(counts)
        assert counts[-1] == report.detected

    def test_regions_partition(self):
        _, report = self.make_report()
        assert sum(total for _, total in report.by_region.values()) == report.total_faults
        assert sum(det for det, _ in report.by_region.values()) == report.detected

    def test_render(self):
        _, report = self.make_report()
        text = report.render()
        assert "Fault coverage report" in text
        assert "per-region coverage" in text
