"""Tests for the netlist model: building, finalization, derived structure."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType, shift_register


def build_simple():
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.mark_output("g1")
    return c.finalize()


class TestBuilder:
    def test_basic_counts(self):
        c = build_simple()
        assert c.num_inputs == 2
        assert c.num_outputs == 1
        assert c.num_gates == 1
        assert c.num_dffs == 0
        assert c.num_nodes == 3

    def test_forward_reference_resolved(self):
        c = Circuit("t")
        c.add_input("a")
        c.mark_output("g")           # forward reference
        c.add_gate("g", GateType.NOT, ["a"])
        c.finalize()
        assert c.node_types[c.id_of("g")] is GateType.NOT

    def test_unresolved_reference_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g", GateType.AND, ["a", "phantom"])
        c.mark_output("g")
        with pytest.raises(CircuitError, match="phantom"):
            c.finalize()

    def test_double_definition_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g", GateType.NOT, ["a"])
        with pytest.raises(CircuitError, match="twice"):
            c.add_gate("g", GateType.NOT, ["a"])

    def test_not_gate_arity_enforced(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        with pytest.raises(CircuitError, match="exactly one"):
            c.add_gate("g", GateType.NOT, ["a", "b"])

    def test_gate_without_fanins_rejected(self):
        c = Circuit("t")
        with pytest.raises(CircuitError, match="no fanins"):
            c.add_gate("g", GateType.AND, [])

    def test_add_gate_rejects_sequential_types(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(CircuitError, match="add_input/add_dff"):
            c.add_gate("g", GateType.DFF, ["a"])

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError, match="no primary inputs"):
            Circuit("t").finalize()

    def test_frozen_after_finalize(self):
        c = build_simple()
        with pytest.raises(CircuitError, match="finalized"):
            c.add_input("late")

    def test_finalize_idempotent(self):
        c = build_simple()
        assert c.finalize() is c


class TestDerivedStructure:
    def test_fanouts(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.NOT, ["a"])
        c.add_gate("g2", GateType.NOT, ["a"])
        c.mark_output("g1")
        c.mark_output("g2")
        c.finalize()
        assert set(c.fanouts[c.id_of("a")]) == {c.id_of("g1"), c.id_of("g2")}

    def test_levels_and_topo_order(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.NOT, ["a"])
        c.add_gate("g2", GateType.NOT, ["g1"])
        c.add_gate("g3", GateType.AND, ["a", "g2"])
        c.mark_output("g3")
        c.finalize()
        assert c.levels[c.id_of("g1")] == 1
        assert c.levels[c.id_of("g2")] == 2
        assert c.levels[c.id_of("g3")] == 3
        order = c.topo_order
        assert order.index(c.id_of("g1")) < order.index(c.id_of("g2"))
        assert order.index(c.id_of("g2")) < order.index(c.id_of("g3"))

    def test_combinational_cycle_detected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.AND, ["a", "g2"])
        c.add_gate("g2", GateType.NOT, ["g1"])
        c.mark_output("g2")
        with pytest.raises(CircuitError, match="cycle"):
            c.finalize()

    def test_dff_breaks_cycle(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.AND, ["a", "q"])
        c.add_dff("q", "g1")
        c.mark_output("g1")
        c.finalize()  # must not raise
        assert c.sequential_depth() == 1

    def test_topo_order_covers_all_comb_gates(self, s27_circuit):
        comb = [
            i for i, t in enumerate(s27_circuit.node_types) if t.is_combinational
        ]
        assert sorted(s27_circuit.topo_order) == sorted(comb)


class TestSequentialDepth:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_shift_register_depth(self, n):
        assert shift_register(n).sequential_depth() == n

    def test_combinational_depth_zero(self, c17_circuit):
        assert c17_circuit.sequential_depth() == 0

    def test_s27_depth_one(self, s27_circuit):
        # Every s27 gate is combinationally reachable from some PI, and
        # the flip-flops sit one stage deep.
        assert s27_circuit.sequential_depth() == 1

    def test_depth_uses_minimum_over_paths(self):
        # A node fed both directly from a PI and through a DFF chain has
        # minimum flip-flop distance 0.
        c = Circuit("t")
        c.add_input("a")
        c.add_gate("d0", GateType.NOT, ["a"])
        c.add_dff("q0", "d0")
        c.add_gate("mix", GateType.AND, ["a", "q0"])  # min dist 0
        c.mark_output("mix")
        c.finalize()
        assert c.sequential_depth() == 1  # q0 is the furthest node

    def test_depth_cached(self, s27_circuit):
        assert s27_circuit.sequential_depth() == s27_circuit.sequential_depth()

    def test_depth_requires_finalize(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(CircuitError, match="finalize"):
            c.sequential_depth()


class TestIntrospection:
    def test_node_view(self, s27_circuit):
        node = s27_circuit.node(s27_circuit.id_of("G10"))
        assert node.name == "G10"
        assert node.type is GateType.NOR
        assert len(node.fanin) == 2

    def test_iter_nodes_complete(self, s27_circuit):
        assert len(list(s27_circuit.iter_nodes())) == s27_circuit.num_nodes

    def test_id_of_unknown_raises(self, s27_circuit):
        with pytest.raises(KeyError):
            s27_circuit.id_of("nonexistent")

    def test_stats_keys(self, s27_circuit):
        stats = s27_circuit.stats()
        assert stats == {
            "inputs": 4, "outputs": 1, "dffs": 3, "gates": 10,
            "nodes": 17, "levels": stats["levels"], "seq_depth": 1,
        }
