"""Documentation health: links resolve and CLI quickstarts are real.

Runs tools/check_doc_links.py (the same script CI runs) over the
repository's README and docs/*.md, so a renamed file, heading, or CLI
flag fails tier-1 tests, not just the separate CI step.
"""

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_checker(root):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_doc_links.py"),
         str(root)],
        capture_output=True,
        text=True,
    )


class TestDocLinks:
    def test_no_dead_links(self):
        result = run_checker(REPO_ROOT)
        assert result.returncode == 0, result.stdout

    def test_documentation_suite_is_linked_from_readme(self):
        """The README's Documentation index must reference every doc."""
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md",
                    "docs/PERFORMANCE.md", "docs/TELEMETRY.md",
                    "docs/KERNELS.md", "docs/ROBUSTNESS.md",
                    "docs/SERVICE.md"):
            assert f"({doc})" in readme, f"README does not link {doc}"


class TestCliExampleChecking:
    """The checker must catch docs quoting flags the CLI no longer has."""

    def _check(self, tmp_path, markdown):
        root = tmp_path / "repo"
        root.mkdir()
        # The checker introspects the real parsers from <root>/src.
        shutil.copytree(REPO_ROOT / "src", root / "src")
        (root / "README.md").write_text(markdown, encoding="utf-8")
        return run_checker(root)

    def test_valid_examples_pass(self, tmp_path):
        result = self._check(tmp_path, (
            "# x\n\n```bash\n"
            "gatest run s27 --seed 42 -o tests.txt\n"
            "REPRO_SIM_KERNEL=numpy gatest fsim s27 tests.txt\n"
            "gatest serve --port 0 --state-dir /tmp/state\n"
            "python -m repro.cli run s27 \\\n  --eval-jobs 4\n"
            "```\n"
        ))
        assert result.returncode == 0, result.stdout

    def test_phantom_flag_fails(self, tmp_path):
        result = self._check(
            tmp_path, "# x\n\n```bash\ngatest run s27 --turbo\n```\n"
        )
        assert result.returncode == 1
        assert "--turbo" in result.stdout
        assert "stale CLI example" in result.stdout

    def test_unknown_subcommand_fails(self, tmp_path):
        result = self._check(
            tmp_path, "# x\n\n```bash\ngatest launch s27\n```\n"
        )
        assert result.returncode == 1
        assert "unknown gatest subcommand" in result.stdout

    def test_console_output_lines_are_not_commands(self, tmp_path):
        """In console fences only `$ `-prompted lines are commands."""
        result = self._check(tmp_path, (
            "# x\n\n```console\n"
            "$ gatest run s27 --seed 1\n"
            "s27: det 26/26 (100.0%) --not-a-flag\n"
            "```\n"
        ))
        assert result.returncode == 0, result.stdout
