"""Documentation health: no dead relative links in the markdown docs.

Runs tools/check_doc_links.py (the same script CI runs) over the
repository's README and docs/*.md, so a renamed file or heading fails
tier-1 tests, not just the separate CI step.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDocLinks:
    def test_no_dead_links(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_doc_links.py"),
             str(REPO_ROOT)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout

    def test_documentation_suite_is_linked_from_readme(self):
        """The README's Documentation index must reference every doc."""
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md",
                    "docs/PERFORMANCE.md", "docs/TELEMETRY.md"):
            assert f"({doc})" in readme, f"README does not link {doc}"
