"""Tests for the hybrid GA-then-deterministic flow (paper §V)."""

import pytest

from repro.circuit import mini_fsm, resettable_counter, s27
from repro.core import HybridAtpg, TestGenConfig, run_hybrid
from repro.faults import FaultSimulator


class TestHybrid:
    def test_counts_consistent(self):
        result = run_hybrid(mini_fsm(), TestGenConfig(seed=1))
        assert result.detected == result.ga_detected + result.deterministic_detected
        assert result.detected + result.untestable <= result.total_faults
        assert 0.0 <= result.fault_coverage <= result.fault_efficiency <= 1.0

    def test_combined_test_set_replays(self):
        result = run_hybrid(mini_fsm(), TestGenConfig(seed=1))
        fsim = FaultSimulator(mini_fsm())
        fsim.commit(result.test_sequence)
        assert fsim.detected_count == result.detected

    def test_fully_covered_circuit_skips_second_pass(self):
        # s27: GATEST detects everything, so no deterministic pass runs.
        result = run_hybrid(s27(), TestGenConfig(seed=1))
        assert result.deterministic_result is None
        assert result.deterministic_detected == 0
        assert result.fault_coverage == 1.0

    def test_efficiency_exceeds_ga_alone(self):
        """The hybrid's raison d'etre: untestability proofs raise fault
        efficiency above what the GA can report."""
        result = run_hybrid(mini_fsm(), TestGenConfig(seed=1))
        ga_only_efficiency = result.ga_detected / result.total_faults
        assert result.fault_efficiency > ga_only_efficiency

    def test_second_pass_targets_survivors_only(self):
        result = HybridAtpg(
            resettable_counter(3), TestGenConfig(seed=2)
        ).run()
        if result.deterministic_result is not None:
            assert (
                result.deterministic_result.total_faults
                == result.total_faults - result.ga_detected
            )

    def test_summary_renders(self):
        result = run_hybrid(mini_fsm(), TestGenConfig(seed=1))
        text = result.summary()
        assert "GA" in text and "untestable" in text
