"""ATPG for your own design: build a netlist, generate tests, compare engines.

Constructs a small bus-arbiter-style FSM with the netlist builder API,
then runs all three test generators this package ships — GATEST (GA),
pure random, and the deterministic PODEM engine — and compares coverage,
test length, and run time.

Run:  python examples/custom_circuit.py
"""

import time

from repro.baselines import DeterministicAtpg, RandomTestGenerator
from repro.circuit import Circuit, GateType, validate
from repro.core import GaTestGenerator, TestGenConfig


def build_arbiter() -> Circuit:
    """A 2-client round-robin arbiter with synchronous reset.

    State: grant register (g0, g1) plus a priority toggle.  Requests
    r0/r1; grants are mutually exclusive; the toggle flips on every
    contested cycle so the losing client wins next time.
    """
    c = Circuit("arbiter2")
    for name in ("rst", "r0", "r1"):
        c.add_input(name)
    c.add_gate("nrst", GateType.NOT, ["rst"])

    # Contention: both clients request.
    c.add_gate("both", GateType.AND, ["r0", "r1"])
    c.add_gate("only0", GateType.AND, ["r0", "nr1"])
    c.add_gate("only1", GateType.AND, ["r1", "nr0"])
    c.add_gate("nr0", GateType.NOT, ["r0"])
    c.add_gate("nr1", GateType.NOT, ["r1"])

    # Priority toggle: flips when contested, cleared by reset.
    c.add_gate("flip", GateType.XOR, ["pri", "both"])
    c.add_gate("pri_next", GateType.AND, ["flip", "nrst"])
    c.add_dff("pri", "pri_next")

    # Grant 0: request alone, or contested while priority is 0.
    c.add_gate("npri", GateType.NOT, ["pri"])
    c.add_gate("win0", GateType.AND, ["both", "npri"])
    c.add_gate("g0_raw", GateType.OR, ["only0", "win0"])
    c.add_gate("g0_next", GateType.AND, ["g0_raw", "nrst"])
    c.add_dff("g0", "g0_next")

    # Grant 1: request alone, or contested while priority is 1.
    c.add_gate("win1", GateType.AND, ["both", "pri"])
    c.add_gate("g1_raw", GateType.OR, ["only1", "win1"])
    c.add_gate("g1_next", GateType.AND, ["g1_raw", "nrst"])
    c.add_dff("g1", "g1_next")

    c.mark_output("g0")
    c.mark_output("g1")
    c.finalize()
    return c


def main() -> None:
    circuit = build_arbiter()
    print(f"built {circuit.name}: {circuit.stats()}")
    for violation in validate(circuit):
        print(f"  lint: {violation}")

    rows = []

    start = time.perf_counter()
    ga = GaTestGenerator(circuit, TestGenConfig(seed=7)).run()
    rows.append(("GATEST (GA)", ga.detected, ga.total_faults, ga.vectors,
                 time.perf_counter() - start))

    start = time.perf_counter()
    rnd = RandomTestGenerator(circuit, seed=7, max_vectors=ga.vectors).run()
    rows.append(("random (same budget)", rnd.detected, rnd.total_faults,
                 rnd.vectors, time.perf_counter() - start))

    start = time.perf_counter()
    det = DeterministicAtpg(circuit).run()
    rows.append((f"deterministic ({det.untestable} proven untestable)",
                 det.detected, det.total_faults, det.vectors,
                 time.perf_counter() - start))

    print(f"\n{'engine':38s} {'det':>8s} {'vec':>5s} {'time':>8s}")
    for name, detected, total, vectors, elapsed in rows:
        print(f"{name:38s} {detected:4d}/{total:<4d} {vectors:5d} {elapsed:7.2f}s")


if __name__ == "__main__":
    main()
