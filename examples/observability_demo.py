"""Observability tour: trace a GATEST run on s27 end to end.

Runs the GA test generator on the real ISCAS89 s27 netlist with a
recording telemetry collector attached, then walks the trace:

1. the per-generation GA statistics of the first GA run (the fitness
   climb the paper's framework is built around),
2. the stage-event coverage trajectory (Figure-1 flow, one line per
   committed vector / attempted sequence),
3. the span / counter / gauge rollup (``--metrics``-style table),
4. a JSONL dump + read-back + schema validation round trip.

Run with::

    PYTHONPATH=src python examples/observability_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import s27
from repro.core import GaTestGenerator, TestGenConfig
from repro.telemetry import (
    TelemetryCollector,
    generation_trajectory,
    metrics_summary,
    read_trace,
    validate_trace,
)


def main() -> None:
    collector = TelemetryCollector(source="examples.observability_demo")
    result = GaTestGenerator(
        s27(), TestGenConfig(seed=42), collector=collector
    ).run()
    print(result.summary())

    records = collector.records()

    print("\n-- GA run 0: per-generation fitness (phase", end=" ")
    first = generation_trajectory(records, ga_run=0)
    print(f"{first[0]['phase']}) --")
    for gen in first:
        bar = "#" * round(4 * float(gen["best"]))
        print(
            f"  gen {gen['generation']:>2}  best {gen['best']:6.3f}  "
            f"mean {gen['mean']:6.3f}  evals {gen['evaluations']:>4}  {bar}"
        )

    print("\n-- coverage trajectory (stage events) --")
    for stage in collector.events("stage"):
        marker = "+" if stage["committed"] else "."
        print(
            f"  {marker} {stage['event']:<8} {stage['phase']:<15} "
            f"frames={stage['frames']:<2} det={stage['detected']:<2} "
            f"coverage={100 * stage['coverage']:5.1f}%  "
            f"vec={stage['vectors_total']}"
        )

    print("\n-- metrics rollup --")
    print(metrics_summary(collector))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s27_trace.jsonl"
        count = collector.dump(path)
        loaded = validate_trace(read_trace(path))
        print(
            f"\nJSONL round trip: wrote {count} records to {path.name}, "
            f"read {len(loaded)} back, all valid against schema "
            f"v{loaded[0]['schema']}"
        )


if __name__ == "__main__":
    main()
