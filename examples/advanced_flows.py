"""Advanced flows: transition faults, hybrid ATPG, compaction, checkpoints.

A tour of the reproduction's extension features (the paper's §VI
future-work items, DESIGN.md "Extensions"):

1. GATEST on the **transition (gate-delay) fault model** — same
   generator, different fault universe;
2. the §V **hybrid** flow — GA first pass, deterministic engine on the
   survivors, untestability proofs included;
3. **static compaction** of the combined test set;
4. a **checkpoint** save/restore round trip, as a long campaign would
   use between sessions.

Run:  python examples/advanced_flows.py [circuit] [scale]
e.g.  python examples/advanced_flows.py s386 0.5
"""

import sys
import tempfile
from pathlib import Path

from repro.core import (
    HybridAtpg,
    GaTestGenerator,
    TestGenConfig,
    compact_test_set,
    load_checkpoint,
    save_checkpoint,
)
from repro.faults import FaultSimulator
from repro.harness.runner import compiled_circuit_for


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    compiled = compiled_circuit_for(name, scale)
    circuit = compiled.circuit
    print(f"circuit: {circuit.name}  {circuit.stats()}\n")

    # 1. Transition-fault ATPG: the unmodified generator on a different
    #    fault model (paper §VI: "other fault models can easily be
    #    accommodated").
    print("— transition-fault GATEST —")
    transition = GaTestGenerator(
        compiled, TestGenConfig(seed=1, fault_model="transition")
    ).run()
    print(transition.summary())

    # 2. Hybrid GA + deterministic flow (paper §V).
    print("\n— hybrid flow (stuck-at) —")
    hybrid = HybridAtpg(
        compiled, TestGenConfig(seed=1), backtrack_limit=100
    ).run()
    print(hybrid.summary())

    # 3. Compaction of the combined test set.
    print("\n— static compaction —")
    compaction = compact_test_set(compiled, hybrid.test_sequence)
    print(
        f"{compaction.original_vectors} -> {compaction.compacted_vectors} vectors "
        f"({100 * compaction.reduction:.0f}% smaller) at preserved coverage, "
        f"{compaction.trials} resimulations"
    )

    # 4. Checkpoint round trip: save mid-campaign, restore, continue.
    print("\n— checkpoint round trip —")
    half = len(compaction.test_sequence) // 2
    first, second = (
        compaction.test_sequence[:half], compaction.test_sequence[half:]
    )
    session1 = FaultSimulator(compiled)
    session1.commit(first)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.ckpt.json"
        save_checkpoint(path, session1, test_sequence=first)
        print(f"saved {path.stat().st_size} bytes after {half} vectors "
              f"({session1.detected_count} detections)")
        session2, stored = load_checkpoint(path, compiled)
        session2.commit(second)
        print(f"restored and continued: {session2.detected_count}"
              f"/{session2.num_faults} detections")
    reference = FaultSimulator(compiled)
    reference.commit(compaction.test_sequence)
    assert reference.detected_count == session2.detected_count
    print("continuation equals an uninterrupted run — checkpoint is faithful.")


if __name__ == "__main__":
    main()
