"""Debugging fault escapes: testability analysis, reports, waveforms.

After running GATEST this script answers the engineer's next question —
*which faults escaped, and why?* — with the three standard tools:

1. a coverage report with per-region breakdown and the coverage curve;
2. SCOAP testability analysis: are the escapes hard-to-control or
   hard-to-observe sites?
3. a VCD waveform dump of the generated test set around one escape's
   fault site (open it in GTKWave or any waveform viewer).

Run:  python examples/debug_escapes.py [circuit] [scale]
e.g.  python examples/debug_escapes.py s526 0.5
"""

import statistics
import sys
from pathlib import Path

from repro.circuit import analyze_testability
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator, coverage_report
from repro.harness.runner import compiled_circuit_for
from repro.sim import dump_vcd


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    compiled = compiled_circuit_for(name, scale)
    circuit = compiled.circuit

    print(f"generating tests for {circuit.name} ...")
    result = GaTestGenerator(compiled, TestGenConfig(seed=3)).run()
    print(result.summary())

    # Re-simulate vector by vector so the report's coverage curve has
    # per-frame resolution.
    fsim = FaultSimulator(compiled)
    for vector in result.test_sequence:
        fsim.commit([vector])
    report = coverage_report(fsim)
    print()
    print(report.render(max_undetected=10))

    if not fsim.active:
        print("\nno escapes — nothing to debug.")
        return

    # SCOAP: are the escapes structurally hard?
    scoap = analyze_testability(circuit)
    detected_ids = set(range(fsim.num_faults)) - set(fsim.active)
    escaped_difficulty = [
        scoap.fault_difficulty(f.node, f.stuck_at)
        for f in fsim.undetected_faults()
    ]
    detected_difficulty = [
        scoap.fault_difficulty(fsim.faults[i].node, fsim.faults[i].stuck_at)
        for i in detected_ids
    ]
    print(f"\nSCOAP difficulty (median): escaped "
          f"{statistics.median(escaped_difficulty):.0f} vs detected "
          f"{statistics.median(detected_difficulty):.0f}")
    hardest = max(
        fsim.undetected_faults(),
        key=lambda f: min(scoap.fault_difficulty(f.node, f.stuck_at), 1e9),
    )
    print(f"hardest escape: {hardest.describe(circuit)} "
          f"(difficulty {scoap.fault_difficulty(hardest.node, hardest.stuck_at):.0f})")

    # Waveform dump around the hardest escape's fault site.
    site = circuit.node_names[hardest.node]
    neighbourhood = [site] + [
        circuit.node_names[f] for f in circuit.fanins[hardest.node]
    ]
    out = Path("escape_debug.vcd")
    dump_vcd(circuit, result.test_sequence, out, signals=neighbourhood)
    print(f"wrote {out} with signals {neighbourhood} "
          f"({len(result.test_sequence)} cycles) — inspect with a waveform viewer")


if __name__ == "__main__":
    main()
