"""Fault sampling: trading fitness accuracy for execution time.

Reproduces the structure of the paper's Table 6 on one synthetic
benchmark: GATEST runs with the full fault list vs fixed-size random
fault samples in the fitness evaluation.  Prints detections, vector
counts, end-to-end speedup, and the per-evaluation cost that drives it.

Run:  python examples/fault_sampling_speedup.py [circuit] [scale]
e.g.  python examples/fault_sampling_speedup.py s1423 0.5
"""

import sys

from repro.core import TestGenConfig
from repro.harness import TextTable, run_gatest
from repro.harness.runner import compiled_circuit_for


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s1196"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    seeds = [1, 2]

    compiled = compiled_circuit_for(circuit, scale)
    from repro.faults import collapsed_fault_list
    total = len(collapsed_fault_list(compiled.circuit))
    print(f"{circuit}@{scale}: {total} collapsed faults")

    sample_sizes = [max(10, round(s * scale)) for s in (100, 200, 300)]
    rows = []
    print("running full fault list ...")
    full = run_gatest(circuit, TestGenConfig(), seeds, scale=scale)
    rows.append(("full", full))
    for size in sample_sizes:
        print(f"running sample size {size} ...")
        agg = run_gatest(circuit, TestGenConfig(fault_sample=size), seeds, scale=scale)
        rows.append((f"{size}", agg))

    def eval_cost_us(agg):
        evals = sum(r.ga_evaluations for r in agg.runs) / len(agg.runs)
        return 1e6 * agg.time_mean / evals if evals else 0.0

    table = TextTable(
        ["Sample", "Det", "Vec", "Time (s)", "Speedup", "us/eval"],
        title=f"Fault sampling on {circuit}@{scale} (mean of {len(seeds)} seeds)",
    )
    for label, agg in rows:
        speedup = full.time_mean / agg.time_mean if agg.time_mean else 0.0
        table.add_row(
            label,
            f"{agg.det_mean:.1f}/{agg.total_faults}",
            f"{agg.vec_mean:.0f}",
            f"{agg.time_mean:.2f}",
            f"{speedup:.2f}",
            f"{eval_cost_us(agg):.0f}",
        )
    print()
    print(table.render())
    print("\npaper shape: speedups grow with circuit size "
          "(Table 6: 1.05x on s298 up to 6.3x on s5378) at a bounded "
          "coverage cost.")


if __name__ == "__main__":
    main()
