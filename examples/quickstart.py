"""Quickstart: generate tests for the ISCAS89 s27 benchmark.

Runs the GA-based test generator (GATEST) with the paper's default
configuration, prints what happened phase by phase, and verifies the
resulting test set by replaying it through an independent fault
simulator.

Run:  python examples/quickstart.py
"""

from repro.circuit import s27
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator


def main() -> None:
    circuit = s27()
    print(f"circuit: {circuit.name}  {circuit.stats()}")

    config = TestGenConfig(seed=42)
    result = GaTestGenerator(circuit, config).run()

    print(f"\n{result.summary()}")
    print("\nphase transitions (vector index -> phase):")
    for index, phase in result.phase_transitions:
        print(f"  {index:4d} -> {phase.name}")

    print("\nfirst detections (fault, at test-set frame):")
    for fault, frame in result.detections[:8]:
        print(f"  {fault.describe(circuit):20s} frame {frame}")

    # Verify: replay the generated test set through a fresh simulator.
    fsim = FaultSimulator(circuit)
    fsim.commit(result.test_sequence)
    print(
        f"\nreplay check: {fsim.detected_count}/{fsim.num_faults} faults detected "
        f"({100 * fsim.fault_coverage:.1f}% coverage) "
        f"by {len(result.test_sequence)} vectors"
    )
    assert fsim.detected_count == result.detected, "replay mismatch!"
    print("OK — the test set reproduces the reported coverage.")


if __name__ == "__main__":
    main()
