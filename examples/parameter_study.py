"""Mini parameter study: selection schemes and crossover operators.

Reproduces the structure of the paper's Table 3 on one scaled synthetic
benchmark: a grid of four selection schemes x three crossover operators,
each averaged over a few seeds, summarized the way the paper summarizes
its findings (tournament selection without replacement + uniform
crossover come out on top).

Run:  python examples/parameter_study.py [circuit] [scale] [seeds]
e.g.  python examples/parameter_study.py s386 0.4 3
"""

import sys

from repro.core import TestGenConfig
from repro.harness import TextTable, run_matrix

SELECTIONS = ["roulette", "sus", "tournament", "tournament-r"]
CROSSOVERS = ["1-point", "2-point", "uniform"]


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s820"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    n_seeds = int(sys.argv[3]) if len(sys.argv) > 3 else 3
    seeds = list(range(1, n_seeds + 1))

    configs = {
        f"{sel}/{xo}": TestGenConfig(selection=sel, crossover=xo)
        for sel in SELECTIONS
        for xo in CROSSOVERS
    }
    print(f"running {len(configs)} configurations x {n_seeds} seeds "
          f"on {circuit}@{scale} ...")
    results = run_matrix([circuit], configs, seeds, scale=scale,
                         progress=lambda line: print("  " + line))

    table = TextTable(
        ["Selection"] + CROSSOVERS,
        title=f"Detections | vectors on {circuit}@{scale} "
              f"(mean of {n_seeds} seeds)",
    )
    for sel in SELECTIONS:
        cells = []
        for xo in CROSSOVERS:
            agg = results[circuit][f"{sel}/{xo}"]
            cells.append(f"{agg.det_mean:.1f} | {agg.vec_mean:.0f}")
        table.add_row(sel, *cells)
    print()
    print(table.render())

    # Rank by detections, then by test-set length: once a circuit's
    # detectable ceiling is reached by every configuration (common at
    # reduced scale — the paper's easy circuits show the same), search
    # quality expresses itself as a shorter test set.
    best_key = max(
        configs,
        key=lambda k: (
            results[circuit][k].det_mean, -results[circuit][k].vec_mean
        ),
    )
    ceiling = max(results[circuit][k].det_mean for k in configs)
    tied = sum(1 for k in configs if results[circuit][k].det_mean == ceiling)
    if tied > 1:
        print(f"\n{tied}/{len(configs)} configurations tie at the "
              f"detectable ceiling; ranking by test-set length instead.")
    print(f"best configuration: {best_key} "
          f"(paper's best: tournament/uniform)")


if __name__ == "__main__":
    main()
