"""Ablation benches for the design choices DESIGN.md §5 calls out.

* fault-simulation fitness (GATEST) vs logic-simulation fitness
  (CRIS-like) — the paper's central design argument;
* GA search vs pure random search at a matched vector budget;
* phase-3 activity fitness term on/off;
* the multi-length sequence schedule vs a single long length.
"""

import random

import pytest

from repro.baselines import ContestLikeGenerator, CrisLikeGenerator, RandomTestGenerator
from repro.core import GaTestGenerator, TestGenConfig
from repro.faults import FaultSimulator
from repro.harness.runner import run_gatest

from conftest import SCALE, SEEDS, circuit, mean


@pytest.mark.benchmark(group="ablation")
def bench_crislike_fitness(benchmark):
    """Logic-sim (CRIS-like) fitness vs GATEST's fault-sim fitness."""
    compiled = circuit("s298")

    def run():
        return CrisLikeGenerator(compiled, seed=1, max_vectors=600).run()

    cris = benchmark.pedantic(run, rounds=1, iterations=1)
    gatest = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)
    print(f"\nablation CRIS-like: det {cris.detected}/{cris.total_faults} "
          f"vec {cris.vectors}; GATEST det {gatest.det_mean:.1f} "
          f"vec {gatest.vec_mean:.0f}")
    # The paper: GATEST's fault-sim fitness beats CRIS on 17 of 18
    # circuits.  Assert it here (equal-or-better, coverage-wise).
    assert gatest.det_mean >= cris.detected


@pytest.mark.benchmark(group="ablation")
def bench_contest_search_breadth(benchmark):
    """Population search (GA) vs unit-Hamming hill climbing (CONTEST-like).

    Isolates the paper's search-breadth argument for why mutation-based
    generators trail the GA."""
    compiled = circuit("s298")

    def run():
        return ContestLikeGenerator(compiled, seed=1, max_vectors=800).run()

    contest = benchmark.pedantic(run, rounds=1, iterations=1)
    gatest = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)
    print(f"\nablation CONTEST-like: det {contest.detected}/{contest.total_faults} "
          f"vec {contest.vectors}; GATEST det {gatest.det_mean:.1f} "
          f"vec {gatest.vec_mean:.0f}")
    assert gatest.det_mean >= contest.detected - 0.03 * contest.total_faults


@pytest.mark.benchmark(group="ablation")
def bench_ga_vs_random(benchmark):
    """GA search vs unguided random vectors, same vector budget."""
    compiled = circuit("s1196")

    def run():
        return GaTestGenerator(compiled, TestGenConfig(seed=1)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rng = random.Random(1)
    fsim = FaultSimulator(compiled)
    fsim.commit([
        [rng.randint(0, 1) for _ in range(compiled.num_pis)]
        for _ in range(result.vectors)
    ])
    print(f"\nablation GA {result.detected} vs random {fsim.detected_count} "
          f"at {result.vectors} vectors ({result.total_faults} faults)")
    assert result.detected >= fsim.detected_count


@pytest.mark.benchmark(group="ablation")
def bench_weighted_random(benchmark):
    """Weighted-random TPG (intro refs [3,4,5]) vs GATEST at matched
    vectors: input-distribution shaping alone cannot reach GA coverage
    on sequential circuits."""
    from repro.baselines import WeightedRandomGenerator

    compiled = circuit("s298")
    gatest = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)

    def run():
        return WeightedRandomGenerator(
            compiled, seed=1, max_vectors=round(gatest.vec_mean)
        ).run()

    weighted = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation weighted-random: det {weighted.detected}"
          f"/{weighted.total_faults} vec {weighted.vectors}; "
          f"GATEST det {gatest.det_mean:.1f} vec {gatest.vec_mean:.0f}")
    assert gatest.det_mean >= weighted.detected


@pytest.mark.benchmark(group="ablation")
def bench_activity_fitness(benchmark):
    """Phase-3 activity reward on (paper) vs off."""
    def run():
        on = run_gatest("s298", TestGenConfig(use_activity_fitness=True),
                        SEEDS, scale=SCALE)
        off = run_gatest("s298", TestGenConfig(use_activity_fitness=False),
                         SEEDS, scale=SCALE)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation activity on: det {on.det_mean:.1f}; off: {off.det_mean:.1f}")
    # The activity term is a tiebreak; disabling it must not help much.
    assert on.det_mean >= off.det_mean - 0.05 * on.total_faults


@pytest.mark.benchmark(group="ablation")
def bench_sequence_length_schedule(benchmark):
    """Multi-length schedule (1x/2x/4x depth) vs only the longest."""
    def run():
        multi = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)
        single = run_gatest(
            "s298", TestGenConfig(seq_length_multipliers=(4.0,)),
            SEEDS[:1], scale=SCALE,
        )
        return multi, single

    multi, single = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation seq schedule multi: det {multi.det_mean:.1f} "
          f"time {multi.time_mean:.2f}s; single(4x): det {single.det_mean:.1f} "
          f"time {single.time_mean:.2f}s")
    # The paper's rationale: shorter lengths catch easy faults cheaply,
    # reducing execution time without losing coverage.
    assert multi.det_mean >= single.det_mean - 0.05 * multi.total_faults
