"""Table 6: fault sampling in the fitness evaluation.

Paper shapes checked:

* sampling cuts the cost of a fitness evaluation (the mechanism behind
  the paper's speedups — asserted on the per-evaluation cost, which is
  robust to run-trajectory noise; the paper's own end-to-end speedups
  dip below 1.0 for the smallest circuit);
* the coverage cost of sampling is bounded;
* larger circuits benefit more than smaller ones (the paper's headline
  trend: s5378 at 6.3x vs s298 at 1.05x).

End-to-end speedups are printed for EXPERIMENTS.md.
"""

import pytest

from repro.core import TestGenConfig
from repro.harness.runner import run_matrix

from conftest import SCALE, SEEDS, mean


def sample_sizes():
    """Absolute sizes, scaled like the circuits are (paper: 100/200/300)."""
    return [max(8, round(s * SCALE)) for s in (100, 200, 300)]


def eval_cost(agg):
    """Mean wall-clock per GA fitness evaluation."""
    total_evals = mean(r.ga_evaluations for r in agg.runs)
    return agg.time_mean / total_evals if total_evals else 0.0


@pytest.mark.benchmark(group="table6")
def bench_fault_sampling(benchmark):
    sizes = sample_sizes()
    circuits = ["s298", "s1196"]
    configs = {"full": TestGenConfig()}
    configs.update({f"s{n}": TestGenConfig(fault_sample=n) for n in sizes})

    def run():
        return run_matrix(circuits, configs, SEEDS, scale=SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    cost_gain = {}
    for name in circuits:
        full = results[name]["full"]
        print(f"\ntable6 {name}: full det {full.det_mean:.1f}/{full.total_faults} "
              f"time {full.time_mean:.2f}s eval-cost {1e6 * eval_cost(full):.0f}us")
        for n in sizes:
            agg = results[name][f"s{n}"]
            speedup = full.time_mean / agg.time_mean if agg.time_mean else 0.0
            gain = eval_cost(full) / eval_cost(agg) if eval_cost(agg) else 0.0
            cost_gain[(name, n)] = gain
            drop = (full.det_mean - agg.det_mean) / full.total_faults
            print(f"  sample {n}: det {agg.det_mean:.1f} end-to-end speedup "
                  f"{speedup:.2f} eval-cost gain {gain:.2f} "
                  f"coverage drop {100 * drop:.1f}%")
            # Coverage cost of sampling is bounded.
            assert drop <= 0.25, f"{name} sample {n}: drop {drop:.2f}"

    smallest = sizes[0]
    # Sampling must make individual evaluations cheaper on the larger
    # circuit (its fault list dwarfs the sample).
    assert cost_gain[("s1196", smallest)] > 1.0, cost_gain
    # And the larger circuit benefits at least as much as the smaller.
    assert (
        cost_gain[("s1196", smallest)]
        >= cost_gain[("s298", smallest)] * 0.9
    ), cost_gain
