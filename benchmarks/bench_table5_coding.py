"""Table 5: binary vs nonbinary sequence coding across population sizes.

Paper shapes checked:

* fault coverage tends to improve with population size (the paper's
  monotone trend, checked with a small noise tolerance);
* both codings are close — the paper's differences are small, with
  binary typically slightly ahead at small populations.
"""

import pytest

from repro.core import TestGenConfig
from repro.harness.runner import run_matrix

from conftest import SCALE, SEEDS, STUDY_CIRCUITS, mean

POPULATIONS = [16, 32, 64]
CODINGS = ["binary", "nonbinary"]


@pytest.mark.benchmark(group="table5")
def bench_coding_population_grid(benchmark):
    configs = {
        f"{coding[:3]}{pop}": TestGenConfig(coding=coding, seq_population_size=pop)
        for coding in CODINGS for pop in POPULATIONS
    }

    def run():
        return run_matrix(STUDY_CIRCUITS, configs, SEEDS, scale=SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in STUDY_CIRCUITS:
        total = results[name]["bin16"].total_faults
        row = {k: results[name][k].det_mean for k in configs}
        print(f"\ntable5 {name}: {row}")
        # Codings track each other closely at every population size.
        for pop in POPULATIONS:
            gap = abs(row[f"bin{pop}"] - row[f"non{pop}"]) / total
            assert gap <= 0.10, f"{name} pop{pop}: coding gap {gap:.3f}"
        # Population trend: the largest population is not materially
        # worse than the smallest (noise tolerance 2% of faults).
        for coding in ("bin", "non"):
            small = row[f"{coding}16"]
            large = row[f"{coding}64"]
            assert large >= small - 0.02 * total, (
                f"{name} {coding}: pop64 {large} << pop16 {small}"
            )
