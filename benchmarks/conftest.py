"""Shared fixtures and helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures at reduced
scale (see DESIGN.md §4): the synthetic circuits are shrunk with
``SCALE`` and seeds reduced to ``SEEDS`` so the whole suite runs in
minutes.  Shapes (who wins, rough ratios) are asserted; absolute values
are printed for EXPERIMENTS.md.  Set the environment variable
``REPRO_BENCH_SCALE=1.0`` / ``REPRO_BENCH_SEEDS=10`` to run a bench at
the paper's full protocol.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import compiled_circuit_for

#: Circuit scale used by the benchmark suite.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
#: Number of GA seeds per configuration.
SEEDS = list(range(1, int(os.environ.get("REPRO_BENCH_SEEDS", "2")) + 1))

#: Circuits exercised by the parameter-study benches.
STUDY_CIRCUITS = ["s298", "s386"]


@pytest.fixture(scope="session")
def scaled_circuit():
    """The default benchmark circuit (scaled s298)."""
    return compiled_circuit_for("s298", SCALE)


def circuit(name: str):
    return compiled_circuit_for(name, SCALE)


def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0
