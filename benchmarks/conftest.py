"""Shared fixtures and helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures at reduced
scale (see DESIGN.md §4): the synthetic circuits are shrunk with
``SCALE`` and seeds reduced to ``SEEDS`` so the whole suite runs in
minutes.  Shapes (who wins, rough ratios) are asserted; absolute values
are printed for EXPERIMENTS.md.  Set the environment variable
``REPRO_BENCH_SCALE=1.0`` / ``REPRO_BENCH_SEEDS=10`` to run a bench at
the paper's full protocol.

Telemetry hook: set ``REPRO_BENCH_TRACE=out.jsonl`` to install a
recording collector for the whole session — every ``bench_*`` script
then dumps one combined JSONL run trace (schema: docs/TELEMETRY.md)
without any per-bench changes, because the instrumented stack picks up
the installed default collector.
"""

from __future__ import annotations

import os

import pytest

from repro.atomicio import atomic_write_json
from repro.harness.runner import compiled_circuit_for
from repro.telemetry import TelemetryCollector, install

#: Circuit scale used by the benchmark suite.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
#: Number of GA seeds per configuration.
SEEDS = list(range(1, int(os.environ.get("REPRO_BENCH_SEEDS", "2")) + 1))

#: Circuits exercised by the parameter-study benches.
STUDY_CIRCUITS = ["s298", "s386"]


#: Records accumulated by :func:`record_bench` for ``REPRO_BENCH_JSON``.
_BENCH_RECORDS: list = []


def record_bench(name: str, params: dict, seconds: float, speedup=None) -> dict:
    """Record one benchmark measurement for machine consumption.

    Benches call this with their headline numbers; when the environment
    variable ``REPRO_BENCH_JSON`` names a path, the session teardown
    writes every record there as a JSON array of
    ``{name, params, seconds, speedup}`` objects (``speedup`` is null
    for benches that measure a single configuration).  Returns the
    record so callers can embed it in their own artifacts too.
    """
    record = {
        "name": name,
        "params": dict(params),
        "seconds": seconds,
        "speedup": speedup,
    }
    _BENCH_RECORDS.append(record)
    return record


@pytest.fixture(scope="session", autouse=True)
def bench_json():
    """Per-bench JSON dump hook (``REPRO_BENCH_JSON=path``)."""
    yield
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not _BENCH_RECORDS:
        return
    atomic_write_json(path, _BENCH_RECORDS, indent=2)
    print(f"\n[bench] wrote {len(_BENCH_RECORDS)} records to {path}")


@pytest.fixture(scope="session", autouse=True)
def bench_trace():
    """Session-wide telemetry attach point (``REPRO_BENCH_TRACE``).

    When the environment variable names an output path, a recording
    collector is installed as the process default for the whole bench
    session and the combined trace is written on teardown.  Without it
    this fixture is a no-op and the null collector stays in place.
    """
    path = os.environ.get("REPRO_BENCH_TRACE")
    if not path:
        yield None
        return
    collector = TelemetryCollector(source="repro.benchmarks")
    previous = install(collector)
    try:
        yield collector
    finally:
        install(previous)
        count = collector.dump(path)
        print(f"\n[telemetry] wrote {count} trace records to {path}")


@pytest.fixture()
def telemetry_collector():
    """A per-test recording collector, installed as the default.

    For benches that want their own isolated trace (e.g. to assert on
    simulator counters) rather than the session-wide one.
    """
    collector = TelemetryCollector(source="repro.benchmarks")
    previous = install(collector)
    try:
        yield collector
    finally:
        install(previous)


@pytest.fixture(scope="session")
def scaled_circuit():
    """The default benchmark circuit (scaled s298)."""
    return compiled_circuit_for("s298", SCALE)


def circuit(name: str):
    return compiled_circuit_for(name, SCALE)


def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0
