"""Service warm-state benchmark: cold vs warm request latency.

The job service exists to amortize cold-start work — synthesize/parse,
levelize, compile, kernel build, fault-list construction — across
requests (docs/SERVICE.md).  This bench measures that amortization
end-to-end through a real localhost socket: the first ``fsim`` request
against full-size s298 pays the whole cold path, repeat requests lease
the resident simulator.  The headline ``{cold, warm, speedup}`` numbers
are written to ``BENCH_SERVICE.json`` at the repo root (the committed
snapshot docs/PERFORMANCE.md quotes) and into the ``REPRO_BENCH_JSON``
record stream.

Acceptance: the warm request is at least 2x faster than the cold one.
"""

import asyncio
import json
import os
import random
import threading
import time

import pytest

from repro.service import JobManager, ServiceClient, ServiceServer
from repro.telemetry import TelemetryCollector

from conftest import record_bench


def _vectors(num_inputs, count, seed=0):
    rng = random.Random(seed)
    return [[rng.randint(0, 1) for _ in range(num_inputs)] for _ in range(count)]


@pytest.mark.benchmark(group="service")
def bench_service_warm_vs_cold(benchmark, tmp_path):
    """ISSUE acceptance: a warm repeat request is >=2x faster than the
    cold first request for the same circuit, because the compiled
    circuit, kernel, and fault simulator are resident.

    Submits a 24-vector fsim job against full-size s298 through the
    HTTP API.  The cold request synthesizes, compiles, and builds the
    kernel and fault list; warm requests (best of 5) only run the
    wide-word evaluation pass.  The healthz counters double-check that
    the warm requests were real cache hits and built no new kernels.
    """
    collector = TelemetryCollector(source="repro.service")
    manager = JobManager(tmp_path / "state", collector=collector, workers=1)
    server = ServiceServer(manager, port=0)
    ready = threading.Event()

    def run_server():
        async def go():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(go())

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to bind"
    client = ServiceClient(port=server.port)

    from repro.circuit.profiles import ISCAS89_PROFILES

    num_inputs = ISCAS89_PROFILES["s298"].n_pi
    frames = 24

    def request(seed):
        payload = {
            "kind": "fsim",
            "circuit": "s298",
            "scale": 1.0,
            "seed": 0,
            "vectors": _vectors(num_inputs, frames, seed=seed),
        }
        t0 = time.perf_counter()
        job = client.submit(payload)
        done = client.wait(job["id"], timeout=600, poll=0.005)
        elapsed = time.perf_counter() - t0
        assert done["status"] == "done", done["error"]
        return elapsed, done["result"]

    try:
        cold, cold_result = request(seed=100)
        kernels_cold = client.healthz()["counters"].get("codegen.kernels.built", 0)

        warm = float("inf")
        for i in range(5):
            elapsed, warm_result = request(seed=101 + i)
            warm = min(warm, elapsed)
        health = client.healthz()
        assert health["counters"]["service.cache.hits"] >= 5
        assert (
            health["counters"].get("codegen.kernels.built", 0) == kernels_cold
        ), "warm requests rebuilt a kernel"
        assert cold_result["total_faults"] == warm_result["total_faults"]
        benchmark(lambda: request(seed=200)[0])
    finally:
        client.shutdown()
        thread.join(timeout=30)

    speedup = cold / warm
    params = {"circuit": "s298", "scale": 1.0, "frames": frames}
    record = record_bench("service_warm_vs_cold", params, warm, speedup)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_SERVICE.json"), "w",
              encoding="utf-8") as fh:
        json.dump(
            {**record,
             "cold_seconds": cold,
             "warm_seconds": warm,
             "total_faults": cold_result["total_faults"]},
            fh, indent=2,
        )
        fh.write("\n")
    print(
        f"\n[service] s298 fsim request: cold {cold:.3f}s, "
        f"warm {warm:.3f}s ({speedup:.1f}x)"
    )
    assert speedup >= 2.0, (
        f"expected warm >=2x faster than cold, measured {speedup:.2f}x"
    )
