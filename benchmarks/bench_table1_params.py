"""Table 1: GA parameter schedule.

Benchmarks one vector-generation GA run under the Table 1 schedule and
checks that the schedule the generator actually uses matches the paper's
published values (the table itself is a parameter listing, so the
"reproduction" is verifying the encoded schedule plus the cost of one
schedule-driven GA run).
"""

import random

import pytest

from repro.core import TestGenConfig, ga_params_for_vector_length
from repro.core.fitness import Phase
from repro.core.generator import GaTestGenerator

from conftest import SCALE, circuit


def test_schedule_matches_paper():
    assert ga_params_for_vector_length(3).population_size == 8
    assert ga_params_for_vector_length(3).mutation_rate == 1 / 8
    assert ga_params_for_vector_length(10).population_size == 16
    assert ga_params_for_vector_length(10).mutation_rate == 1 / 16
    assert ga_params_for_vector_length(35).population_size == 16
    assert ga_params_for_vector_length(35).mutation_rate == 1 / 35


def test_generator_uses_schedule():
    compiled = circuit("s298")  # 3 PIs -> population 8, mutation 1/8
    generator = GaTestGenerator(compiled, TestGenConfig(seed=1))
    schedule = generator.config.vector_ga_schedule(compiled.num_pis)
    assert schedule.population_size == 8
    assert schedule.mutation_rate == 1 / 8


@pytest.mark.benchmark(group="table1")
def bench_vector_ga_run(benchmark):
    """Cost of one phase-2 vector GA run under the Table 1 schedule."""
    compiled = circuit("s298")

    def one_ga_run():
        generator = GaTestGenerator(compiled, TestGenConfig(seed=1))
        generator.fsim.commit([[0] * compiled.num_pis] * 4)  # warm state
        return generator._evolve_vector(Phase.DETECTION)

    vector = benchmark.pedantic(one_ga_run, rounds=3, iterations=1)
    assert len(vector) == compiled.num_pis

