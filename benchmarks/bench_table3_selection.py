"""Table 3: selection-scheme and crossover-operator comparison.

Paper shapes checked:

* both binary-tournament schemes outperform the proportionate schemes
  (roulette wheel, stochastic universal) on average;
* uniform crossover is at least competitive with 1-point/2-point.

Selection effects are noisy at benchmark scale, so the assertions
compare scheme *means* pooled over circuits, seeds and crossovers —
exactly how the paper summarizes its own table.
"""

import pytest

from repro.core import TestGenConfig
from repro.harness.runner import run_matrix

from conftest import SCALE, SEEDS, STUDY_CIRCUITS, mean

SELECTIONS = ["roulette", "sus", "tournament", "tournament-r"]
CROSSOVERS = ["1-point", "2-point", "uniform"]


@pytest.mark.benchmark(group="table3")
def bench_selection_crossover_grid(benchmark):
    configs = {
        f"{sel}/{xo}": TestGenConfig(selection=sel, crossover=xo)
        for sel in SELECTIONS for xo in CROSSOVERS
    }

    def run():
        return run_matrix(STUDY_CIRCUITS, configs, SEEDS, scale=SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def norm_cells(predicate):
        cells = []
        for name in STUDY_CIRCUITS:
            best = max(results[name][k].det_mean for k in configs)
            if best <= 0:
                continue
            for key in configs:
                if predicate(key):
                    cells.append(results[name][key].det_mean / best)
        return mean(cells)

    scheme_means = {
        sel: norm_cells(lambda k, sel=sel: k.startswith(f"{sel}/"))
        for sel in SELECTIONS
    }
    xo_means = {
        xo: norm_cells(lambda k, xo=xo: k.endswith(f"/{xo}"))
        for xo in CROSSOVERS
    }
    print(f"\ntable3 scheme means: { {k: round(v, 4) for k, v in scheme_means.items()} }")
    print(f"table3 crossover means: { {k: round(v, 4) for k, v in xo_means.items()} }")

    tournament_mean = mean([scheme_means["tournament"], scheme_means["tournament-r"]])
    proportionate_mean = mean([scheme_means["roulette"], scheme_means["sus"]])
    # Tolerance: scaled runs are noisy; the paper's own gaps are ~1%.
    assert tournament_mean >= proportionate_mean - 0.01, (
        f"tournament {tournament_mean:.4f} vs proportionate {proportionate_mean:.4f}"
    )
    assert xo_means["uniform"] >= min(xo_means.values()), xo_means
