"""Table 2: GATEST vs the deterministic fault-oriented baseline.

Paper shapes checked:

* the GA reaches fault coverage comparable to the deterministic engine
  (within a tolerance band) on circuits both can handle;
* GA run time is far below the deterministic engine's on sequential
  circuits (the paper's headline speedup claim);
* the GA beats undirected random generation at an equal vector budget.
"""

import random

import pytest

from repro.baselines import DeterministicAtpg
from repro.core import TestGenConfig
from repro.faults import FaultSimulator
from repro.harness.runner import run_gatest

from conftest import SCALE, SEEDS, circuit


@pytest.mark.benchmark(group="table2")
def bench_gatest_main_config(benchmark):
    """The paper's main configuration on the scaled suite."""
    def run():
        return {
            name: run_gatest(name, TestGenConfig(), SEEDS, scale=SCALE)
            for name in ["s298", "s386"]
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, agg in results.items():
        assert agg.coverage_mean > 0.55, name
        print(f"\ntable2 GA {name}: det {agg.det_mean:.1f}/{agg.total_faults} "
              f"vec {agg.vec_mean:.0f} time {agg.time_mean:.1f}s")


@pytest.mark.benchmark(group="table2")
def bench_deterministic_baseline(benchmark):
    compiled = circuit("s298")

    def run():
        return DeterministicAtpg(compiled, backtrack_limit=150).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.detected > 0
    print(f"\ntable2 deterministic s298: det {result.detected}/{result.total_faults} "
          f"vec {result.vectors} unt {result.untestable} ab {result.aborted} "
          f"time {result.elapsed_seconds:.1f}s")


def test_ga_faster_than_deterministic_at_similar_coverage():
    """The paper's headline: GATEST reaches its coverage in a small
    fraction of the deterministic engine's run time."""
    compiled = circuit("s298")
    agg = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)
    det = DeterministicAtpg(compiled, backtrack_limit=150).run()
    ga_time = agg.time_mean
    # The deterministic engine proves untestability, which the GA cannot;
    # compare times only (the paper does the same, noting HITEC's extra
    # capability).
    assert ga_time < det.elapsed_seconds, (
        f"GA {ga_time:.1f}s vs deterministic {det.elapsed_seconds:.1f}s"
    )


def test_ga_beats_random_at_equal_vector_budget():
    compiled = circuit("s298")
    agg = run_gatest("s298", TestGenConfig(), SEEDS[:1], scale=SCALE)
    budget = round(agg.vec_mean)
    rng = random.Random(0)
    fsim = FaultSimulator(compiled)
    fsim.commit([
        [rng.randint(0, 1) for _ in range(compiled.num_pis)]
        for _ in range(budget)
    ])
    assert agg.det_mean >= fsim.detected_count, (
        f"GA {agg.det_mean} vs random {fsim.detected_count} at {budget} vectors"
    )
