"""Table 4: mutation-rate sweep for sequence generation.

Paper shape checked: the mutation rate has a much smaller effect on
fault coverage than the selection/crossover choice — the spread across
rates 1/16..1/256 stays within a small band.
"""

import pytest

from repro.core import TestGenConfig
from repro.harness.runner import run_matrix

from conftest import SCALE, SEEDS, STUDY_CIRCUITS, mean

RATES = {"1/16": 1 / 16, "1/32": 1 / 32, "1/64": 1 / 64,
         "1/128": 1 / 128, "1/256": 1 / 256}


@pytest.mark.benchmark(group="table4")
def bench_mutation_rate_sweep(benchmark):
    configs = {
        label: TestGenConfig(seq_mutation_rate=rate)
        for label, rate in RATES.items()
    }

    def run():
        return run_matrix(STUDY_CIRCUITS, configs, SEEDS, scale=SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in STUDY_CIRCUITS:
        dets = {label: results[name][label].det_mean for label in RATES}
        total = results[name][next(iter(RATES))].total_faults
        spread = (max(dets.values()) - min(dets.values())) / total
        print(f"\ntable4 {name}: {dets} spread={100 * spread:.2f}% of faults")
        # Paper: mutation-rate differences are small (most circuits show
        # well under a few percent of the fault list).
        assert spread <= 0.08, f"{name}: mutation spread {spread:.3f} too large"
