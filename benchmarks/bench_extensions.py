"""Benches for the reproduction extensions (DESIGN.md §5, paper §VI):

* static test-set compaction — cost and achieved reduction;
* transition-fault GATEST — the "other fault models" claim;
* island-model GA — the "parallel implementations" claim (algorithmic
  equivalence at matched budget).
"""

import pytest

from repro.core import GaTestGenerator, HybridAtpg, TestGenConfig, compact_test_set
from repro.faults import FaultSimulator

from conftest import SCALE, circuit


@pytest.mark.benchmark(group="extensions")
def bench_compaction(benchmark):
    compiled = circuit("s298")
    result = GaTestGenerator(compiled, TestGenConfig(seed=1)).run()

    def run():
        return compact_test_set(compiled, result.test_sequence)

    compaction = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncompaction: {compaction.original_vectors} -> "
          f"{compaction.compacted_vectors} vectors "
          f"({100 * compaction.reduction:.0f}% smaller, "
          f"{compaction.trials} resimulations)")
    # Coverage must be preserved and the compacted set must replay.
    fsim = FaultSimulator(compiled)
    fsim.commit(compaction.test_sequence)
    assert fsim.detected_count >= result.detected
    assert compaction.compacted_vectors <= result.vectors


@pytest.mark.benchmark(group="extensions")
def bench_transition_fault_gatest(benchmark):
    compiled = circuit("s298")

    def run():
        return GaTestGenerator(
            compiled, TestGenConfig(seed=1, fault_model="transition")
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntransition-fault GATEST: {result.summary()}")
    # The framework must achieve meaningful transition coverage with the
    # unmodified phase fitness functions (the paper's §VI claim).
    assert result.fault_coverage > 0.4


@pytest.mark.benchmark(group="extensions")
def bench_hybrid_flow(benchmark):
    """§V's GA-then-deterministic flow: coverage never below GA alone,
    fault efficiency strictly above it when untestable faults exist."""
    compiled = circuit("s298")

    def run():
        return HybridAtpg(
            compiled, TestGenConfig(seed=1), backtrack_limit=100
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhybrid: {result.summary()}")
    assert result.detected >= result.ga_detected
    assert result.fault_efficiency >= result.fault_coverage


@pytest.mark.benchmark(group="extensions")
def bench_island_gatest(benchmark):
    compiled = circuit("s298")

    def run():
        plain = GaTestGenerator(compiled, TestGenConfig(seed=1)).run()
        islands = GaTestGenerator(
            compiled, TestGenConfig(seed=1, n_islands=4)
        ).run()
        return plain, islands

    plain, islands = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nplain: {plain.summary()}\nislands: {islands.summary()}")
    # At a matched budget the island model must stay competitive: the
    # point of the decomposition is parallelizability, not quality loss.
    assert islands.detected >= plain.detected - 0.08 * plain.total_faults
