"""Figure 1: the overall GA-based test-generation flow.

Runs a full GATEST pass and asserts the Figure-1 structure: a stage of
individual test vectors first, then test-sequence GA attempts at the
scheduled lengths (shortest first), terminating when every length's
failure budget is exhausted.
"""

import pytest

from repro.core import GaTestGenerator, TestGenConfig

from conftest import circuit


@pytest.mark.benchmark(group="fig1")
def bench_full_flow(benchmark):
    compiled = circuit("s298")

    def run():
        return GaTestGenerator(compiled, TestGenConfig(seed=1)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    kinds = [event.kind for event in result.trace]
    # Stage 1 (vectors) strictly precedes stage 2 (sequences).
    first_sequence = kinds.index("sequence") if "sequence" in kinds else len(kinds)
    assert all(k == "vector" for k in kinds[:first_sequence])
    assert all(k == "sequence" for k in kinds[first_sequence:])

    # Sequence lengths are tried shortest-first per the schedule.
    lengths = [e.frames for e in result.trace if e.kind == "sequence"]
    depth = compiled.circuit.sequential_depth()
    expected = list(TestGenConfig().sequence_lengths(depth))
    seen_order = list(dict.fromkeys(lengths))
    assert seen_order == [l for l in expected if l in seen_order]

    # Each length's run ends with seq_fail_limit consecutive failures
    # (unless the fault list empties first).
    config = TestGenConfig()
    if result.detected < result.total_faults and lengths:
        tail = [e for e in result.trace if e.kind == "sequence"][-config.seq_fail_limit:]
        assert all(not e.committed for e in tail)

    # The flow produced a usable test set.
    assert result.fault_coverage > 0.5
    print(f"\nfig1: {result.summary()}")
