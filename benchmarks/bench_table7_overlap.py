"""Table 7: overlapping populations / generation gap.

Paper shapes checked:

* overlapping populations (the paper runs them at ~81% of the
  nonoverlapping evaluation budget) run faster: speedup > 1;
* the coverage cost at generation gap 3/4 is small (paper: 0.4% average
  drop, 1.3x average speedup).
"""

import pytest

from repro.core import TestGenConfig
from repro.harness.experiments import OVERLAP_SETTINGS
from repro.harness.runner import run_matrix

from conftest import SCALE, SEEDS, STUDY_CIRCUITS, mean


@pytest.mark.benchmark(group="table7")
def bench_overlapping_populations(benchmark):
    configs = {"nonoverlap": TestGenConfig()}
    for label, (pop_scale, gap, generations) in OVERLAP_SETTINGS.items():
        configs[label] = TestGenConfig(
            population_scale=pop_scale, generation_gap=gap, generations=generations
        )

    def run():
        return run_matrix(STUDY_CIRCUITS, configs, SEEDS, scale=SCALE)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def evals_per_ga_run(agg):
        runs = mean(r.ga_runs for r in agg.runs)
        evals = mean(r.ga_evaluations for r in agg.runs)
        return evals / runs if runs else 0.0

    drops = []
    eval_ratios = []
    for name in STUDY_CIRCUITS:
        base = results[name]["nonoverlap"]
        agg = results[name]["3/4"]
        speedup = base.time_mean / agg.time_mean if agg.time_mean else 0.0
        drop = (base.det_mean - agg.det_mean) / base.total_faults
        ratio = evals_per_ga_run(agg) / evals_per_ga_run(base)
        drops.append(drop)
        eval_ratios.append(ratio)
        print(f"\ntable7 {name}: nonoverlap det {base.det_mean:.1f} "
              f"({base.time_mean:.2f}s); gap 3/4 det {agg.det_mean:.1f} "
              f"wall speedup {speedup:.2f} drop {100 * drop:.2f}% "
              f"eval ratio {ratio:.2f}")
        for label in OVERLAP_SETTINGS:
            cell = results[name][label]
            print(f"  gap {label}: det {cell.det_mean:.1f} vec {cell.vec_mean:.0f} "
                  f"time {cell.time_mean:.2f}s")
    # The paper's protocol: overlapping configurations run ~81% of the
    # nonoverlapping evaluation budget.  That ratio is deterministic
    # (wall-clock speedup is the noisy consequence, printed above).
    assert 0.6 <= mean(eval_ratios) <= 1.0, f"eval ratios {eval_ratios}"
    # And the coverage cost of gap 3/4 is small (paper: 0.4% average).
    assert mean(drops) <= 0.06, f"coverage drops {drops}"
