"""Figure 2: the phase state machine of individual-vector generation.

Runs the vector stage and asserts the Figure-2 invariants on the
transition log: start in initialization, leave it exactly once, then
alternate detection/activity until the progress limit fires.
"""

import pytest

from repro.core import GaTestGenerator, Phase, TestGenConfig
from repro.core.phases import PhaseTracker

from conftest import circuit


@pytest.mark.benchmark(group="fig2")
def bench_vector_stage_phases(benchmark):
    compiled = circuit("s298")

    def run_vector_stage():
        generator = GaTestGenerator(compiled, TestGenConfig(seed=2))
        tracker = PhaseTracker(
            progress_limit=generator.config.progress_limit(
                compiled.circuit.sequential_depth()
            )
        )
        generator._generate_vectors(tracker)
        return generator, tracker

    generator, tracker = benchmark.pedantic(run_vector_stage, rounds=1, iterations=1)
    phases = [p for _, p in tracker.transitions]

    assert phases[0] is Phase.INITIALIZATION
    assert phases.count(Phase.INITIALIZATION) == 1
    # After leaving phase 1, only detection/activity alternate.
    for a, b in zip(phases[1:], phases[2:]):
        assert {a, b} <= {Phase.DETECTION, Phase.ACTIVITY}
        assert a is not b  # transitions are real changes

    # The stage ended because the progress limit fired (or faults ran out).
    if generator.fsim.active:
        assert tracker.vectors_exhausted
        assert tracker.noncontributing >= tracker.progress_limit

    print(f"\nfig2 transitions: {[(i, p.name) for i, p in tracker.transitions]}")
