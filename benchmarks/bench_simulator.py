"""Micro-benchmarks of the simulation substrate.

These track the throughput of the hot paths (DESIGN.md §6): good-machine
pattern-parallel simulation, fault-group simulation, batch candidate
evaluation, and the deterministic engine's PODEM search.
"""

import random

import pytest

from repro.baselines import Podem, unroll
from repro.faults import FaultSimulator, collapsed_fault_list
from repro.sim import PatternSimulator

from conftest import SCALE, circuit


def _vectors(compiled, count, seed=0):
    rng = random.Random(seed)
    return [
        [rng.randint(0, 1) for _ in range(compiled.num_pis)]
        for _ in range(count)
    ]


@pytest.mark.benchmark(group="simulator")
def bench_pattern_parallel_good(benchmark):
    """32-slot good-machine simulation, 16 frames."""
    compiled = circuit("s298")
    sequences = [_vectors(compiled, 16, seed=s) for s in range(32)]

    def run():
        sim = PatternSimulator(compiled, n_slots=32)
        sim.begin(None)
        for frame in range(16):
            sim.step([sequences[s][frame] for s in range(32)],
                     count_events=False)
        return sim

    benchmark(run)


@pytest.mark.benchmark(group="simulator")
def bench_fault_commit(benchmark):
    """Committing 32 vectors against the full fault list."""
    compiled = circuit("s298")
    vectors = _vectors(compiled, 32, seed=1)

    def run():
        sim = FaultSimulator(compiled)
        sim.commit(vectors)
        return sim.detected_count

    detected = benchmark(run)
    assert detected > 0


@pytest.mark.benchmark(group="simulator")
def bench_candidate_evaluation_batch(benchmark):
    """One GA population (32 single-vector candidates) scored at once."""
    compiled = circuit("s298")
    sim = FaultSimulator(compiled)
    sim.commit(_vectors(compiled, 8, seed=2))
    candidates = [[v] for v in _vectors(compiled, 32, seed=3)]

    def run():
        return sim.evaluate_batch(candidates)

    results = benchmark(run)
    assert len(results) == 32


@pytest.mark.benchmark(group="simulator")
def bench_candidate_evaluation_serial(benchmark):
    """The same population scored one candidate at a time (the
    pre-batching path, kept as the semantic reference)."""
    compiled = circuit("s298")
    sim = FaultSimulator(compiled)
    sim.commit(_vectors(compiled, 8, seed=2))
    candidates = [[v] for v in _vectors(compiled, 32, seed=3)]

    def run():
        return [sim.evaluate(c) for c in candidates]

    results = benchmark(run)
    assert len(results) == 32


@pytest.mark.benchmark(group="simulator")
def bench_podem_search(benchmark):
    """PODEM on a 4-frame unrolling, one mid-list fault."""
    compiled = circuit("s298")
    unrolled = unroll(compiled.circuit, 4)
    faults = collapsed_fault_list(compiled.circuit)
    fault = faults[len(faults) // 2]
    assignable = [pi for frame in unrolled.frame_pis for pi in frame]

    def run():
        return Podem(
            unrolled.circuit, unrolled.fault_copies(fault),
            assignable, unrolled.observables, backtrack_limit=100,
        ).run()

    result = benchmark(run)
    assert result.status is not None
