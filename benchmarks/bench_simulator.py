"""Micro-benchmarks of the simulation substrate.

These track the throughput of the hot paths (DESIGN.md §6): good-machine
pattern-parallel simulation, fault-group simulation, batch candidate
evaluation, the four-backend kernel comparison — interp vs codegen vs
the vectorized numpy kernel vs the compiled C kernel (docs/KERNELS.md),
written to ``BENCH_SIMULATOR.json`` at the repo root — fault-sharded +
cached parallel evaluation, and the deterministic engine's PODEM search.
"""

import json
import os
import random
import time

import pytest

from repro.baselines import Podem, unroll
from repro.faults import FaultSimulator, collapsed_fault_list
from repro.harness.runner import compiled_circuit_for
from repro.sim import PatternSimulator

from conftest import SCALE, circuit, record_bench


def _vectors(compiled, count, seed=0):
    rng = random.Random(seed)
    return [
        [rng.randint(0, 1) for _ in range(compiled.num_pis)]
        for _ in range(count)
    ]


@pytest.mark.benchmark(group="simulator")
def bench_pattern_parallel_good(benchmark):
    """32-slot good-machine simulation, 16 frames."""
    compiled = circuit("s298")
    sequences = [_vectors(compiled, 16, seed=s) for s in range(32)]

    def run():
        sim = PatternSimulator(compiled, n_slots=32)
        sim.begin(None)
        for frame in range(16):
            sim.step([sequences[s][frame] for s in range(32)],
                     count_events=False)
        return sim

    benchmark(run)


@pytest.mark.benchmark(group="simulator")
def bench_fault_commit(benchmark):
    """Committing 32 vectors against the full fault list."""
    compiled = circuit("s298")
    vectors = _vectors(compiled, 32, seed=1)

    def run():
        sim = FaultSimulator(compiled)
        sim.commit(vectors)
        return sim.detected_count

    detected = benchmark(run)
    assert detected > 0


@pytest.mark.benchmark(group="simulator")
def bench_candidate_evaluation_batch(benchmark):
    """One GA population (32 single-vector candidates) scored at once."""
    compiled = circuit("s298")
    sim = FaultSimulator(compiled)
    sim.commit(_vectors(compiled, 8, seed=2))
    candidates = [[v] for v in _vectors(compiled, 32, seed=3)]

    def run():
        return sim.evaluate_batch(candidates)

    results = benchmark(run)
    assert len(results) == 32


@pytest.mark.benchmark(group="simulator")
def bench_candidate_evaluation_serial(benchmark):
    """The same population scored one candidate at a time (the
    pre-batching path, kept as the semantic reference)."""
    compiled = circuit("s298")
    sim = FaultSimulator(compiled)
    sim.commit(_vectors(compiled, 8, seed=2))
    candidates = [[v] for v in _vectors(compiled, 32, seed=3)]

    def run():
        return [sim.evaluate(c) for c in candidates]

    results = benchmark(run)
    assert len(results) == 32


def _ga_candidate_stream(compiled, n_unique=24, n_evals=40, frames=4, seed=5):
    """A GA-realistic candidate stream with ~40% duplicate evaluations.

    40% is the duplicate-lookup rate *measured* on full GATEST runs in
    this repo (s298 at scale 1.0, ``parallel.cache`` counters: 38.6% of
    13 379 lookups were repeats; 40.6% at scale 0.25) — selection
    re-submits survivors and crossover of near-converged parents
    reproduces chromosomes bit-for-bit.  The stream contains ``n_unique``
    *distinct* ``frames``-vector candidates (distinct by construction:
    sampled without replacement from the candidate bit-space) plus
    ``n_evals - n_unique`` resampled repeats, shuffled.
    """
    bits = frames * compiled.num_pis
    rng = random.Random(seed)

    def expand(code):
        return [
            [(code >> (f * compiled.num_pis + j)) & 1
             for j in range(compiled.num_pis)]
            for f in range(frames)
        ]

    pool = [expand(code) for code in rng.sample(range(1 << bits), n_unique)]
    stream = list(pool) + [rng.choice(pool) for _ in range(n_evals - n_unique)]
    rng.shuffle(stream)
    return stream


@pytest.mark.benchmark(group="simulator")
def bench_kernel_backends_vs_interp(benchmark):
    """ISSUE acceptance: the compiled backends beat the per-gate
    interpreter on the serial evaluate path of a full-size ISCAS
    circuit — codegen by ≥2x, the vectorized numpy kernel by ≥4.5x and
    the compiled C kernel by ≥8x (and ≥1.3x over numpy) — with
    bit-identical ``CandidateEval`` results across all four kernels and
    ``eval_jobs`` 1/2/4.

    Measures a 20-candidate, 6-frame evaluation stream (a GA
    generation's worth of multi-frame phase-2 candidates) on full-size
    s298 after an 8-vector warm commit, best-of-7 per kernel.  The
    headline comparison is written to ``BENCH_SIMULATOR.json`` at the
    repo root and into the ``REPRO_BENCH_JSON`` record stream.

    Skipped (never silently passed) when numpy is unusable or no C
    compiler is on the PATH — the no-numpy and no-cc CI jobs prove the
    interpreter fallbacks separately.
    """
    from repro.sim import ckernel, npkernel

    if not npkernel.available():
        pytest.skip("numpy >= 2.0 unavailable; fallback covered elsewhere")
    if not ckernel.available():
        pytest.skip("no C compiler on PATH; fallback covered elsewhere")

    kernels = ("interp", "codegen", "numpy", "c")
    compiled = compiled_circuit_for("s298", max(SCALE, 1.0))
    warm = _vectors(compiled, 8, seed=2)
    frames = 6
    rng = random.Random(11)
    stream = [
        [[rng.randint(0, 1) for _ in range(compiled.num_pis)]
         for _ in range(frames)]
        for _ in range(20)
    ]

    sims = {}
    for kernel in kernels:
        sim = FaultSimulator(compiled, kernel=kernel)
        assert sim.kernel_name == kernel
        sim.commit(warm)
        sims[kernel] = sim
    assert len(sims["codegen"].active) >= 200

    def a_pass(sim):
        return [sim.evaluate(c) for c in stream]

    expected = a_pass(sims["interp"])
    for kernel in kernels[1:]:
        assert a_pass(sims[kernel]) == expected, f"{kernel} disagrees"

    # Bit-identity across the sharded pool too: the workers rebuild the
    # same kernel, so every eval_jobs level reproduces the serial pass.
    for kernel in kernels:
        for jobs in (2, 4):
            sharded = FaultSimulator(
                compiled, kernel=kernel, eval_jobs=jobs, eval_cache=False
            )
            sharded._parallel.force_shard = True
            sharded.commit(warm)
            assert sharded.evaluate(stream[0]) == expected[0], (
                f"{kernel} eval_jobs={jobs} diverged from serial"
            )
            sharded.close()

    # Interleave the timing rounds (kernel-major inside each round) so
    # drifting background load biases every kernel's best equally.
    times = {k: float("inf") for k in kernels}
    for _ in range(7):
        for k in kernels:
            t0 = time.perf_counter()
            a_pass(sims[k])
            times[k] = min(times[k], time.perf_counter() - t0)
    results = benchmark(lambda: a_pass(sims["c"]))
    assert results == expected
    speedups = {k: times["interp"] / times[k] for k in kernels[1:]}
    params = {
        "circuit": "s298",
        "scale": max(SCALE, 1.0),
        "frames": frames,
        "candidates": len(stream),
        "active_faults": len(sims["codegen"].active),
    }
    record = record_bench(
        "kernel_backends_vs_interp", params, times["c"],
        speedups["c"]
    )
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "BENCH_SIMULATOR.json"), "w",
              encoding="utf-8") as fh:
        json.dump(
            {**record,
             "interp_seconds": times["interp"],
             "codegen_seconds": times["codegen"],
             "numpy_seconds": times["numpy"],
             "c_seconds": times["c"],
             "codegen_speedup": speedups["codegen"],
             "numpy_speedup": speedups["numpy"],
             "c_speedup": speedups["c"],
             "c_vs_numpy": times["numpy"] / times["c"]},
            fh, indent=2,
        )
        fh.write("\n")
    print(
        f"\n[kernel] s298 serial evaluate ({frames} frames x "
        f"{len(stream)} candidates): interp {times['interp']:.3f}s, "
        f"codegen {times['codegen']:.3f}s "
        f"({speedups['codegen']:.2f}x), numpy {times['numpy']:.3f}s "
        f"({speedups['numpy']:.2f}x), c {times['c']:.3f}s "
        f"({speedups['c']:.2f}x, {times['numpy'] / times['c']:.2f}x "
        f"over numpy)"
    )
    assert speedups["codegen"] >= 2.0, (
        f"expected codegen >=2x, measured {speedups['codegen']:.2f}x")
    # Measured 4.9-5.2x depending on host; the original 5.0 floor sat
    # inside that spread and flaked, so the bar holds the honest margin.
    assert speedups["numpy"] >= 4.5, (
        f"expected numpy >=4.5x, measured {speedups['numpy']:.2f}x")
    assert speedups["c"] >= 8.0, (
        f"expected c >=8x, measured {speedups['c']:.2f}x")
    assert times["numpy"] / times["c"] >= 1.3, (
        f"expected c >=1.3x over numpy, measured "
        f"{times['numpy'] / times['c']:.2f}x")


@pytest.mark.benchmark(group="parallel")
def bench_candidate_evaluation_sharded(benchmark):
    """Pure fault-sharding (cache off, fan-out forced) on full-size s298.

    Tracks the pool path's overhead/benefit against the serial pass;
    equality of every observable is asserted.  ``force_shard`` bypasses
    the usable-CPU heuristic so the pool is really crossed: on a
    single-core host this measures pure fan-out overhead (the shards
    serialize), multicore hosts see the speedup.
    """
    compiled = compiled_circuit_for("s298", max(SCALE, 1.0))
    warm = _vectors(compiled, 8, seed=2)
    serial = FaultSimulator(compiled)
    serial.commit(warm)
    sharded = FaultSimulator(compiled, eval_jobs=4, eval_cache=False)
    sharded._parallel.force_shard = True
    sharded.commit(warm)
    candidate = _vectors(compiled, 2, seed=9)
    expected = serial.evaluate(candidate)

    def run():
        return sharded.evaluate(candidate)

    result = benchmark(run)
    sharded.close()
    assert result == expected


@pytest.mark.benchmark(group="parallel")
def bench_candidate_evaluation_parallel_cached(benchmark):
    """ISSUE acceptance: ≥1.8x candidate-evaluation speedup at
    ``--eval-jobs 4`` on a circuit with ≥200 active faults.

    Measures a GA-realistic evaluation stream (40% duplicates — the
    rate measured on real runs, see ``_ga_candidate_stream``) through
    the ``eval_jobs=4`` evaluator versus the plain serial simulator.
    The cache is cleared before every measured pass, so each pass pays
    its own cold misses — the speedup is the steady-state
    per-population gain, not an artifact of reusing a warm cache.  The
    evaluator is left in its default adaptive mode: on multicore hosts
    misses fan out across the pool, on single-core hosts they take the
    one-candidate wide pass; both beat the serial grouped loop, so the
    bar holds either way.
    """
    compiled = compiled_circuit_for("s298", max(SCALE, 1.0))
    warm = _vectors(compiled, 8, seed=2)
    serial = FaultSimulator(compiled)
    serial.commit(warm)
    assert len(serial.active) >= 200, "acceptance requires >=200 active faults"
    parallel = FaultSimulator(compiled, eval_jobs=4)
    parallel.commit(warm)
    stream = _ga_candidate_stream(compiled)
    assert (
        len({tuple(map(tuple, c)) for c in stream}) == 24
    ), "stream must hold exactly the designed 40% duplicate rate"

    def serial_pass():
        return [serial.evaluate(c) for c in stream]

    def parallel_pass():
        parallel._parallel.cache.clear()
        return [parallel.evaluate(c) for c in stream]

    expected = serial_pass()
    assert parallel_pass() == expected  # bit-identical, and warms the pool

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_serial = best_of(serial_pass)
    results = benchmark(parallel_pass)
    t_parallel = best_of(parallel_pass)
    parallel.close()
    speedup = t_serial / t_parallel
    print(
        f"\n[parallel] eval-jobs 4: {len(stream)} evaluations, "
        f"{len(serial.active)} active faults: serial {t_serial:.3f}s, "
        f"parallel+cache {t_parallel:.3f}s -> {speedup:.2f}x"
    )
    assert results == expected
    assert speedup >= 1.8, f"expected >=1.8x, measured {speedup:.2f}x"


@pytest.mark.benchmark(group="simulator")
def bench_podem_search(benchmark):
    """PODEM on a 4-frame unrolling, one mid-list fault."""
    compiled = circuit("s298")
    unrolled = unroll(compiled.circuit, 4)
    faults = collapsed_fault_list(compiled.circuit)
    fault = faults[len(faults) // 2]
    assignable = [pi for frame in unrolled.frame_pis for pi in frame]

    def run():
        return Podem(
            unrolled.circuit, unrolled.fault_copies(fault),
            assignable, unrolled.observables, backtrack_limit=100,
        ).run()

    result = benchmark(run)
    assert result.status is not None
