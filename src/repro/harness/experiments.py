"""Regeneration drivers for every table and figure in the paper.

Each ``table_N`` function runs the corresponding experiment on the
synthetic benchmark suite and returns (measured table, paper table,
shape notes).  The command-line entry point prints them side by side::

    python -m repro.harness.experiments --table 3 --scale 0.3 --seeds 3

``--scale 1 --seeds 10`` reproduces the paper's full protocol (very
long in pure Python — the paper itself reports 105 hours for s35932 on
its fastest configuration); the default scale keeps every table in the
minutes range while preserving each experiment's structure.

Long campaigns are made restartable with ``--journal J.jsonl``: every
(circuit, config, seed) cell is journaled crash-safely as it completes,
and ``--resume`` replays completed cells bit-identically instead of
re-running them — the resumed output is byte-identical to an
uninterrupted run's (docs/ROBUSTNESS.md).  ``--jobs N`` fans seeds out
over fault-isolated worker processes; ``--trace`` / ``--metrics``
record the whole campaign's telemetry, worker traces included.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..baselines.deterministic import DeterministicAtpg
from ..circuit.profiles import (
    TABLE2_CIRCUITS,
    TABLE3_CIRCUITS,
    TABLE4_CIRCUITS,
    TABLE5_CIRCUITS,
    TABLE6_CIRCUITS,
    TABLE7_CIRCUITS,
)
from ..core.config import TestGenConfig, ga_params_for_vector_length
from ..core.generator import GaTestGenerator
from . import paper_data
from .runner import AggregateResult, compiled_circuit_for, run_gatest, run_matrix
from .tables import TextTable, fmt_mean_std, fmt_time

#: Circuits small enough for quick default runs, per table.
QUICK_CIRCUITS = {
    2: ["s298", "s344", "s386", "s526"],
    3: ["s298", "s386", "s526"],
    4: ["s298", "s386", "s526"],
    5: ["s298", "s386", "s526"],
    6: ["s298", "s386", "s526"],
    7: ["s298", "s386", "s526"],
}

FULL_CIRCUITS = {
    2: TABLE2_CIRCUITS,
    3: TABLE3_CIRCUITS,
    4: TABLE4_CIRCUITS,
    5: TABLE5_CIRCUITS,
    6: TABLE6_CIRCUITS,
    7: TABLE7_CIRCUITS,
}

SELECTIONS = ["roulette", "sus", "tournament", "tournament-r"]
CROSSOVERS = ["1-point", "2-point", "uniform"]
MUTATION_RATES = {"1/16": 1 / 16, "1/32": 1 / 32, "1/64": 1 / 64,
                  "1/128": 1 / 128, "1/256": 1 / 256}
SAMPLE_SIZES = [100, 200, 300]

#: Table 7 protocol: generation gap label -> (population scale, gap
#: fraction, generations).  Population scales and the ~equal-evaluation
#: generation counts follow the paper's §V description (≈81% of the
#: nonoverlapping evaluation count).
OVERLAP_SETTINGS = {
    "2/N": (3.0, 0.02, 68),
    "1/4": (2.0, 0.25, 11),
    "1/2": (1.5, 0.50, 8),
    "3/4": (1.0, 0.75, 8),
}


def _progress(line: str) -> None:
    print("  " + line, file=sys.stderr, flush=True)


# ---------------------------------------------------------------------------
# Table 1 — parameter schedule (verification, not measurement)
# ---------------------------------------------------------------------------

def table_1(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Verify and print the Table 1 parameter schedule."""
    table = TextTable(
        ["Vector length", "Population", "Mutation"],
        title="Table 1: GA parameter schedule (encoded; checked against use)",
    )
    for length, label in [(3, "< 4"), (8, "4-16"), (16, "4-16"), (35, "> 16")]:
        schedule = ga_params_for_vector_length(length)
        rate = (
            f"1/{round(1 / schedule.mutation_rate)}"
        )
        table.add_row(f"L={length} ({label})", schedule.population_size, rate)
    return table.render()


# ---------------------------------------------------------------------------
# Table 2 — GA vs deterministic ATPG
# ---------------------------------------------------------------------------

def table_2(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """GA vs deterministic ATPG per circuit (paper Table 2)."""
    circuits = circuits or QUICK_CIRCUITS[2]
    measured = TextTable(
        ["Circuit", "Faults", "Det (GA)", "Vec (GA)", "Time (GA)",
         "Det (det.)", "Vec (det.)", "Time (det.)", "Unt."],
        title=f"Table 2 (measured, scale={scale}, {len(seeds)} seeds)",
    )
    for name in circuits:
        agg = run_gatest(name, TestGenConfig(), seeds, scale=scale)
        _progress(f"{name} GA done")
        compiled = compiled_circuit_for(name, scale)
        # A reduced backtrack budget keeps the deterministic comparator
        # tractable at reproduction scale; it inflates the aborted-fault
        # count the same way HITEC's own backtrack limits do.
        det = DeterministicAtpg(compiled, backtrack_limit=100).run()
        _progress(f"{name} deterministic done ({fmt_time(det.elapsed_seconds)})")
        measured.add_row(
            name,
            agg.total_faults,
            fmt_mean_std(agg.det_mean, agg.det_std),
            fmt_mean_std(agg.vec_mean, agg.vec_std, digits=0),
            fmt_time(agg.time_mean),
            det.detected,
            det.vectors,
            fmt_time(det.elapsed_seconds),
            det.untestable,
        )
    paper = TextTable(
        ["Circuit", "Faults", "Det (GA)", "Vec (GA)", "Time (GA)",
         "Det (HITEC)", "Vec (HITEC)", "Time (HITEC)"],
        title="Table 2 (paper)",
    )
    for name in circuits:
        row = paper_data.TABLE2.get(name)
        if row is None:
            continue
        paper.add_row(
            name, row.total_faults,
            fmt_mean_std(row.ga_det, row.ga_det_std),
            fmt_mean_std(row.ga_vec, row.ga_vec_std, digits=0),
            fmt_time(row.ga_time_s),
            row.hitec_det, row.hitec_vec, fmt_time(row.hitec_time_s),
        )
    return measured.render() + "\n\n" + paper.render()


# ---------------------------------------------------------------------------
# Table 3 — selection x crossover
# ---------------------------------------------------------------------------

def table_3(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Selection x crossover grid (paper Table 3)."""
    circuits = circuits or QUICK_CIRCUITS[3]
    configs = {
        f"{sel}/{xo}": TestGenConfig(selection=sel, crossover=xo)
        for sel in SELECTIONS
        for xo in CROSSOVERS
    }
    results = run_matrix(circuits, configs, seeds, scale=scale, progress=_progress)
    measured = TextTable(
        ["Circuit"] + [f"{s[:4]}/{x[:4]}" for s in SELECTIONS for x in CROSSOVERS],
        title=f"Table 3 (measured detections, scale={scale}, {len(seeds)} seeds)",
    )
    for name in circuits:
        measured.add_row(
            name,
            *[
                f"{results[name][f'{sel}/{xo}'].det_mean:.1f}"
                for sel in SELECTIONS for xo in CROSSOVERS
            ],
        )
    vectors_table = TextTable(
        ["Circuit"] + [f"{s[:4]}/{x[:4]}" for s in SELECTIONS for x in CROSSOVERS],
        title="Table 3 supplement (measured test-set lengths — on this "
              "substrate configuration quality shows up as length once "
              "detections saturate)",
    )
    for name in circuits:
        vectors_table.add_row(
            name,
            *[
                f"{results[name][f'{sel}/{xo}'].vec_mean:.0f}"
                for sel in SELECTIONS for xo in CROSSOVERS
            ],
        )
    # Scheme summary (normalized to each circuit's best cell).
    summary = TextTable(
        ["Scheme", "Measured mean (norm.)", "Paper mean (norm.)"],
        title="Selection-scheme summary",
    )
    paper_means = paper_data.table3_scheme_means()
    for sel in SELECTIONS:
        values = []
        for name in circuits:
            best = max(results[name][k].det_mean for k in configs)
            if best > 0:
                values.extend(
                    results[name][f"{sel}/{xo}"].det_mean / best for xo in CROSSOVERS
                )
        mean = sum(values) / len(values) if values else 0.0
        summary.add_row(sel, f"{mean:.4f}", f"{paper_means.get(sel, 0):.4f}")
    xo_summary = TextTable(
        ["Crossover", "Measured mean (norm.)", "Paper mean (norm.)"],
        title="Crossover summary",
    )
    paper_xo = paper_data.table3_crossover_means()
    for xo in CROSSOVERS:
        values = []
        for name in circuits:
            best = max(results[name][k].det_mean for k in configs)
            if best > 0:
                values.extend(
                    results[name][f"{sel}/{xo}"].det_mean / best for sel in SELECTIONS
                )
        mean = sum(values) / len(values) if values else 0.0
        xo_summary.add_row(xo, f"{mean:.4f}", f"{paper_xo.get(xo, 0):.4f}")
    return "\n\n".join([
        measured.render(), vectors_table.render(),
        summary.render(), xo_summary.render(),
    ])


# ---------------------------------------------------------------------------
# Table 4 — mutation rate
# ---------------------------------------------------------------------------

def table_4(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Sequence-phase mutation-rate sweep (paper Table 4)."""
    circuits = circuits or QUICK_CIRCUITS[4]
    configs = {
        label: TestGenConfig(seq_mutation_rate=rate)
        for label, rate in MUTATION_RATES.items()
    }
    results = run_matrix(circuits, configs, seeds, scale=scale, progress=_progress)
    measured = TextTable(
        ["Circuit"] + list(MUTATION_RATES),
        title=f"Table 4 (measured detections, scale={scale}, {len(seeds)} seeds)",
    )
    for name in circuits:
        measured.add_row(
            name, *[f"{results[name][label].det_mean:.1f}" for label in MUTATION_RATES]
        )
    paper = TextTable(
        ["Circuit"] + list(MUTATION_RATES), title="Table 4 (paper)"
    )
    for name in circuits:
        row = paper_data.TABLE4.get(name)
        if row:
            paper.add_row(name, *[f"{row[label]:.1f}" for label in MUTATION_RATES])
    return measured.render() + "\n\n" + paper.render()


# ---------------------------------------------------------------------------
# Table 5 — coding x population size
# ---------------------------------------------------------------------------

def table_5(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Binary vs nonbinary coding x population size (paper Table 5)."""
    circuits = circuits or QUICK_CIRCUITS[5]
    cells = [("bin", 16), ("non", 16), ("bin", 32), ("non", 32), ("bin", 64), ("non", 64)]
    configs = {
        f"{coding}{pop}": TestGenConfig(
            coding="binary" if coding == "bin" else "nonbinary",
            seq_population_size=pop,
        )
        for coding, pop in cells
    }
    results = run_matrix(circuits, configs, seeds, scale=scale, progress=_progress)
    measured = TextTable(
        ["Circuit"] + [f"{c}{p}" for c, p in cells],
        title=f"Table 5 (measured detections, scale={scale}, {len(seeds)} seeds)",
    )
    for name in circuits:
        measured.add_row(
            name, *[f"{results[name][f'{c}{p}'].det_mean:.1f}" for c, p in cells]
        )
    paper = TextTable(["Circuit"] + [f"{c}{p}" for c, p in cells], title="Table 5 (paper)")
    for name in circuits:
        row = paper_data.TABLE5.get(name)
        if row:
            paper.add_row(name, *[f"{row[(c, p)]:.1f}" for c, p in cells])
    return measured.render() + "\n\n" + paper.render()


# ---------------------------------------------------------------------------
# Table 6 — fault sampling
# ---------------------------------------------------------------------------

def table_6(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Fault-sample sizes: coverage and speedup (paper Table 6)."""
    circuits = circuits or QUICK_CIRCUITS[6]
    # Scale the paper's absolute sample sizes with the circuit scale so
    # scaled runs sample a comparable *fraction* of the fault list.
    sizes = [max(10, round(s * scale)) for s in SAMPLE_SIZES]
    configs: Dict[str, TestGenConfig] = {"full": TestGenConfig()}
    for size in sizes:
        configs[f"{size}"] = TestGenConfig(fault_sample=size)
    results = run_matrix(circuits, configs, seeds, scale=scale, progress=_progress)
    measured = TextTable(
        ["Circuit"] + [f"{s}: det/vec/spdup" for s in sizes],
        title=f"Table 6 (measured, scale={scale}, {len(seeds)} seeds; "
              f"sample sizes scaled from 100/200/300)",
    )
    for name in circuits:
        full_time = results[name]["full"].time_mean
        row = [name]
        for size in sizes:
            agg = results[name][f"{size}"]
            speedup = full_time / agg.time_mean if agg.time_mean > 0 else 0.0
            row.append(f"{agg.det_mean:.1f}/{agg.vec_mean:.0f}/{speedup:.2f}")
        measured.add_row(*row)
    paper = TextTable(
        ["Circuit"] + [f"{s}: det/vec/spdup" for s in SAMPLE_SIZES],
        title="Table 6 (paper)",
    )
    for name in circuits:
        row_data = paper_data.TABLE6.get(name)
        if row_data:
            paper.add_row(
                name,
                *[
                    f"{row_data[s][0]:.1f}/{row_data[s][1]}/{row_data[s][2]:.2f}"
                    for s in SAMPLE_SIZES
                ],
            )
    return measured.render() + "\n\n" + paper.render()


# ---------------------------------------------------------------------------
# Table 7 — overlapping populations
# ---------------------------------------------------------------------------

def table_7(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Overlapping-population generation gaps (paper Table 7)."""
    circuits = circuits or QUICK_CIRCUITS[7]
    configs: Dict[str, TestGenConfig] = {"nonoverlap": TestGenConfig()}
    for label, (pop_scale, gap, generations) in OVERLAP_SETTINGS.items():
        configs[label] = TestGenConfig(
            population_scale=pop_scale,
            generation_gap=gap,
            generations=generations,
        )
    results = run_matrix(circuits, configs, seeds, scale=scale, progress=_progress)
    measured = TextTable(
        ["Circuit"] + [f"{label}: det/vec/spdup" for label in OVERLAP_SETTINGS],
        title=f"Table 7 (measured, scale={scale}, {len(seeds)} seeds)",
    )
    for name in circuits:
        base_time = results[name]["nonoverlap"].time_mean
        row = [name]
        for label in OVERLAP_SETTINGS:
            agg = results[name][label]
            speedup = base_time / agg.time_mean if agg.time_mean > 0 else 0.0
            row.append(f"{agg.det_mean:.1f}/{agg.vec_mean:.0f}/{speedup:.2f}")
        measured.add_row(*row)
    paper = TextTable(
        ["Circuit"] + [f"{label}: det/vec/spdup" for label in OVERLAP_SETTINGS],
        title="Table 7 (paper)",
    )
    for name in circuits:
        row_data = paper_data.TABLE7.get(name)
        if row_data:
            paper.add_row(
                name,
                *[
                    f"{row_data[label][0]:.1f}/{row_data[label][1]}/{row_data[label][2]:.2f}"
                    for label in OVERLAP_SETTINGS
                ],
            )
    return measured.render() + "\n\n" + paper.render()


# ---------------------------------------------------------------------------
# Figures 1 and 2 — flow traces
# ---------------------------------------------------------------------------

def figure_1(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Trace the overall flow: vectors first, then sequences (Figure 1)."""
    name = (circuits or ["s298"])[0]
    compiled = compiled_circuit_for(name, scale)
    result = GaTestGenerator(compiled, TestGenConfig(seed=seeds[0])).run()
    lines = [f"Figure 1 flow trace for {name} (seed {seeds[0]}):"]
    vector_stage = [e for e in result.trace if e.kind == "vector"]
    sequence_stage = [e for e in result.trace if e.kind == "sequence"]
    lines.append(
        f"  stage 1: {len(vector_stage)} individual vectors, "
        f"{sum(e.detected for e in vector_stage)} detections"
    )
    by_len: Dict[int, List] = {}
    for e in sequence_stage:
        by_len.setdefault(e.frames, []).append(e)
    for length in sorted(by_len):
        events = by_len[length]
        committed = sum(1 for e in events if e.committed)
        lines.append(
            f"  stage 2 (len {length}): {len(events)} GA attempts, "
            f"{committed} sequences added, "
            f"{sum(e.detected for e in events)} detections"
        )
    lines.append(f"  final: {result.summary()}")
    return "\n".join(lines)


def figure_2(scale: float, seeds: Sequence[int], circuits: Optional[List[str]] = None) -> str:
    """Trace the phase transitions of vector generation (Figure 2)."""
    name = (circuits or ["s298"])[0]
    compiled = compiled_circuit_for(name, scale)
    result = GaTestGenerator(compiled, TestGenConfig(seed=seeds[0])).run()
    lines = [f"Figure 2 phase trace for {name} (seed {seeds[0]}):"]
    for vec_index, phase in result.phase_transitions:
        lines.append(f"  vector {vec_index:4d}: -> {phase.name}")
    return "\n".join(lines)


TABLES = {
    "1": table_1,
    "2": table_2,
    "3": table_3,
    "4": table_4,
    "5": table_5,
    "6": table_6,
    "7": table_7,
    "fig1": figure_1,
    "fig2": figure_2,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``gatest experiments`` argument parser (also introspected by
    ``tools/check_doc_links.py`` to verify documented flags exist)."""
    parser = argparse.ArgumentParser(
        prog="gatest experiments",
        description="Regenerate the paper's tables and figure traces.",
    )
    parser.add_argument("--table", required=True, choices=list(TABLES) + ["all"])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="circuit scale (1.0 = full profile sizes)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of random seeds (paper: 10)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full circuit list for the table")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="explicit circuit subset")
    parser.add_argument("--eval-jobs", type=int, default=None, metavar="N",
                        help="fault-sharded candidate evaluation over N "
                             "worker processes per run (bit-identical "
                             "results; see docs/PERFORMANCE.md)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run up to N seeds in parallel, each in its own "
                             "fault-isolated worker process (crashed/hung "
                             "seeds are retried, then reported as failed "
                             "cells instead of killing the table)")
    parser.add_argument("--journal", default=None, metavar="J.jsonl",
                        help="campaign journal: record every (circuit, "
                             "config, seed) cell crash-safely as it "
                             "completes (see docs/ROBUSTNESS.md)")
    parser.add_argument("--resume", action="store_true",
                        help="resume the --journal campaign: replay "
                             "completed cells bit-identically, re-run only "
                             "the rest")
    parser.add_argument("--workers-from", default=None, metavar="HOSTS",
                        help="distributed campaign: lease cells to the "
                             "worker host names listed in this file (one "
                             "per line; start a 'gatest campaign-worker' "
                             "per name against the same --journal); "
                             "expired leases are reaped and re-leased, "
                             "then run locally (docs/ROBUSTNESS.md)")
    parser.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                        help="seconds a worker may hold a leased cell "
                             "before it is reaped (default: REPRO_LEASE_TTL "
                             "or 300)")
    parser.add_argument("--trace", default=None, metavar="OUT.jsonl",
                        help="write the campaign's telemetry trace as JSONL")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics summary after the tables")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: regenerate tables/figures by number (see module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    if args.workers_from and not args.journal:
        parser.error("--workers-from requires --journal (the journal is "
                     "the coordination substrate)")
    hosts: Optional[List[str]] = None
    if args.workers_from:
        try:
            with open(args.workers_from, encoding="utf-8") as handle:
                hosts = [line.strip() for line in handle
                         if line.strip() and not line.startswith("#")]
        except OSError as exc:
            parser.error(f"cannot read --workers-from file: {exc}")
        if not hosts:
            parser.error(f"--workers-from file {args.workers_from!r} "
                         "names no hosts")
    if args.eval_jobs is not None:
        from .runner import set_default_eval_jobs

        set_default_eval_jobs(args.eval_jobs)
    if args.jobs is not None:
        from .runner import set_default_seed_jobs

        set_default_seed_jobs(args.jobs)
    seeds = list(range(1, args.seeds + 1))
    names = list(TABLES) if args.table == "all" else [args.table]

    from contextlib import ExitStack

    from ..cli import _finish_telemetry, _make_collector
    from ..core.checkpoint import CheckpointError
    from ..telemetry import use
    from .campaign import CampaignJournal, campaign_scope

    collector = _make_collector(args)
    with ExitStack() as stack:
        stack.enter_context(use(collector))
        if args.journal:
            try:
                journal = CampaignJournal.create(
                    args.journal, table=args.table, scale=args.scale,
                    seeds=seeds, resume=args.resume, collector=collector,
                    append_mode=hosts is not None,
                )
            except CheckpointError as exc:
                raise SystemExit(f"error: {exc}")
            stack.enter_context(campaign_scope(journal))
            if hosts is not None:
                from ..parallel.resilience import (
                    LEASE_RETRIES_ENV,
                    LEASE_TTL_ENV,
                    RetryPolicy,
                )
                from .distributed import DistributedCoordinator
                from .runner import set_distributed_backend

                policy = None
                if args.lease_ttl is not None:
                    policy = RetryPolicy.from_env(
                        task_timeout=args.lease_ttl,
                        timeout_env=LEASE_TTL_ENV,
                        retries_env=LEASE_RETRIES_ENV,
                    )
                coordinator = DistributedCoordinator(
                    journal, hosts, policy=policy, collector=collector,
                )
                set_distributed_backend(coordinator)
                stack.callback(set_distributed_backend, None)
                stack.callback(coordinator.close)
        try:
            for name in names:
                circuits = args.circuits
                if circuits is None and args.full and name.isdigit():
                    circuits = FULL_CIRCUITS.get(int(name))
                print(TABLES[name](args.scale, seeds, circuits))
                print()
        except CheckpointError as exc:
            raise SystemExit(f"error: {exc}")
    _finish_telemetry(args, collector)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
