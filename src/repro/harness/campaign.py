"""Campaign journal: crash-safe resume for multi-run experiment campaigns.

PR 4 made a *single* GATEST run crash-safe (``gatest run --checkpoint``);
this module does the same for the harness's *campaign loop* — the
(circuit, config-label, seed) matrix behind every paper table.  Each
cell is a journaled unit of work:

* :class:`CampaignJournal` owns a sealed JSONL journal (written through
  :mod:`repro.atomicio`, integrity-checked by
  :mod:`repro.core.checkpoint`).  The header binds the campaign's
  identity — table, scale, seed list, schema version — and each
  ``run_matrix`` call additionally binds its circuit list and config
  digests (:meth:`CampaignJournal.bind`), so a resumed journal that no
  longer matches the code/config that wrote it is refused, never
  silently misread.
* Completed cells store the full :class:`~repro.core.results.TestGenResult`
  (round-tripped by :func:`result_to_json` / :func:`result_from_json`),
  so a resume *replays* them bit-identically — the re-emitted table text
  is byte-identical to an uninterrupted run's.
* Failed cells (a seed that crashed/hung past its retry budget) store
  the error instead; they are *not* replayed, so a resume re-attempts
  exactly the work that never finished.

The journal is attached to the harness with :func:`campaign_scope`
(or :func:`set_active_campaign`); ``run_gatest`` consults the active
journal per seed.  ``python -m repro.harness.experiments --journal J
[--resume]`` wires this up from the command line.

Distributed campaigns (:mod:`repro.harness.distributed`, ``--workers-from``)
reuse this journal as their only coordination channel: ``append_mode``
switches writes from whole-file atomic rewrites to flocked single-line
appends (a SIGKILL tears at most the final line, which loaders skip),
``campaign-lease`` / ``campaign-close`` records drive the worker
protocol, and duplicate cell seals — a stalled worker racing its
re-leased peer — are arbitrated **first-sealed-ok-wins in file order**,
so every reader derives the same winner from the same bytes
(docs/ROBUSTNESS.md §6).

Counters (see docs/TELEMETRY.md): ``campaign.cells.completed`` /
``campaign.cells.skipped`` / ``campaign.cells.failed`` /
``campaign.cells.duplicate``, ``campaign.resumed`` and
``campaign.lease.granted`` (the reap-side ``campaign.lease.*``
counters live in the coordinator).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.checkpoint import (
    CAMPAIGN_FORMAT_VERSION,
    CheckpointError,
    append_journal_record,
    load_campaign_journal,
    save_campaign_journal,
    seal_journal_record,
)
from ..core.fitness import Phase
from ..core.results import StageEvent, TestGenResult
from ..faults.model import Fault
from ..faults.transition import TransitionFault
from ..telemetry import get_collector


# ----------------------------------------------------------------------
# TestGenResult <-> JSON
# ----------------------------------------------------------------------


def _fault_to_json(fault: object) -> list:
    if isinstance(fault, TransitionFault):
        return ["tr", fault.node, fault.slow_to]
    if isinstance(fault, Fault):
        return ["sa", fault.node, fault.pin, fault.stuck_at]
    raise TypeError(f"cannot journal fault of type {type(fault).__name__}")


def _fault_from_json(data: Sequence) -> object:
    tag = data[0]
    if tag == "tr":
        return TransitionFault(node=data[1], slow_to=data[2])
    if tag == "sa":
        return Fault(node=data[1], pin=data[2], stuck_at=data[3])
    raise CheckpointError(f"unknown journaled fault tag {tag!r}")


def result_to_json(result: TestGenResult) -> dict:
    """A JSON-serializable rendering of one completed run's result.

    Everything the aggregate tables and figures read is kept — the
    stage trace and per-fault detections included — so a replayed cell
    is indistinguishable from a freshly executed one.
    """
    return {
        "circuit_name": result.circuit_name,
        "test_sequence": [list(v) for v in result.test_sequence],
        "detected": result.detected,
        "total_faults": result.total_faults,
        "elapsed_seconds": result.elapsed_seconds,
        "ga_evaluations": result.ga_evaluations,
        "ga_runs": result.ga_runs,
        "phase_transitions": [[i, p.name] for i, p in result.phase_transitions],
        "trace": [
            [e.kind, e.phase.name, e.frames, e.detected, e.committed]
            for e in result.trace
        ],
        "detections": [
            [_fault_to_json(fault), frame] for fault, frame in result.detections
        ],
    }


def result_from_json(data: dict) -> TestGenResult:
    """Rebuild a :class:`TestGenResult` journaled by :func:`result_to_json`."""
    try:
        return TestGenResult(
            circuit_name=data["circuit_name"],
            test_sequence=[list(v) for v in data["test_sequence"]],
            detected=data["detected"],
            total_faults=data["total_faults"],
            elapsed_seconds=data["elapsed_seconds"],
            ga_evaluations=data["ga_evaluations"],
            ga_runs=data["ga_runs"],
            phase_transitions=[
                (i, Phase[name]) for i, name in data["phase_transitions"]
            ],
            trace=[
                StageEvent(kind, Phase[phase], frames, detected, committed)
                for kind, phase, frames, detected, committed in data["trace"]
            ],
            detections=[
                (_fault_from_json(fault), frame)
                for fault, frame in data["detections"]
            ],
        )
    except (KeyError, IndexError, TypeError) as exc:
        raise CheckpointError(
            f"campaign journal cell result is malformed: {exc!r}"
        ) from exc


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


def _cell_key(circuit: str, label: str, seed: int, scale: float) -> Tuple:
    return (circuit, label, int(seed), repr(float(scale)))


class CampaignJournal:
    """One campaign's journal: header + bindings + one record per cell.

    Create with :meth:`create` (fresh campaign, overwrites any stale
    journal at ``path``) or :meth:`create` with ``resume=True`` (loads
    and integrity-checks the existing journal, refusing on any identity
    mismatch).  Every completed or failed cell triggers a whole-file
    atomic rewrite — the journal is one line per cell, so this stays
    cheap, and a SIGKILL at any instant leaves a complete, loadable
    journal behind.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: dict,
        records: List[dict],
        resumed: bool,
        collector=None,
        append_mode: bool = False,
    ) -> None:
        self.path = Path(path)
        self.header = header
        self.resumed = resumed
        self.append_mode = bool(append_mode)
        self.collector = collector if collector is not None else get_collector()
        self._bind_count = 0
        self._duplicates = 0
        self._lease_seq = 0
        self._records: List[dict] = []
        self._cells: Dict[Tuple, dict] = {}
        self._leases: Dict[Tuple, dict] = {}
        self.closed = False
        self._ingest(records)

    def _ingest(self, records: List[dict]) -> None:
        """(Re)build the cell/lease views from the full record list.

        Duplicate cell records — possible only in append mode, where a
        host stalled past its lease TTL can seal a late result after a
        re-leased peer already sealed one — are arbitrated
        first-sealed-ok-wins: the earliest ``ok`` record in file order
        is the cell's result, later duplicates are ignored (counted as
        ``campaign.cells.duplicate``), and a ``failed`` record is
        superseded by any later ``ok`` (a re-lease healing the cell).
        Leases keep only the latest grant per cell (highest ``seq``).
        """
        duplicates_before = self._duplicates
        self._records = list(records)
        self._cells = {}
        self._leases = {}
        self._cell_pos = {}
        self._lease_pos = {}
        self._duplicates = 0
        self.closed = False
        for position, record in enumerate(records):
            kind = record.get("kind")
            if kind == "campaign-cell":
                self._absorb_cell(record, position)
            elif kind == "campaign-lease":
                key = _cell_key(
                    record["circuit"], record["label"],
                    record["seed"], record["scale"],
                )
                seq = int(record.get("seq", 0))
                current = self._leases.get(key)
                if current is None or int(current.get("seq", 0)) <= seq:
                    self._leases[key] = record
                    self._lease_pos[key] = position
                self._lease_seq = max(self._lease_seq, seq)
            elif kind == "campaign-close":
                self.closed = True
        new_duplicates = self._duplicates - duplicates_before
        if new_duplicates > 0:
            self.collector.inc("campaign.cells.duplicate", new_duplicates)

    def _absorb_cell(self, record: dict, position: int) -> bool:
        """First-sealed-ok-wins arbitration for one cell record.

        Returns whether ``record`` became the cell's effective record.
        """
        key = _cell_key(
            record["circuit"], record["label"],
            record["seed"], record["scale"],
        )
        previous = self._cells.get(key)
        if previous is not None and previous.get("status") == "ok":
            self._duplicates += 1
            return False
        self._cells[key] = record
        self._cell_pos[key] = position
        return True

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        table: str,
        scale: float,
        seeds: Sequence[int],
        resume: bool = False,
        collector=None,
        append_mode: bool = False,
    ) -> "CampaignJournal":
        """Open a campaign journal at ``path``.

        Fresh mode writes a new header (clobbering any previous journal
        at ``path`` — a journal is per-campaign state, not an archive).
        ``resume=True`` requires an existing journal whose header
        matches ``table`` / ``scale`` / ``seeds`` exactly; anything
        else — missing file, corrupt line, unknown schema, different
        campaign identity — raises :class:`CheckpointError`.

        ``append_mode=True`` switches every subsequent write from the
        whole-file atomic rewrite to flocked single-line appends — the
        multi-writer discipline of the distributed backend, where the
        coordinator and the campaign workers share this journal.  A
        resume in append mode tolerates a torn final line (the tail a
        SIGKILLed appender can leave).
        """
        header = {
            "kind": "campaign-header",
            "format": CAMPAIGN_FORMAT_VERSION,
            "table": str(table),
            "scale": float(scale),
            "seeds": [int(s) for s in seeds],
        }
        if resume:
            records = load_campaign_journal(path, skip_torn_tail=append_mode)
            found = records[0]
            for field in ("table", "scale", "seeds"):
                if found.get(field) != header[field]:
                    raise CheckpointError(
                        f"campaign journal {path} belongs to a different "
                        f"campaign: {field} is {found.get(field)!r}, this "
                        f"run wants {header[field]!r} (use a fresh journal "
                        "or rerun with the original parameters)"
                    )
            journal = cls(path, found, records, resumed=True,
                          collector=collector, append_mode=append_mode)
            journal.collector.inc("campaign.resumed")
            return journal
        sealed = seal_journal_record(header)
        journal = cls(path, sealed, [sealed], resumed=False,
                      collector=collector, append_mode=append_mode)
        save_campaign_journal(journal.path, journal._records)
        return journal

    @classmethod
    def open(
        cls, path: Union[str, Path], *, collector=None
    ) -> "CampaignJournal":
        """Attach to an existing journal as a peer writer (a worker).

        Campaign workers take no identity arguments — the header on
        disk *is* the campaign's identity — and always write in append
        mode.  The journal must exist and pass integrity checks (a torn
        final line is tolerated, anything else is refused).
        """
        records = load_campaign_journal(path, skip_torn_tail=True)
        return cls(path, records[0], records, resumed=True,
                   collector=collector, append_mode=True)

    def _flush(self) -> None:
        if self.append_mode:
            raise RuntimeError(
                "whole-file rewrite in append mode would lose concurrent "
                "peers' records"
            )
        save_campaign_journal(self.path, self._records)

    def _append(self, record: dict) -> dict:
        sealed = append_journal_record(self.path, record)
        self._records.append(sealed)
        return sealed

    def refresh(self) -> None:
        """Re-read the journal from disk (append mode only).

        Picks up records sealed by peer writers since the last load —
        the coordinator's poll step and the workers' claim step both
        live on this.  A torn final line (a peer SIGKILLed mid-append)
        is skipped, not refused.
        """
        if not self.append_mode:
            raise RuntimeError("refresh is only meaningful in append mode")
        self._ingest(load_campaign_journal(self.path, skip_torn_tail=True))

    # -- identity bindings ---------------------------------------------

    def bind(self, circuits: Sequence[str], digests: Dict[str, str]) -> None:
        """Bind one ``run_matrix`` group's circuits and config digests.

        Groups are matched positionally across sessions (a campaign
        re-runs the same table code, so group ``i`` on resume must be
        the same group ``i`` that was journaled).  A mismatch means the
        configs or circuit lists changed since the journal was written;
        the journal is refused rather than silently mixing results.
        """
        binding = {
            "kind": "campaign-binding",
            "group": self._bind_count,
            "circuits": [str(c) for c in circuits],
            "digests": dict(sorted(digests.items())),
        }
        self._bind_count += 1
        for record in self._records:
            if (record.get("kind") == "campaign-binding"
                    and record.get("group") == binding["group"]):
                for field in ("circuits", "digests"):
                    if record.get(field) != binding[field]:
                        raise CheckpointError(
                            f"campaign journal {self.path}: group "
                            f"{binding['group']} {field} changed since the "
                            f"journal was written (journal has "
                            f"{record.get(field)!r}, this run produces "
                            f"{binding[field]!r}); configs or circuit lists "
                            "must not change across a resume"
                        )
                return
        if self.append_mode:
            self._append(binding)
        else:
            self._records.append(seal_journal_record(binding))
            self._flush()

    # -- cells ----------------------------------------------------------

    def lookup(
        self, circuit: str, label: str, seed: int, scale: float, digest: str
    ) -> Optional[dict]:
        """The journaled *completed* result for one cell, or ``None``.

        ``None`` means the cell must be (re-)executed: it was never
        journaled, or it was journaled as failed.  A journaled cell
        whose config digest differs from ``digest`` is a refusal, not a
        miss — executing it would silently mix two different configs'
        results in one table.  Completed hits count
        ``campaign.cells.skipped``.
        """
        record = self._cells.get(_cell_key(circuit, label, seed, scale))
        if record is None:
            return None
        if record["config_digest"] != digest:
            raise CheckpointError(
                f"campaign journal {self.path}: cell ({circuit!r}, "
                f"{label!r}, seed {seed}) was journaled under config "
                f"digest {record['config_digest'][:12]}…, but this run's "
                f"config digests to {digest[:12]}… — the config changed "
                "since the journal was written; use a fresh journal"
            )
        if record["status"] != "ok":
            return None
        self.collector.inc("campaign.cells.skipped")
        return record["result"]

    def record_cell(
        self,
        circuit: str,
        label: str,
        seed: int,
        scale: float,
        digest: str,
        *,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        host: Optional[str] = None,
        trace: Optional[List[dict]] = None,
    ) -> None:
        """Journal one executed cell (completed or failed) atomically.

        Exactly one of ``result`` (completed) / ``error`` (failed) must
        be given.  In rewrite mode a re-executed cell (a failed one
        retried on resume) replaces its previous record in place; in
        append mode the record is always appended and duplicate
        arbitration (first-sealed-ok-wins) decides which record is the
        cell's result.  ``host`` stamps the sealing host's name and
        ``trace`` ships the executing worker's telemetry records along
        with the result (the coordinator merges them under
        ``host.<name>`` scopes).
        """
        if (result is None) == (error is None):
            raise ValueError("record_cell takes exactly one of result/error")
        record = {
            "kind": "campaign-cell",
            "circuit": str(circuit),
            "label": str(label),
            "seed": int(seed),
            "scale": float(scale),
            "config_digest": digest,
            "status": "ok" if result is not None else "failed",
        }
        if host is not None:
            record["host"] = str(host)
        if trace is not None:
            record["trace"] = trace
        if result is not None:
            record["result"] = result
            self.collector.inc("campaign.cells.completed")
        else:
            record["error"] = error
            record["attempts"] = attempts
            self.collector.inc("campaign.cells.failed")
        sealed = seal_journal_record(record)
        key = _cell_key(circuit, label, seed, scale)
        if self.append_mode:
            sealed = self._append(sealed)
            if not self._absorb_cell(sealed, len(self._records) - 1):
                self.collector.inc("campaign.cells.duplicate")
            return
        previous = self._cells.get(key)
        if previous is not None:
            self._records[self._records.index(previous)] = sealed
        else:
            self._records.append(sealed)
        self._cells[key] = sealed
        self._flush()

    # -- leases (distributed campaigns; append mode only) ----------------

    def grant_lease(
        self,
        circuit: str,
        label: str,
        seed: int,
        scale: float,
        digest: str,
        *,
        host: str,
        ttl: float,
        config: Optional[dict] = None,
        kernel_artifact: Optional[List[str]] = None,
        collect: bool = False,
    ) -> dict:
        """Seal a TTL-stamped lease granting one cell to ``host``.

        ``config`` carries the full execution-resolved
        :class:`~repro.core.config.TestGenConfig` rendering (including
        execution-only knobs like ``eval_jobs`` and the resolved
        ``sim_kernel``) so the worker reproduces the coordinator's
        execution environment exactly; ``kernel_artifact`` optionally
        ships a compiled C-kernel ``[digest, path]`` the same way seed
        pools do.  Leases are journal-global monotonic (``seq``); a
        re-lease of the same cell supersedes the previous lease by
        carrying a higher ``seq``.  Counts ``campaign.lease.granted``.
        """
        if not self.append_mode:
            raise RuntimeError("leases require an append-mode journal")
        self._lease_seq += 1
        record = {
            "kind": "campaign-lease",
            "seq": self._lease_seq,
            "circuit": str(circuit),
            "label": str(label),
            "seed": int(seed),
            "scale": float(scale),
            "config_digest": digest,
            "host": str(host),
            "ttl": float(ttl),
            "expires_at": time.time() + float(ttl),
            "config": config,
            "kernel_artifact": kernel_artifact,
            "collect": bool(collect),
        }
        sealed = self._append(record)
        key = _cell_key(circuit, label, seed, scale)
        self._leases[key] = sealed
        self._lease_pos[key] = len(self._records) - 1
        self.collector.inc("campaign.lease.granted")
        return sealed

    def lease_for(
        self, circuit: str, label: str, seed: int, scale: float
    ) -> Optional[dict]:
        """The latest lease for one cell (highest ``seq``), or ``None``."""
        return self._leases.get(_cell_key(circuit, label, seed, scale))

    def leases(self) -> List[dict]:
        """The latest lease per cell, in arbitrary order."""
        return list(self._leases.values())

    def result_for(
        self, circuit: str, label: str, seed: int, scale: float
    ) -> Optional[dict]:
        """The cell's effective record after arbitration, or ``None``.

        Unlike :meth:`lookup` this returns failed records too (the
        coordinator needs to distinguish "failed on the worker" from
        "no result yet") and does not touch counters or digests.
        """
        return self._cells.get(_cell_key(circuit, label, seed, scale))

    def pending_result(
        self, circuit: str, label: str, seed: int, scale: float
    ) -> Optional[dict]:
        """The cell's outcome *for the current lease epoch*, or ``None``.

        Like :meth:`result_for`, except a failed record that was sealed
        *before* the cell's latest lease is treated as superseded (the
        re-lease exists precisely to retry it) and yields ``None`` —
        both the coordinator's accept loop and the workers' claim check
        use this, so a resumed campaign re-attempts stale failures
        while fresh ones stay terminal.  ``ok`` records always win.
        """
        key = _cell_key(circuit, label, seed, scale)
        record = self._cells.get(key)
        if record is None:
            return None
        if record.get("status") == "ok":
            return record
        lease_pos = self._lease_pos.get(key)
        if lease_pos is not None and lease_pos > self._cell_pos.get(key, -1):
            return None
        return record

    def record_close(self) -> None:
        """Seal the campaign-close marker (coordinator, append mode).

        Workers exit their poll loop when a refresh shows the campaign
        closed; a journal with a close marker grants no further leases.
        """
        if not self.append_mode:
            raise RuntimeError("record_close requires an append-mode journal")
        self._append({"kind": "campaign-close"})
        self.closed = True

    # -- inspection ------------------------------------------------------

    def cells(self, status: Optional[str] = None) -> List[dict]:
        """All journaled cell records, optionally filtered by status."""
        found = [r for r in self._records if r.get("kind") == "campaign-cell"]
        if status is not None:
            found = [r for r in found if r.get("status") == status]
        return found


# ----------------------------------------------------------------------
# The active campaign (module default, like telemetry's collector)
# ----------------------------------------------------------------------

_active: Optional[CampaignJournal] = None


def get_active_campaign() -> Optional[CampaignJournal]:
    """The journal ``run_gatest`` consults, or ``None`` (the default)."""
    return _active


def set_active_campaign(
    journal: Optional[CampaignJournal],
) -> Optional[CampaignJournal]:
    """Install ``journal`` as the active campaign; returns the previous."""
    global _active
    previous = _active
    _active = journal
    return previous


@contextmanager
def campaign_scope(journal: CampaignJournal) -> Iterator[CampaignJournal]:
    """Scope ``journal`` as the active campaign for a ``with`` block."""
    previous = set_active_campaign(journal)
    try:
        yield journal
    finally:
        set_active_campaign(previous)
