"""Campaign journal: crash-safe resume for multi-run experiment campaigns.

PR 4 made a *single* GATEST run crash-safe (``gatest run --checkpoint``);
this module does the same for the harness's *campaign loop* — the
(circuit, config-label, seed) matrix behind every paper table.  Each
cell is a journaled unit of work:

* :class:`CampaignJournal` owns a sealed JSONL journal (written through
  :mod:`repro.atomicio`, integrity-checked by
  :mod:`repro.core.checkpoint`).  The header binds the campaign's
  identity — table, scale, seed list, schema version — and each
  ``run_matrix`` call additionally binds its circuit list and config
  digests (:meth:`CampaignJournal.bind`), so a resumed journal that no
  longer matches the code/config that wrote it is refused, never
  silently misread.
* Completed cells store the full :class:`~repro.core.results.TestGenResult`
  (round-tripped by :func:`result_to_json` / :func:`result_from_json`),
  so a resume *replays* them bit-identically — the re-emitted table text
  is byte-identical to an uninterrupted run's.
* Failed cells (a seed that crashed/hung past its retry budget) store
  the error instead; they are *not* replayed, so a resume re-attempts
  exactly the work that never finished.

The journal is attached to the harness with :func:`campaign_scope`
(or :func:`set_active_campaign`); ``run_gatest`` consults the active
journal per seed.  ``python -m repro.harness.experiments --journal J
[--resume]`` wires this up from the command line.

Counters (see docs/TELEMETRY.md): ``campaign.cells.completed`` /
``campaign.cells.skipped`` / ``campaign.cells.failed`` and
``campaign.resumed``.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.checkpoint import (
    CAMPAIGN_FORMAT_VERSION,
    CheckpointError,
    load_campaign_journal,
    save_campaign_journal,
    seal_journal_record,
)
from ..core.fitness import Phase
from ..core.results import StageEvent, TestGenResult
from ..faults.model import Fault
from ..faults.transition import TransitionFault
from ..telemetry import get_collector


# ----------------------------------------------------------------------
# TestGenResult <-> JSON
# ----------------------------------------------------------------------


def _fault_to_json(fault: object) -> list:
    if isinstance(fault, TransitionFault):
        return ["tr", fault.node, fault.slow_to]
    if isinstance(fault, Fault):
        return ["sa", fault.node, fault.pin, fault.stuck_at]
    raise TypeError(f"cannot journal fault of type {type(fault).__name__}")


def _fault_from_json(data: Sequence) -> object:
    tag = data[0]
    if tag == "tr":
        return TransitionFault(node=data[1], slow_to=data[2])
    if tag == "sa":
        return Fault(node=data[1], pin=data[2], stuck_at=data[3])
    raise CheckpointError(f"unknown journaled fault tag {tag!r}")


def result_to_json(result: TestGenResult) -> dict:
    """A JSON-serializable rendering of one completed run's result.

    Everything the aggregate tables and figures read is kept — the
    stage trace and per-fault detections included — so a replayed cell
    is indistinguishable from a freshly executed one.
    """
    return {
        "circuit_name": result.circuit_name,
        "test_sequence": [list(v) for v in result.test_sequence],
        "detected": result.detected,
        "total_faults": result.total_faults,
        "elapsed_seconds": result.elapsed_seconds,
        "ga_evaluations": result.ga_evaluations,
        "ga_runs": result.ga_runs,
        "phase_transitions": [[i, p.name] for i, p in result.phase_transitions],
        "trace": [
            [e.kind, e.phase.name, e.frames, e.detected, e.committed]
            for e in result.trace
        ],
        "detections": [
            [_fault_to_json(fault), frame] for fault, frame in result.detections
        ],
    }


def result_from_json(data: dict) -> TestGenResult:
    """Rebuild a :class:`TestGenResult` journaled by :func:`result_to_json`."""
    try:
        return TestGenResult(
            circuit_name=data["circuit_name"],
            test_sequence=[list(v) for v in data["test_sequence"]],
            detected=data["detected"],
            total_faults=data["total_faults"],
            elapsed_seconds=data["elapsed_seconds"],
            ga_evaluations=data["ga_evaluations"],
            ga_runs=data["ga_runs"],
            phase_transitions=[
                (i, Phase[name]) for i, name in data["phase_transitions"]
            ],
            trace=[
                StageEvent(kind, Phase[phase], frames, detected, committed)
                for kind, phase, frames, detected, committed in data["trace"]
            ],
            detections=[
                (_fault_from_json(fault), frame)
                for fault, frame in data["detections"]
            ],
        )
    except (KeyError, IndexError, TypeError) as exc:
        raise CheckpointError(
            f"campaign journal cell result is malformed: {exc!r}"
        ) from exc


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


def _cell_key(circuit: str, label: str, seed: int, scale: float) -> Tuple:
    return (circuit, label, int(seed), repr(float(scale)))


class CampaignJournal:
    """One campaign's journal: header + bindings + one record per cell.

    Create with :meth:`create` (fresh campaign, overwrites any stale
    journal at ``path``) or :meth:`create` with ``resume=True`` (loads
    and integrity-checks the existing journal, refusing on any identity
    mismatch).  Every completed or failed cell triggers a whole-file
    atomic rewrite — the journal is one line per cell, so this stays
    cheap, and a SIGKILL at any instant leaves a complete, loadable
    journal behind.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: dict,
        records: List[dict],
        resumed: bool,
        collector=None,
    ) -> None:
        self.path = Path(path)
        self.header = header
        self.resumed = resumed
        self.collector = collector if collector is not None else get_collector()
        self._records = records
        self._cells: Dict[Tuple, dict] = {}
        self._bind_count = 0
        for record in records:
            if record.get("kind") == "campaign-cell":
                key = _cell_key(
                    record["circuit"], record["label"],
                    record["seed"], record["scale"],
                )
                self._cells[key] = record

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        table: str,
        scale: float,
        seeds: Sequence[int],
        resume: bool = False,
        collector=None,
    ) -> "CampaignJournal":
        """Open a campaign journal at ``path``.

        Fresh mode writes a new header (clobbering any previous journal
        at ``path`` — a journal is per-campaign state, not an archive).
        ``resume=True`` requires an existing journal whose header
        matches ``table`` / ``scale`` / ``seeds`` exactly; anything
        else — missing file, corrupt line, unknown schema, different
        campaign identity — raises :class:`CheckpointError`.
        """
        header = {
            "kind": "campaign-header",
            "format": CAMPAIGN_FORMAT_VERSION,
            "table": str(table),
            "scale": float(scale),
            "seeds": [int(s) for s in seeds],
        }
        if resume:
            records = load_campaign_journal(path)
            found = records[0]
            for field in ("table", "scale", "seeds"):
                if found.get(field) != header[field]:
                    raise CheckpointError(
                        f"campaign journal {path} belongs to a different "
                        f"campaign: {field} is {found.get(field)!r}, this "
                        f"run wants {header[field]!r} (use a fresh journal "
                        "or rerun with the original parameters)"
                    )
            journal = cls(path, found, records, resumed=True,
                          collector=collector)
            journal.collector.inc("campaign.resumed")
            return journal
        sealed = seal_journal_record(header)
        journal = cls(path, sealed, [sealed], resumed=False,
                      collector=collector)
        journal._flush()
        return journal

    def _flush(self) -> None:
        save_campaign_journal(self.path, self._records)

    # -- identity bindings ---------------------------------------------

    def bind(self, circuits: Sequence[str], digests: Dict[str, str]) -> None:
        """Bind one ``run_matrix`` group's circuits and config digests.

        Groups are matched positionally across sessions (a campaign
        re-runs the same table code, so group ``i`` on resume must be
        the same group ``i`` that was journaled).  A mismatch means the
        configs or circuit lists changed since the journal was written;
        the journal is refused rather than silently mixing results.
        """
        binding = {
            "kind": "campaign-binding",
            "group": self._bind_count,
            "circuits": [str(c) for c in circuits],
            "digests": dict(sorted(digests.items())),
        }
        self._bind_count += 1
        for record in self._records:
            if (record.get("kind") == "campaign-binding"
                    and record.get("group") == binding["group"]):
                for field in ("circuits", "digests"):
                    if record.get(field) != binding[field]:
                        raise CheckpointError(
                            f"campaign journal {self.path}: group "
                            f"{binding['group']} {field} changed since the "
                            f"journal was written (journal has "
                            f"{record.get(field)!r}, this run produces "
                            f"{binding[field]!r}); configs or circuit lists "
                            "must not change across a resume"
                        )
                return
        self._records.append(seal_journal_record(binding))
        self._flush()

    # -- cells ----------------------------------------------------------

    def lookup(
        self, circuit: str, label: str, seed: int, scale: float, digest: str
    ) -> Optional[dict]:
        """The journaled *completed* result for one cell, or ``None``.

        ``None`` means the cell must be (re-)executed: it was never
        journaled, or it was journaled as failed.  A journaled cell
        whose config digest differs from ``digest`` is a refusal, not a
        miss — executing it would silently mix two different configs'
        results in one table.  Completed hits count
        ``campaign.cells.skipped``.
        """
        record = self._cells.get(_cell_key(circuit, label, seed, scale))
        if record is None:
            return None
        if record["config_digest"] != digest:
            raise CheckpointError(
                f"campaign journal {self.path}: cell ({circuit!r}, "
                f"{label!r}, seed {seed}) was journaled under config "
                f"digest {record['config_digest'][:12]}…, but this run's "
                f"config digests to {digest[:12]}… — the config changed "
                "since the journal was written; use a fresh journal"
            )
        if record["status"] != "ok":
            return None
        self.collector.inc("campaign.cells.skipped")
        return record["result"]

    def record_cell(
        self,
        circuit: str,
        label: str,
        seed: int,
        scale: float,
        digest: str,
        *,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        attempts: int = 1,
    ) -> None:
        """Journal one executed cell (completed or failed) atomically.

        Exactly one of ``result`` (completed) / ``error`` (failed) must
        be given.  A re-executed cell (a failed one retried on resume)
        replaces its previous record in place.
        """
        if (result is None) == (error is None):
            raise ValueError("record_cell takes exactly one of result/error")
        record = {
            "kind": "campaign-cell",
            "circuit": str(circuit),
            "label": str(label),
            "seed": int(seed),
            "scale": float(scale),
            "config_digest": digest,
            "status": "ok" if result is not None else "failed",
        }
        if result is not None:
            record["result"] = result
            self.collector.inc("campaign.cells.completed")
        else:
            record["error"] = error
            record["attempts"] = attempts
            self.collector.inc("campaign.cells.failed")
        sealed = seal_journal_record(record)
        key = _cell_key(circuit, label, seed, scale)
        previous = self._cells.get(key)
        if previous is not None:
            self._records[self._records.index(previous)] = sealed
        else:
            self._records.append(sealed)
        self._cells[key] = sealed
        self._flush()

    # -- inspection ------------------------------------------------------

    def cells(self, status: Optional[str] = None) -> List[dict]:
        """All journaled cell records, optionally filtered by status."""
        found = [r for r in self._records if r.get("kind") == "campaign-cell"]
        if status is not None:
            found = [r for r in found if r.get("status") == status]
        return found


# ----------------------------------------------------------------------
# The active campaign (module default, like telemetry's collector)
# ----------------------------------------------------------------------

_active: Optional[CampaignJournal] = None


def get_active_campaign() -> Optional[CampaignJournal]:
    """The journal ``run_gatest`` consults, or ``None`` (the default)."""
    return _active


def set_active_campaign(
    journal: Optional[CampaignJournal],
) -> Optional[CampaignJournal]:
    """Install ``journal`` as the active campaign; returns the previous."""
    global _active
    previous = _active
    _active = journal
    return previous


@contextmanager
def campaign_scope(journal: CampaignJournal) -> Iterator[CampaignJournal]:
    """Scope ``journal`` as the active campaign for a ``with`` block."""
    previous = set_active_campaign(journal)
    try:
        yield journal
    finally:
        set_active_campaign(previous)
