"""The paper's reported numbers, transcribed from Tables 2-7.

Used by the experiment harness to print paper-vs-measured comparisons
and by the benchmark suite to check reproduced *shapes* (orderings,
ratios) rather than absolute values — our substrate is a profile-matched
synthetic circuit suite, not the original ISCAS89 netlists (DESIGN.md §3).

Times are stored in seconds (converted from the paper's h/m notation).
``None`` marks entries the paper leaves blank ("-").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def _h(x: float) -> float:
    return x * 3600.0


def _m(x: float) -> float:
    return x * 60.0


@dataclass(frozen=True)
class Table2Row:
    """One circuit's row of Table 2 (HITEC vs GA)."""

    circuit: str
    pis: int
    seq_depth: int
    total_faults: int
    hitec_det: Optional[int]
    hitec_vec: Optional[int]
    hitec_time_s: Optional[float]
    ga_det: float
    ga_det_std: float
    ga_vec: int
    ga_vec_std: int
    ga_time_s: float

    @property
    def ga_coverage(self) -> float:
        """GA fault coverage fraction."""
        return self.ga_det / self.total_faults

    @property
    def hitec_coverage(self) -> Optional[float]:
        """HITEC fault coverage (None where the paper leaves blanks)."""
        if self.hitec_det is None:
            return None
        return self.hitec_det / self.total_faults


TABLE2: Dict[str, Table2Row] = {
    r.circuit: r
    for r in [
        Table2Row("s298", 3, 8, 308, 265, 306, _h(4.44), 264.7, 0.5, 161, 28, _m(6.05)),
        Table2Row("s344", 9, 6, 342, 328, 142, _h(1.33), 329.0, 0.0, 95, 14, _m(5.85)),
        Table2Row("s349", 9, 6, 350, 335, 137, _m(52.2), 335.0, 0.0, 95, 14, _m(5.83)),
        Table2Row("s382", 3, 11, 399, 363, 4931, _h(12.0), 347.0, 1.2, 281, 27, _m(8.91)),
        Table2Row("s386", 7, 5, 384, 314, 311, _m(1.03), 295.2, 2.2, 154, 24, _m(3.45)),
        Table2Row("s400", 3, 11, 426, 383, 4309, _h(12.1), 365.1, 2.7, 280, 26, _m(9.45)),
        Table2Row("s444", 3, 11, 474, 414, 2240, _h(16.1), 405.7, 1.7, 275, 21, _m(10.5)),
        Table2Row("s526", 3, 11, 555, 365, 2232, _h(46.8), 416.7, 4.8, 281, 42, _m(14.3)),
        Table2Row("s641", 35, 6, 467, 404, 216, _m(18.0), 404.0, 0.0, 139, 31, _m(8.24)),
        Table2Row("s713", 35, 6, 581, 476, 194, _m(1.52), 476.0, 0.0, 128, 7, _m(9.41)),
        Table2Row("s820", 18, 4, 850, 813, 984, _h(1.61), 516.5, 29.2, 146, 17, _m(13.4)),
        Table2Row("s832", 18, 4, 870, 817, 981, _h(1.76), 539.0, 32.1, 150, 17, _m(12.3)),
        Table2Row("s1196", 14, 4, 1242, 1239, 453, _m(1.53), 1232, 3, 347, 45, _m(11.6)),
        Table2Row("s1238", 14, 4, 1355, 1283, 478, _m(2.20), 1274, 3, 383, 40, _m(16.0)),
        Table2Row("s1423", 17, 10, 1515, None, None, None, 1222, 51, 663, 103, _h(2.83)),
        Table2Row("s1488", 8, 5, 1486, 1444, 1294, _h(3.60), 1392, 32, 243, 26, _m(25.2)),
        Table2Row("s1494", 8, 5, 1506, 1453, 1407, _h(1.91), 1416, 20, 245, 39, _m(23.2)),
        Table2Row("s5378", 35, 36, 4603, None, None, None, 3175, 53, 511, 54, _h(6.08)),
        Table2Row("s35932", 35, 35, 39094, 34902, 240, _h(3.80), 35009, 51, 197, 43, _h(105.2)),
    ]
}

#: Table 3 — detected faults per (selection scheme, crossover) cell.
#: Keys: circuit -> scheme -> crossover -> detected.
#: Schemes: roulette, sus, tournament (no replacement), tournament-r.
TABLE3: Dict[str, Dict[str, Dict[str, float]]] = {
    "s298": {
        "roulette": {"1-point": 264.1, "2-point": 264.1, "uniform": 264.0},
        "sus": {"1-point": 264.8, "2-point": 264.8, "uniform": 264.1},
        "tournament": {"1-point": 264.2, "2-point": 264.3, "uniform": 264.7},
        "tournament-r": {"1-point": 264.3, "2-point": 264.8, "uniform": 264.9},
    },
    "s386": {
        "roulette": {"1-point": 294.2, "2-point": 293.0, "uniform": 295.5},
        "sus": {"1-point": 296.6, "2-point": 296.1, "uniform": 297.8},
        "tournament": {"1-point": 294.6, "2-point": 296.7, "uniform": 295.2},
        "tournament-r": {"1-point": 297.3, "2-point": 296.2, "uniform": 295.9},
    },
    "s526": {
        "roulette": {"1-point": 419.7, "2-point": 419.7, "uniform": 417.8},
        "sus": {"1-point": 422.0, "2-point": 414.7, "uniform": 417.9},
        "tournament": {"1-point": 415.6, "2-point": 417.2, "uniform": 416.7},
        "tournament-r": {"1-point": 416.7, "2-point": 418.3, "uniform": 419.5},
    },
    "s820": {
        "roulette": {"1-point": 501.2, "2-point": 478.4, "uniform": 514.3},
        "sus": {"1-point": 502.9, "2-point": 497.4, "uniform": 524.1},
        "tournament": {"1-point": 520.4, "2-point": 519.6, "uniform": 516.5},
        "tournament-r": {"1-point": 527.9, "2-point": 527.5, "uniform": 504.5},
    },
    "s832": {
        "roulette": {"1-point": 512.0, "2-point": 503.7, "uniform": 506.6},
        "sus": {"1-point": 500.6, "2-point": 515.9, "uniform": 512.5},
        "tournament": {"1-point": 522.2, "2-point": 516.4, "uniform": 539.0},
        "tournament-r": {"1-point": 516.4, "2-point": 502.1, "uniform": 514.7},
    },
    "s1196": {
        "roulette": {"1-point": 1228, "2-point": 1228, "uniform": 1232},
        "sus": {"1-point": 1229, "2-point": 1228, "uniform": 1231},
        "tournament": {"1-point": 1227, "2-point": 1229, "uniform": 1232},
        "tournament-r": {"1-point": 1227, "2-point": 1225, "uniform": 1230},
    },
    "s1238": {
        "roulette": {"1-point": 1270, "2-point": 1272, "uniform": 1274},
        "sus": {"1-point": 1273, "2-point": 1271, "uniform": 1275},
        "tournament": {"1-point": 1269, "2-point": 1272, "uniform": 1274},
        "tournament-r": {"1-point": 1268, "2-point": 1272, "uniform": 1275},
    },
    "s1423": {
        "roulette": {"1-point": 1243, "2-point": 1229, "uniform": 1257},
        "sus": {"1-point": 1210, "2-point": 1243, "uniform": 1223},
        "tournament": {"1-point": 1242, "2-point": 1219, "uniform": 1222},
        "tournament-r": {"1-point": 1250, "2-point": 1227, "uniform": 1212},
    },
    "s1488": {
        "roulette": {"1-point": 1363, "2-point": 1381, "uniform": 1352},
        "sus": {"1-point": 1378, "2-point": 1360, "uniform": 1367},
        "tournament": {"1-point": 1392, "2-point": 1390, "uniform": 1392},
        "tournament-r": {"1-point": 1380, "2-point": 1388, "uniform": 1395},
    },
    "s1494": {
        "roulette": {"1-point": 1357, "2-point": 1362, "uniform": 1361},
        "sus": {"1-point": 1352, "2-point": 1401, "uniform": 1394},
        "tournament": {"1-point": 1412, "2-point": 1388, "uniform": 1416},
        "tournament-r": {"1-point": 1384, "2-point": 1391, "uniform": 1408},
    },
    "s5378": {
        "roulette": {"1-point": 3169, "2-point": 3160, "uniform": 3216},
        "sus": {"1-point": 3124, "2-point": 3183, "uniform": 3167},
        "tournament": {"1-point": 3175, "2-point": 3165, "uniform": 3175},
        "tournament-r": {"1-point": 3168, "2-point": 3150, "uniform": 3180},
    },
}

#: Table 4 — detected faults per mutation rate (sequence phase).
TABLE4: Dict[str, Dict[str, float]] = {
    "s298": {"1/16": 264.4, "1/32": 264.8, "1/64": 264.7, "1/128": 264.8, "1/256": 264.3},
    "s386": {"1/16": 296.1, "1/32": 296.8, "1/64": 295.2, "1/128": 296.1, "1/256": 295.5},
    "s820": {"1/16": 510.7, "1/32": 509.0, "1/64": 516.5, "1/128": 510.4, "1/256": 510.3},
    "s832": {"1/16": 533.5, "1/32": 533.6, "1/64": 539.0, "1/128": 533.5, "1/256": 533.1},
    "s1196": {"1/16": 1231, "1/32": 1230, "1/64": 1232, "1/128": 1231, "1/256": 1230},
    "s1238": {"1/16": 1274, "1/32": 1275, "1/64": 1274, "1/128": 1276, "1/256": 1274},
    "s1423": {"1/16": 1216, "1/32": 1226, "1/64": 1222, "1/128": 1244, "1/256": 1258},
    "s1488": {"1/16": 1394, "1/32": 1394, "1/64": 1392, "1/128": 1393, "1/256": 1391},
    "s1494": {"1/16": 1416, "1/32": 1415, "1/64": 1416, "1/128": 1418, "1/256": 1417},
    "s5378": {"1/16": 3204, "1/32": 3159, "1/64": 3175, "1/128": 3175, "1/256": 3192},
}

#: Table 5 — detected faults: coding (bin/non) x population (16/32/64).
TABLE5: Dict[str, Dict[Tuple[str, int], float]] = {
    "s298": {("bin", 16): 264.6, ("non", 16): 263.6, ("bin", 32): 264.7,
             ("non", 32): 264.4, ("bin", 64): 264.8, ("non", 64): 264.9},
    "s386": {("bin", 16): 294.4, ("non", 16): 294.0, ("bin", 32): 295.2,
             ("non", 32): 294.8, ("bin", 64): 296.5, ("non", 64): 295.8},
    "s526": {("bin", 16): 416.1, ("non", 16): 416.1, ("bin", 32): 416.7,
             ("non", 32): 416.7, ("bin", 64): 417.4, ("non", 64): 417.0},
    "s820": {("bin", 16): 507.4, ("non", 16): 508.3, ("bin", 32): 516.5,
             ("non", 32): 508.4, ("bin", 64): 509.0, ("non", 64): 510.0},
    "s832": {("bin", 16): 533.0, ("non", 16): 534.6, ("bin", 32): 539.0,
             ("non", 32): 533.5, ("bin", 64): 533.4, ("non", 64): 534.2},
    "s1196": {("bin", 16): 1228, ("non", 16): 1223, ("bin", 32): 1232,
              ("non", 32): 1228, ("bin", 64): 1233, ("non", 64): 1229},
    "s1238": {("bin", 16): 1273, ("non", 16): 1262, ("bin", 32): 1274,
              ("non", 32): 1267, ("bin", 64): 1277, ("non", 64): 1273},
    "s1423": {("bin", 16): 1196, ("non", 16): 1202, ("bin", 32): 1222,
              ("non", 32): 1219, ("bin", 64): 1246, ("non", 64): 1266},
    "s1488": {("bin", 16): 1389, ("non", 16): 1386, ("bin", 32): 1392,
              ("non", 32): 1387, ("bin", 64): 1396, ("non", 64): 1395},
    "s1494": {("bin", 16): 1416, ("non", 16): 1413, ("bin", 32): 1416,
              ("non", 32): 1416, ("bin", 64): 1417, ("non", 64): 1415},
    "s5378": {("bin", 16): 3162, ("non", 16): 3165, ("bin", 32): 3175,
              ("non", 32): 3190, ("bin", 64): 3179, ("non", 64): 3205},
}

#: Table 6 — fault sampling: per sample size (100/200/300 faults):
#: (detected, vectors, speedup vs full fault list).
TABLE6: Dict[str, Dict[int, Tuple[float, int, float]]] = {
    "s298": {100: (264.5, 161, 1.05), 200: (264.7, 168, 0.99), 300: (265.0, 179, 0.95)},
    "s382": {100: (348.1, 295, 1.06), 200: (347.2, 277, 1.03), 300: (347.3, 274, 1.01)},
    "s386": {100: (286.8, 128, 1.16), 200: (297.3, 133, 1.11), 300: (295.3, 143, 1.07)},
    "s526": {100: (417.0, 293, 1.79), 200: (417.4, 314, 1.04), 300: (418.8, 295, 1.04)},
    "s820": {100: (494.7, 144, 2.75), 200: (536.8, 157, 1.77), 300: (532.2, 155, 1.45)},
    "s832": {100: (476.4, 137, 2.51), 200: (526.3, 158, 1.70), 300: (546.2, 156, 1.40)},
    "s1196": {100: (1230, 373, 1.55), 200: (1231, 384, 1.08), 300: (1230, 348, 1.12)},
    "s1238": {100: (1269, 389, 1.26), 200: (1274, 375, 1.19), 300: (1274, 381, 1.18)},
    "s1423": {100: (1245, 619, 3.28), 200: (1255, 587, 2.32), 300: (1287, 778, 1.11)},
    "s1488": {100: (1153, 211, 2.14), 200: (1394, 272, 1.03), 300: (1378, 233, 1.12)},
    "s1494": {100: (1303, 267, 1.65), 200: (1370, 235, 1.17), 300: (1400, 242, 1.10)},
    "s5378": {100: (3048, 394, 6.31), 200: (3095, 409, 5.24), 300: (3130, 450, 4.25)},
    "s35932": {100: (34839, 234, 4.53), 200: (34854, 185, 4.74), 300: (34926, 203, 4.35)},
}

#: Table 7 — overlapping populations: per generation gap label:
#: (detected, vectors, speedup vs nonoverlapping).
TABLE7: Dict[str, Dict[str, Tuple[float, int, float]]] = {
    "s298": {"2/N": (263.9, 205, 1.03), "1/4": (264.4, 183, 1.14),
             "1/2": (264.7, 173, 1.12), "3/4": (265.0, 167, 1.27)},
    "s382": {"2/N": (348.1, 270, 1.24), "1/4": (347.8, 277, 1.23),
             "1/2": (346.7, 283, 1.17), "3/4": (347.0, 270, 1.28)},
    "s386": {"2/N": (294.4, 137, 1.28), "1/4": (294.9, 134, 1.34),
             "1/2": (295.5, 142, 1.26), "3/4": (296.8, 144, 1.30)},
    "s526": {"2/N": (416.7, 306, 1.20), "1/4": (420.4, 299, 1.21),
             "1/2": (417.2, 298, 1.13), "3/4": (418.1, 301, 1.25)},
    "s820": {"2/N": (520.2, 155, 1.28), "1/4": (522.4, 144, 1.37),
             "1/2": (519.5, 141, 1.34), "3/4": (500.1, 138, 1.38)},
    "s832": {"2/N": (512.2, 140, 1.22), "1/4": (508.0, 154, 1.14),
             "1/2": (521.9, 151, 1.14), "3/4": (500.7, 142, 1.21)},
    "s1196": {"2/N": (1231, 341, 1.30), "1/4": (1231, 374, 1.20),
              "1/2": (1231, 356, 1.22), "3/4": (1230, 385, 1.20)},
    "s1238": {"2/N": (1271, 388, 1.30), "1/4": (1274, 393, 1.31),
              "1/2": (1274, 378, 1.27), "3/4": (1273, 394, 1.36)},
    "s1423": {"2/N": (1213, 666, 1.23), "1/4": (1216, 677, 1.20),
              "1/2": (1247, 657, 1.14), "3/4": (1239, 669, 1.16)},
    "s1488": {"2/N": (1381, 220, 1.38), "1/4": (1410, 252, 1.33),
              "1/2": (1393, 231, 1.28), "3/4": (1404, 247, 1.35)},
    "s1494": {"2/N": (1410, 256, 1.21), "1/4": (1402, 236, 1.28),
              "1/2": (1402, 250, 1.15), "3/4": (1408, 239, 1.32)},
    "s5378": {"2/N": (3164, 522, 1.12), "1/4": (3170, 560, 1.09),
              "1/2": (3156, 490, 1.23), "3/4": (3193, 500, 1.33)},
}

#: Paper-level summary claims checked by the benchmark suite.
PAPER_CLAIMS = {
    "best_selection": "tournament",
    "best_crossover": "uniform",
    "overlap_speedup_gap_3_4": 1.3,     # average speedup at G = 3/4
    "overlap_coverage_drop_pct": 0.4,   # average coverage drop at G = 3/4
    "test_len_vs_hitec": 0.42,          # GA test length / HITEC test length
    "mutation_effect": "small",         # vs selection/crossover effect
}


def table3_scheme_means() -> Dict[str, float]:
    """Mean detected fraction per selection scheme across Table 3.

    Values are normalized per circuit (detected / best cell for that
    circuit) before averaging so large circuits don't dominate.
    """
    sums: Dict[str, List[float]] = {}
    for circuit, schemes in TABLE3.items():
        best = max(max(xo.values()) for xo in schemes.values())
        for scheme, xo in schemes.items():
            for value in xo.values():
                sums.setdefault(scheme, []).append(value / best)
    return {s: sum(v) / len(v) for s, v in sums.items()}


def table3_crossover_means() -> Dict[str, float]:
    """Mean normalized detections per crossover operator across Table 3."""
    sums: Dict[str, List[float]] = {}
    for circuit, schemes in TABLE3.items():
        best = max(max(xo.values()) for xo in schemes.values())
        for xo_map in schemes.values():
            for xo, value in xo_map.items():
                sums.setdefault(xo, []).append(value / best)
    return {x: sum(v) / len(v) for x, v in sums.items()}
