"""Plain-text table rendering for experiment reports.

Produces the paper's presentation conventions: mean values with the
standard deviation in parentheses, h/m/s time formatting, and aligned
monospace columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def fmt_time(seconds: Optional[float]) -> str:
    """Format seconds in the paper's style: 6.05m, 4.44h, 12.3s."""
    if seconds is None:
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.2f}h"
    if seconds >= 60:
        return f"{seconds / 60:.2f}m"
    return f"{seconds:.2f}s"


def fmt_mean_std(mean: float, std: Optional[float] = None, digits: int = 1) -> str:
    """Format as ``264.7(0.5)`` like the paper's Table 2."""
    if std is None:
        return f"{mean:.{digits}f}"
    return f"{mean:.{digits}f}({std:.{digits}f})"


def mean_std(values: Sequence[float]) -> tuple:
    """Sample mean and (population) standard deviation."""
    if not values:
        return (0.0, 0.0)
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return (mean, math.sqrt(var))


@dataclass
class TextTable:
    """Monospace table builder."""

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    title: Optional[str] = None

    def add_row(self, *cells: Cell) -> None:
        """Append one row (None renders as '-')."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(["-" if c is None else str(c) for c in cells])

    def render(self) -> str:
        """Format the table with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        out = []
        if self.title:
            out.append(self.title)
            out.append("=" * len(self.title))
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        for row in self.rows:
            out.append(line(row))
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
