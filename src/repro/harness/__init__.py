"""Experiment harness: runners, campaign journal, tables, paper data."""

from . import paper_data
from .campaign import (
    CampaignJournal,
    campaign_scope,
    get_active_campaign,
    set_active_campaign,
)
from .runner import (
    AggregateResult,
    SeedFailure,
    compiled_circuit_for,
    run_gatest,
    run_matrix,
    set_default_eval_jobs,
    set_default_seed_jobs,
)
from .tables import TextTable, fmt_mean_std, fmt_time, mean_std

__all__ = [
    "AggregateResult",
    "CampaignJournal",
    "SeedFailure",
    "TextTable",
    "campaign_scope",
    "compiled_circuit_for",
    "fmt_mean_std",
    "fmt_time",
    "get_active_campaign",
    "mean_std",
    "paper_data",
    "run_gatest",
    "run_matrix",
    "set_active_campaign",
    "set_default_eval_jobs",
    "set_default_seed_jobs",
]
