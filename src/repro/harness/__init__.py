"""Experiment harness: runners, campaign journal, tables, paper data."""

from . import paper_data
from .campaign import (
    CampaignJournal,
    campaign_scope,
    get_active_campaign,
    set_active_campaign,
)
from .distributed import (
    DistributedCoordinator,
    campaign_worker_main,
    config_from_json,
    config_to_json,
)
from .runner import (
    AggregateResult,
    SeedFailure,
    compiled_circuit_for,
    get_distributed_backend,
    run_gatest,
    run_matrix,
    set_default_eval_jobs,
    set_default_seed_jobs,
    set_distributed_backend,
)
from .tables import TextTable, fmt_mean_std, fmt_time, mean_std

__all__ = [
    "AggregateResult",
    "CampaignJournal",
    "DistributedCoordinator",
    "SeedFailure",
    "TextTable",
    "campaign_scope",
    "campaign_worker_main",
    "compiled_circuit_for",
    "config_from_json",
    "config_to_json",
    "fmt_mean_std",
    "fmt_time",
    "get_active_campaign",
    "get_distributed_backend",
    "mean_std",
    "paper_data",
    "run_gatest",
    "run_matrix",
    "set_active_campaign",
    "set_default_eval_jobs",
    "set_default_seed_jobs",
    "set_distributed_backend",
]
