"""Experiment harness: runners, table rendering, paper reference data."""

from . import paper_data
from .runner import (
    AggregateResult,
    compiled_circuit_for,
    run_gatest,
    run_matrix,
    set_default_eval_jobs,
)
from .tables import TextTable, fmt_mean_std, fmt_time, mean_std

__all__ = [
    "AggregateResult",
    "TextTable",
    "compiled_circuit_for",
    "fmt_mean_std",
    "fmt_time",
    "mean_std",
    "paper_data",
    "run_gatest",
    "set_default_eval_jobs",
    "run_matrix",
]
