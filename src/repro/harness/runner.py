"""Multi-seed experiment execution and aggregation.

Every table in the paper reports means over ten runs with fresh random
seeds; :func:`run_gatest` mirrors that protocol.  The ``scale``
parameter shrinks the synthetic circuits proportionally (sequential
depth preserved) so the same experiment *structure* can run at laptop
speed; the full-scale numbers are produced by the same code with
``scale=1.0``.

Seed-level parallelism (``jobs > 1``) runs each seed in its *own*
single-worker process pool — fault isolation: one crashed or hung seed
worker cannot take sibling seeds' futures down with it.  Failed seeds
are retried under a :class:`~repro.parallel.resilience.RetryPolicy`
(``REPRO_SEED_TIMEOUT`` / ``REPRO_SEED_RETRIES``) and, once the budget
is exhausted, reported as :class:`SeedFailure` entries on
``AggregateResult.failed_seeds`` — surviving seeds still aggregate.
``REPRO_CHAOS`` injects deterministic worker crashes/hangs at this
level too (docs/ROBUSTNESS.md).  When a campaign journal is active
(:mod:`repro.harness.campaign`), every (circuit, label, seed) cell is
journaled and completed cells are replayed instead of re-run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..circuit.synth import synthesize_named
from ..core.config import TestGenConfig
from ..core.generator import GaTestGenerator
from ..core.results import TestGenResult
from ..parallel.resilience import (
    SEED_RETRIES_ENV,
    SEED_TIMEOUT_ENV,
    ChaosConfig,
    RetryPolicy,
)
from ..parallel.shutdown import reap_pool
from ..sim.codegen import resolve_kernel_name
from ..sim.compile import CompiledCircuit, compile_circuit
from ..telemetry.collector import NullCollector, TelemetryCollector, get_collector
from .campaign import get_active_campaign, result_from_json, result_to_json
from .tables import mean_std


@dataclass(frozen=True)
class SeedFailure:
    """One seed that exhausted its retry budget and produced no result."""

    seed: int
    error: str
    attempts: int


@dataclass
class AggregateResult:
    """Mean/σ statistics over a batch of GATEST runs on one circuit.

    ``failed_seeds`` lists seeds whose workers crashed, hung or errored
    past the retry budget; their runs are absent from ``runs`` and from
    every statistic.  Callers that need all seeds must check it — the
    harness's progress lines and the campaign journal both surface it.
    """

    circuit: str
    total_faults: int
    runs: List[TestGenResult] = field(default_factory=list)
    failed_seeds: List[SeedFailure] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of seeds aggregated."""
        return len(self.runs)

    @property
    def det_mean(self) -> float:
        """Mean detections over the runs."""
        return mean_std([r.detected for r in self.runs])[0]

    @property
    def det_std(self) -> float:
        """Std dev of detections over the runs."""
        return mean_std([r.detected for r in self.runs])[1]

    @property
    def vec_mean(self) -> float:
        """Mean test-set length."""
        return mean_std([r.vectors for r in self.runs])[0]

    @property
    def vec_std(self) -> float:
        """Std dev of test-set length."""
        return mean_std([r.vectors for r in self.runs])[1]

    @property
    def time_mean(self) -> float:
        """Mean wall-clock seconds per run."""
        return mean_std([r.elapsed_seconds for r in self.runs])[0]

    @property
    def coverage_mean(self) -> float:
        """Mean fault coverage fraction."""
        if not self.total_faults:
            return 0.0
        return self.det_mean / self.total_faults


#: Cache of compiled synthetic circuits, keyed by (name, scale).
_circuit_cache: Dict[tuple, CompiledCircuit] = {}

#: Process-wide default for fault-sharded candidate evaluation, applied
#: by :func:`run_gatest` to configs that left ``eval_jobs`` at 1.  Set
#: by ``repro.harness.experiments --eval-jobs`` so every table driver
#: picks it up without threading a parameter through each table builder.
_default_eval_jobs: Optional[int] = None

#: Process-wide default for seed-level parallelism, applied when
#: :func:`run_gatest` is called with ``jobs=None``.  Set by
#: ``repro.harness.experiments --jobs``.
_default_seed_jobs: Optional[int] = None

#: The distributed campaign backend (duck-typed; in practice a
#: :class:`repro.harness.distributed.DistributedCoordinator`).  When set
#: and a campaign journal is active, :func:`run_gatest` routes
#: non-replayed cells through ``backend.run_cells`` instead of local
#: pools.  Installed by ``experiments --workers-from``; kept as a
#: registration seam so this module never imports ``distributed``.
_distributed_backend = None


def set_distributed_backend(backend):
    """Install the distributed campaign backend; returns the previous.

    ``backend`` must provide ``run_cells(circuit_name, compiled,
    config, seeds, *, scale, label, digest) -> (results, failures)``
    with every returned cell already journaled (``None`` uninstalls).
    """
    global _distributed_backend
    previous = _distributed_backend
    _distributed_backend = backend
    return previous


def get_distributed_backend():
    """The installed distributed backend, or ``None`` (the default)."""
    return _distributed_backend


def set_default_eval_jobs(jobs: Optional[int]) -> Optional[int]:
    """Install the harness-wide ``eval_jobs`` default; returns the old one.

    ``None`` (the initial value) leaves configs untouched.  Seed-level
    process parallelism (``run_gatest(jobs=...)``) and candidate-level
    sharding multiply: with both active, expect ``jobs * eval_jobs``
    worker processes — see docs/PERFORMANCE.md before combining them.
    The default is resolved into the config *before* seeds are shipped
    to seed workers, so it applies inside the pool as well.
    """
    global _default_eval_jobs
    previous = _default_eval_jobs
    _default_eval_jobs = jobs
    return previous


def set_default_seed_jobs(jobs: Optional[int]) -> Optional[int]:
    """Install the harness-wide seed-parallelism default; returns the old.

    Applies to every :func:`run_gatest` call that leaves ``jobs`` at
    ``None`` — which is how ``experiments --jobs N`` parallelizes whole
    tables without threading a parameter through each table builder.
    """
    global _default_seed_jobs
    previous = _default_seed_jobs
    _default_seed_jobs = jobs
    return previous


def compiled_circuit_for(name: str, scale: float = 1.0) -> CompiledCircuit:
    """Synthesize (cached) and compile the stand-in for ``name``."""
    key = (name, scale)
    if key not in _circuit_cache:
        _circuit_cache[key] = compile_circuit(synthesize_named(name, scale=scale))
    return _circuit_cache[key]


def _run_one_seed(
    compiled: CompiledCircuit,
    config: TestGenConfig,
    seed: int,
    collector: Optional[NullCollector] = None,
) -> TestGenResult:
    """Run one seed in this process (the serial / degraded path)."""
    return GaTestGenerator(
        compiled, replace(config, seed=seed), collector=collector
    ).run()


def _seed_worker(
    compiled: CompiledCircuit,
    config: TestGenConfig,
    seed: int,
    task_seq: int,
    collect: bool,
    kernel_artifact: Optional[Tuple[str, str]] = None,
) -> Tuple[TestGenResult, Optional[list]]:
    """Pool worker for one seed (module-level so it pickles).

    Honors ``REPRO_CHAOS`` exactly like the evaluator's shard workers:
    the injected failure is a pure function of ``(chaos seed,
    task_seq)``, and the parent hands every attempt a fresh monotonic
    ``task_seq`` — so chaos runs replay deterministically and a retried
    seed draws a fresh decision.  When ``collect`` is set the worker
    records into its own :class:`TelemetryCollector` and ships the
    records back with the result for the parent to merge under a
    ``worker.<seed>`` scope.  ``kernel_artifact`` is a parent-shipped
    compiled C kernel ``(digest, path)`` — registered before the run so
    this process loads it instead of recompiling (same contract as
    :func:`repro.parallel.worker.init_worker`).
    """
    chaos = ChaosConfig.from_env()
    if chaos is not None:
        action = chaos.decide(task_seq)
        if action == "crash":
            os._exit(75)
        elif action == "hang":
            time.sleep(chaos.hang_seconds)
    if kernel_artifact is not None:
        from ..sim import ckernel

        ckernel.preload_artifact(*kernel_artifact)
    collector = TelemetryCollector(source="repro.harness.worker") if collect else None
    result = _run_one_seed(compiled, config, seed, collector)
    return result, (collector.records() if collect else None)


def _kill_seed_pool(pool) -> None:
    """Hard-stop one seed's pool: cancel, terminate, reap.

    Shares the evaluator's teardown (:func:`reap_pool`) — a hung worker
    never responds to a graceful shutdown, and an abandoned one would
    orphan.
    """
    reap_pool(pool)


def _run_seed_pool(
    compiled: CompiledCircuit,
    config: TestGenConfig,
    seeds: Sequence[int],
    jobs: int,
    collector: NullCollector,
    policy: Optional[RetryPolicy] = None,
    kernel_artifact: Optional[Tuple[str, str]] = None,
) -> Tuple[Dict[int, Tuple[TestGenResult, Optional[list]]], Dict[int, SeedFailure]]:
    """Fault-isolated, self-healing multi-seed fan-out.

    Each seed runs in its own single-worker pool, at most ``jobs``
    concurrently — so one seed's crash (``BrokenProcessPool``) or hang
    (per-seed ``task_timeout``) is *its* failure alone; sibling seeds'
    futures are untouched.  A failed seed is retried up to
    ``policy.max_retries`` times with backoff, each attempt in a fresh
    pool (counted by ``harness.seed.retries``); exhaustion yields a
    :class:`SeedFailure`.  If pools cannot be created at all the pool
    path degrades stickily to in-process execution for every seed still
    outstanding.  Returns ``(results, failures)`` keyed by seed, where
    each result is ``(TestGenResult, shipped-back trace records or
    None)``.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    # Validate the chaos spec eagerly, in the parent: a malformed
    # REPRO_CHAOS raises one clear ValueError here instead of surfacing
    # as a cryptic BrokenProcessPool from every worker at once.
    ChaosConfig.from_env()
    if policy is None:
        policy = RetryPolicy.from_env(
            timeout_env=SEED_TIMEOUT_ENV,
            retries_env=SEED_RETRIES_ENV,
            default_timeout=None,
        )
    collect = collector.enabled
    results: Dict[int, Tuple[TestGenResult, Optional[list]]] = {}
    failures: Dict[int, SeedFailure] = {}
    errors: Dict[int, str] = {}
    attempts: Dict[int, int] = {seed: 0 for seed in seeds}
    #: (seed, earliest monotonic start time) — FIFO plus retry backoff.
    pending: List[Tuple[int, float]] = [(seed, 0.0) for seed in seeds]
    #: seed -> (pool, future, deadline or None)
    active: Dict[int, tuple] = {}
    task_seq = 0
    in_process = False

    def retry_or_fail(seed: int) -> None:
        if attempts[seed] <= policy.max_retries:
            if collector.enabled:
                collector.inc("harness.seed.retries")
            backoff = policy.backoff(attempts[seed] - 1)
            pending.append((seed, time.monotonic() + backoff))
        else:
            failures[seed] = SeedFailure(
                seed=seed, error=errors[seed], attempts=attempts[seed]
            )

    try:
        while pending or active:
            now = time.monotonic()
            while pending and len(active) < jobs and not in_process:
                ready = next(
                    (i for i, (_, t0) in enumerate(pending) if now >= t0), None
                )
                if ready is None:
                    break
                seed, _ = pending.pop(ready)
                try:
                    pool = ProcessPoolExecutor(max_workers=1)
                    future = pool.submit(
                        _seed_worker, compiled, config, seed, task_seq,
                        collect, kernel_artifact,
                    )
                except OSError:
                    # No process support here at all: degrade stickily
                    # to in-process execution (drain active first).
                    pending.append((seed, 0.0))
                    in_process = True
                    break
                attempts[seed] += 1
                task_seq += 1
                deadline = (
                    now + policy.task_timeout
                    if policy.task_timeout is not None else None
                )
                active[seed] = (pool, future, deadline)
            if not active:
                if in_process:
                    break
                time.sleep(0.01)  # only retry backoffs outstanding
                continue
            wait(
                [entry[1] for entry in active.values()],
                timeout=0.1,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for seed in list(active):
                pool, future, deadline = active[seed]
                if future.done():
                    try:
                        results[seed] = future.result()
                    except Exception as exc:
                        detail = str(exc).strip() or type(exc).__name__
                        errors[seed] = f"{type(exc).__name__}: {detail}"
                        retry_or_fail(seed)
                    _kill_seed_pool(pool)
                    del active[seed]
                elif deadline is not None and now >= deadline:
                    errors[seed] = (
                        f"seed worker exceeded the {policy.task_timeout:.1f}s "
                        "per-seed timeout (hung or thrashing worker)"
                    )
                    _kill_seed_pool(pool)
                    del active[seed]
                    retry_or_fail(seed)
    finally:
        for pool, _future, _deadline in active.values():
            _kill_seed_pool(pool)

    if in_process:
        if kernel_artifact is not None:
            from ..sim import ckernel

            ckernel.preload_artifact(*kernel_artifact)
        for seed, _ in pending:
            attempts[seed] += 1
            results[seed] = (_run_one_seed(compiled, config, seed, collector), None)

    return results, failures


def run_gatest(
    circuit_name: str,
    config: TestGenConfig,
    seeds: Sequence[int],
    scale: float = 1.0,
    circuit: Optional[Circuit] = None,
    jobs: Optional[int] = None,
    eval_jobs: Optional[int] = None,
    collector: Optional[NullCollector] = None,
    label: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> AggregateResult:
    """Run GATEST over several seeds on one circuit and aggregate.

    ``circuit`` overrides the synthetic stand-in (used by tests with
    bundled circuits).  ``jobs > 1`` fans the seeds out over worker
    processes (one fault-isolated single-worker pool per seed) — GA
    runs over distinct seeds are fully independent, the easy level of
    the parallelism the paper's §VI anticipates; ``jobs=None`` takes
    the :func:`set_default_seed_jobs` harness default (initially 1).
    ``eval_jobs`` shards each run's *candidate evaluation* across worker
    processes instead (within-run parallelism, bit-identical results);
    it overrides both ``config.eval_jobs`` and the harness default set
    with :func:`set_default_eval_jobs`, and is resolved into the config
    before it is shipped to seed workers.  The two levels multiply —
    prefer seed-level ``jobs`` when there are many seeds, ``eval_jobs``
    when a single run's wall clock is what matters.

    Crashed or hung seed workers are retried per ``retry`` (default:
    :class:`RetryPolicy` from ``REPRO_SEED_TIMEOUT`` /
    ``REPRO_SEED_RETRIES``); seeds that exhaust the budget land on
    ``AggregateResult.failed_seeds`` while surviving seeds aggregate
    normally.

    ``collector`` (default: the installed telemetry collector) wraps the
    batch in a ``harness.run_gatest`` span and is handed to every
    serial-path generator; when telemetry is enabled, pool workers
    record into their own collectors and their traces are shipped back
    and merged under ``worker.<seed>`` scopes.

    With an active campaign journal (:mod:`repro.harness.campaign`),
    each (circuit, ``label``, seed) cell is looked up first — completed
    cells are replayed bit-identically instead of re-run — and journaled
    after execution.  ``label`` defaults to a prefix of the config
    digest, so direct calls journal correctly too.
    """
    if collector is None:
        collector = get_collector()
    if jobs is None:
        jobs = _default_seed_jobs if _default_seed_jobs is not None else 1
    if eval_jobs is None:
        eval_jobs = _default_eval_jobs
    if eval_jobs is not None and eval_jobs != config.eval_jobs:
        config = replace(config, eval_jobs=eval_jobs)
    compiled = (
        compile_circuit(circuit) if circuit is not None
        else compiled_circuit_for(circuit_name, scale)
    )
    digest = config.digest()
    if label is None:
        label = digest[:12]
    campaign = get_active_campaign()

    replayed: Dict[int, TestGenResult] = {}
    to_run: List[int] = []
    for seed in seeds:
        data = (
            campaign.lookup(circuit_name, label, seed, scale, digest)
            if campaign is not None else None
        )
        if data is not None:
            replayed[seed] = result_from_json(data)
        else:
            to_run.append(seed)

    runs_by_seed: Dict[int, TestGenResult] = dict(replayed)
    failures: Dict[int, SeedFailure] = {}
    backend = get_distributed_backend()
    journaled_by_backend = False
    with collector.span(
        "harness.run_gatest", circuit=circuit_name, seeds=len(seeds), jobs=jobs
    ):
        if (backend is not None and campaign is not None
                and circuit is None and to_run):
            # Distributed campaign: the backend leases the cells to
            # worker hosts (degrading to local execution if they all
            # fail) and every returned cell is already sealed in the
            # journal — worker-side for remote cells, coordinator-side
            # for degraded ones — so none may be journaled again here.
            dist_results, failures = backend.run_cells(
                circuit_name, compiled, config, to_run,
                scale=scale, label=label, digest=digest,
            )
            runs_by_seed.update(dist_results)
            replayed.update(dist_results)
            journaled_by_backend = True
        elif jobs > 1 and len(to_run) > 1:
            # Ship the *resolved* kernel name so workers pick the same
            # simulation backend as the parent would, even when it came
            # from REPRO_SIM_KERNEL and the worker environment differs.
            worker_config = config
            resolved = resolve_kernel_name(config.sim_kernel)
            if resolved != config.sim_kernel:
                worker_config = replace(config, sim_kernel=resolved)
            pool_results, failures = _run_seed_pool(
                compiled, worker_config, to_run, jobs, collector, retry
            )
            for seed in to_run:
                if seed not in pool_results:
                    continue
                result, records = pool_results[seed]
                if records is not None:
                    collector.merge_worker_trace(f"worker.{seed}", records)
                runs_by_seed[seed] = result
        else:
            for seed in to_run:
                runs_by_seed[seed] = _run_one_seed(compiled, config, seed, collector)

    agg = AggregateResult(circuit=circuit_name, total_faults=0)
    for seed in seeds:
        if seed in runs_by_seed:
            result = runs_by_seed[seed]
            agg.runs.append(result)
            if campaign is not None and seed not in replayed:
                campaign.record_cell(
                    circuit_name, label, seed, scale, digest,
                    result=result_to_json(result),
                )
        else:
            failure = failures[seed]
            agg.failed_seeds.append(failure)
            if campaign is not None and not journaled_by_backend:
                campaign.record_cell(
                    circuit_name, label, seed, scale, digest,
                    error=failure.error, attempts=failure.attempts,
                )
    totals = {r.total_faults for r in agg.runs}
    if len(totals) > 1:
        raise RuntimeError(
            f"runs on {circuit_name!r} disagree on the collapsed fault-list "
            f"size ({sorted(totals)}); seeds of one aggregate must share a "
            "circuit and fault list — refusing to aggregate"
        )
    agg.total_faults = totals.pop() if totals else 0
    return agg


def run_matrix(
    circuit_names: Sequence[str],
    configs: Dict[str, TestGenConfig],
    seeds: Sequence[int],
    scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
    collector: Optional[NullCollector] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, AggregateResult]]:
    """Run a {config label -> config} matrix over several circuits.

    Returns ``results[circuit][label]``.  ``progress`` (if given) is
    called with a human-readable line after each cell completes — the
    full-scale tables take a while and silence reads as a hang; failed
    seeds are flagged on the line.  Each cell runs inside a
    ``harness.cell`` telemetry span; the progress line's elapsed time is
    that span's, so the printed and traced timings are one measurement.
    ``jobs`` is passed through to :func:`run_gatest`.  With an active
    campaign journal the matrix's circuits and config digests are bound
    into the journal up front, so a resume against changed configs is
    refused before any work runs.
    """
    if collector is None:
        collector = get_collector()
    campaign = get_active_campaign()
    if campaign is not None:
        campaign.bind(
            list(circuit_names),
            {lbl: cfg.digest() for lbl, cfg in configs.items()},
        )
    results: Dict[str, Dict[str, AggregateResult]] = {}
    for name in circuit_names:
        results[name] = {}
        for label, config in configs.items():
            with collector.span("harness.cell", circuit=name, label=label) as cell:
                agg = run_gatest(name, config, seeds, scale=scale,
                                 collector=collector, jobs=jobs, label=label)
            results[name][label] = agg
            if progress is not None:
                failed = (
                    f" FAILED seeds {[f.seed for f in agg.failed_seeds]}"
                    if agg.failed_seeds else ""
                )
                progress(
                    f"{name} [{label}] det={agg.det_mean:.1f}/{agg.total_faults}"
                    f" vec={agg.vec_mean:.0f}"
                    f" ({cell.elapsed:.1f}s){failed}"
                )
    return results
