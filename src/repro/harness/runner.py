"""Multi-seed experiment execution and aggregation.

Every table in the paper reports means over ten runs with fresh random
seeds; :func:`run_gatest` mirrors that protocol.  The ``scale``
parameter shrinks the synthetic circuits proportionally (sequential
depth preserved) so the same experiment *structure* can run at laptop
speed; the full-scale numbers are produced by the same code with
``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..circuit.synth import synthesize_named
from ..core.config import TestGenConfig
from ..core.generator import GaTestGenerator
from ..core.results import TestGenResult
from ..sim.compile import CompiledCircuit, compile_circuit
from ..telemetry.collector import NullCollector, get_collector
from .tables import mean_std


@dataclass
class AggregateResult:
    """Mean/σ statistics over a batch of GATEST runs on one circuit."""

    circuit: str
    total_faults: int
    runs: List[TestGenResult] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of seeds aggregated."""
        return len(self.runs)

    @property
    def det_mean(self) -> float:
        """Mean detections over the runs."""
        return mean_std([r.detected for r in self.runs])[0]

    @property
    def det_std(self) -> float:
        """Std dev of detections over the runs."""
        return mean_std([r.detected for r in self.runs])[1]

    @property
    def vec_mean(self) -> float:
        """Mean test-set length."""
        return mean_std([r.vectors for r in self.runs])[0]

    @property
    def vec_std(self) -> float:
        """Std dev of test-set length."""
        return mean_std([r.vectors for r in self.runs])[1]

    @property
    def time_mean(self) -> float:
        """Mean wall-clock seconds per run."""
        return mean_std([r.elapsed_seconds for r in self.runs])[0]

    @property
    def coverage_mean(self) -> float:
        """Mean fault coverage fraction."""
        if not self.total_faults:
            return 0.0
        return self.det_mean / self.total_faults


#: Cache of compiled synthetic circuits, keyed by (name, scale).
_circuit_cache: Dict[tuple, CompiledCircuit] = {}

#: Process-wide default for fault-sharded candidate evaluation, applied
#: by :func:`run_gatest` to configs that left ``eval_jobs`` at 1.  Set
#: by ``repro.harness.experiments --eval-jobs`` so every table driver
#: picks it up without threading a parameter through each table builder.
_default_eval_jobs: Optional[int] = None


def set_default_eval_jobs(jobs: Optional[int]) -> Optional[int]:
    """Install the harness-wide ``eval_jobs`` default; returns the old one.

    ``None`` (the initial value) leaves configs untouched.  Seed-level
    process parallelism (``run_gatest(jobs=...)``) and candidate-level
    sharding multiply: with both active, expect ``jobs * eval_jobs``
    worker processes — see docs/PERFORMANCE.md before combining them.
    """
    global _default_eval_jobs
    previous = _default_eval_jobs
    _default_eval_jobs = jobs
    return previous


def compiled_circuit_for(name: str, scale: float = 1.0) -> CompiledCircuit:
    """Synthesize (cached) and compile the stand-in for ``name``."""
    key = (name, scale)
    if key not in _circuit_cache:
        _circuit_cache[key] = compile_circuit(synthesize_named(name, scale=scale))
    return _circuit_cache[key]


def _run_one_seed(
    compiled: CompiledCircuit,
    config: TestGenConfig,
    seed: int,
    collector: Optional[NullCollector] = None,
) -> TestGenResult:
    """Worker for parallel multi-seed runs (must be module-level so it
    pickles for :mod:`concurrent.futures`)."""
    from dataclasses import replace

    return GaTestGenerator(
        compiled, replace(config, seed=seed), collector=collector
    ).run()


def run_gatest(
    circuit_name: str,
    config: TestGenConfig,
    seeds: Sequence[int],
    scale: float = 1.0,
    circuit: Optional[Circuit] = None,
    jobs: int = 1,
    eval_jobs: Optional[int] = None,
    collector: Optional[NullCollector] = None,
) -> AggregateResult:
    """Run GATEST over several seeds on one circuit and aggregate.

    ``circuit`` overrides the synthetic stand-in (used by tests with
    bundled circuits).  ``jobs > 1`` fans the seeds out over worker
    processes — GA runs over distinct seeds are fully independent, the
    easy level of the parallelism the paper's §VI anticipates.
    ``eval_jobs`` shards each run's *candidate evaluation* across worker
    processes instead (within-run parallelism, bit-identical results);
    it overrides both ``config.eval_jobs`` and the harness default set
    with :func:`set_default_eval_jobs`.  The two levels multiply —
    prefer seed-level ``jobs`` when there are many seeds, ``eval_jobs``
    when a single run's wall clock is what matters.

    ``collector`` (default: the installed telemetry collector) wraps the
    batch in a ``harness.run_gatest`` span and is handed to every
    serial-path generator; worker *processes* record into their own
    (null) collectors — per-seed traces do not cross the pool boundary.
    """
    if collector is None:
        collector = get_collector()
    if eval_jobs is None:
        eval_jobs = _default_eval_jobs
    if eval_jobs is not None and eval_jobs != config.eval_jobs:
        from dataclasses import replace

        config = replace(config, eval_jobs=eval_jobs)
    compiled = (
        compile_circuit(circuit) if circuit is not None
        else compiled_circuit_for(circuit_name, scale)
    )
    agg = AggregateResult(circuit=circuit_name, total_faults=0)
    with collector.span(
        "harness.run_gatest", circuit=circuit_name, seeds=len(seeds), jobs=jobs
    ):
        if jobs > 1 and len(seeds) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
                results = list(
                    pool.map(_run_one_seed, [compiled] * len(seeds),
                             [config] * len(seeds), list(seeds))
                )
        else:
            results = [
                _run_one_seed(compiled, config, seed, collector)
                for seed in seeds
            ]
    for result in results:
        agg.total_faults = result.total_faults
        agg.runs.append(result)
    return agg


def run_matrix(
    circuit_names: Sequence[str],
    configs: Dict[str, TestGenConfig],
    seeds: Sequence[int],
    scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
    collector: Optional[NullCollector] = None,
) -> Dict[str, Dict[str, AggregateResult]]:
    """Run a {config label -> config} matrix over several circuits.

    Returns ``results[circuit][label]``.  ``progress`` (if given) is
    called with a human-readable line after each cell completes — the
    full-scale tables take a while and silence reads as a hang.  Each
    cell runs inside a ``harness.cell`` telemetry span; the progress
    line's elapsed time is that span's, so the printed and traced
    timings are one measurement.
    """
    if collector is None:
        collector = get_collector()
    results: Dict[str, Dict[str, AggregateResult]] = {}
    for name in circuit_names:
        results[name] = {}
        for label, config in configs.items():
            with collector.span("harness.cell", circuit=name, label=label) as cell:
                agg = run_gatest(name, config, seeds, scale=scale,
                                 collector=collector)
            results[name][label] = agg
            if progress is not None:
                progress(
                    f"{name} [{label}] det={agg.det_mean:.1f}/{agg.total_faults}"
                    f" vec={agg.vec_mean:.0f}"
                    f" ({cell.elapsed:.1f}s)"
                )
    return results
