"""Lease-based multi-host campaign execution over the sealed journal.

The sealed JSONL campaign journal (:mod:`repro.harness.campaign`) is
already an append-only, integrity-checked ledger; this module promotes
it to a *coordination substrate* for multiple hosts:

* The **coordinator** (:class:`DistributedCoordinator`, wired in by
  ``experiments --workers-from HOSTS``) binds the matrix exactly as a
  single-host campaign would, then — instead of executing cells — seals
  TTL-stamped **lease records** granting each (circuit, label, seed)
  cell to a worker host, and polls the journal for sealed results.
* **Workers** (``gatest campaign-worker --journal J --host NAME``)
  attach to the same journal in append mode, claim leases addressed to
  their host name, execute each cell through the PR 5 per-seed
  self-healing pool (same chaos hooks, same retry policy, same
  telemetry shipback), and seal the result back into the journal.
* Expired leases (host crash, hang, partition — anything that keeps a
  result from appearing before ``expires_at``) are **reaped**: the
  coordinator re-leases the cell to the next host, bounded by a
  :class:`~repro.parallel.resilience.RetryPolicy` read from
  ``REPRO_LEASE_TTL`` / ``REPRO_LEASE_RETRIES``.  Exhausting the
  re-lease budget triggers **sticky degradation**: the coordinator runs
  that cell — and every cell still outstanding — locally in-process, so
  a campaign always completes even with zero live workers.

Because every cell's result is a pure function of (circuit, config,
seed), *who* executes a cell never changes *what* it produces: a matrix
run on N hosts, or SIGKILLed anywhere and resumed, emits byte-identical
tables to the serial run.  Duplicate results (a host that stalled past
its TTL sealing late, racing the re-leased peer) are arbitrated
first-sealed-ok-wins by the journal.

Deterministic host-level chaos (``REPRO_CHAOS=lease-stall:<p>`` /
``worker-vanish:<p>``) injects exactly these failures in tests: a
stalled worker sleeps past its lease TTL and then seals anyway
(exercising reap + duplicate arbitration), a vanished worker dies
mid-cell (exercising reap + re-lease).

Counters (docs/TELEMETRY.md): ``campaign.lease.granted`` / ``.expired``
/ ``.stolen`` / ``.healed`` / ``.degraded``; worker telemetry merges
under composed ``host.<name>.worker.<seed>`` scopes.
"""

from __future__ import annotations

import os
import time
from dataclasses import fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.checkpoint import CheckpointError
from ..core.config import TestGenConfig
from ..core.results import TestGenResult
from ..parallel.resilience import (
    DEFAULT_LEASE_TTL,
    LEASE_RETRIES_ENV,
    LEASE_TTL_ENV,
    ChaosConfig,
    RetryPolicy,
)
from ..sim.codegen import kernel_for, resolve_kernel_name
from ..telemetry.collector import NullCollector, TelemetryCollector
from .campaign import CampaignJournal, result_from_json, result_to_json
from .runner import (
    SeedFailure,
    _run_one_seed,
    _run_seed_pool,
    compiled_circuit_for,
)


# ----------------------------------------------------------------------
# TestGenConfig <-> JSON (leases carry the full execution-resolved config)
# ----------------------------------------------------------------------


def config_to_json(config: TestGenConfig) -> dict:
    """A JSON rendering of *every* config field, execution knobs included.

    Unlike :meth:`TestGenConfig.digest` this keeps ``eval_jobs``,
    ``eval_cache``, ``sim_kernel`` and the resilience knobs: a lease
    must reproduce the coordinator's *execution environment* on the
    worker host, not just the result-affecting identity.
    """
    data = {}
    for f in fields(config):
        value = getattr(config, f.name)
        data[f.name] = list(value) if isinstance(value, tuple) else value
    return data


def config_from_json(data: dict) -> TestGenConfig:
    """Rebuild a :class:`TestGenConfig` from :func:`config_to_json`."""
    known = {f.name for f in fields(TestGenConfig)}
    kwargs = {}
    for name, value in data.items():
        if name not in known:
            raise CheckpointError(
                f"lease config carries unknown field {name!r} "
                "(journal written by an incompatible build?)"
            )
        kwargs[name] = tuple(value) if isinstance(value, list) else value
    return TestGenConfig(**kwargs)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class DistributedCoordinator:
    """Grants leases, reaps expiries, accepts sealed results.

    Installed as ``run_gatest``'s distributed backend
    (:func:`repro.harness.runner.set_distributed_backend`); the harness
    calls :meth:`run_cells` once per (circuit, label) aggregate with
    the seeds that still need execution.

    ``policy.task_timeout`` is the lease TTL (``REPRO_LEASE_TTL``,
    default :data:`~repro.parallel.resilience.DEFAULT_LEASE_TTL`);
    ``policy.max_retries`` is the re-lease budget per cell
    (``REPRO_LEASE_RETRIES``) before sticky local degradation.
    """

    def __init__(
        self,
        journal: CampaignJournal,
        hosts: Sequence[str],
        *,
        poll: float = 0.05,
        policy: Optional[RetryPolicy] = None,
        collector=None,
    ) -> None:
        if not journal.append_mode:
            raise ValueError(
                "a distributed campaign needs an append-mode journal "
                "(multi-writer); pass append_mode=True to CampaignJournal"
            )
        if not hosts:
            raise ValueError("at least one worker host name is required")
        self.journal = journal
        self.hosts = [str(h) for h in hosts]
        self.poll = poll
        self.policy = policy if policy is not None else RetryPolicy.from_env(
            timeout_env=LEASE_TTL_ENV,
            retries_env=LEASE_RETRIES_ENV,
            default_timeout=DEFAULT_LEASE_TTL,
        )
        self.collector = collector if collector is not None else journal.collector
        self.degraded = False
        self._next_host = 0

    # -- lease bookkeeping ----------------------------------------------

    def _pick_host(self) -> str:
        host = self.hosts[self._next_host % len(self.hosts)]
        self._next_host += 1
        return host

    def _ttl(self) -> float:
        timeout = self.policy.task_timeout
        return timeout if timeout is not None else DEFAULT_LEASE_TTL

    # -- execution -------------------------------------------------------

    def run_cells(
        self,
        circuit_name: str,
        compiled,
        config: TestGenConfig,
        seeds: Sequence[int],
        *,
        scale: float,
        label: str,
        digest: str,
    ) -> Tuple[Dict[int, TestGenResult], Dict[int, SeedFailure]]:
        """Execute the given seeds' cells through worker hosts.

        Returns ``(results, failures)`` keyed by seed, exactly like the
        seed pool — but every cell is *already journaled* when this
        returns (workers seal theirs, degraded local runs are sealed
        here), so the caller must not journal them again.
        """
        collect = self.collector.enabled
        worker_config = config
        resolved = resolve_kernel_name(config.sim_kernel)
        if resolved != config.sim_kernel:
            from dataclasses import replace

            worker_config = replace(config, sim_kernel=resolved)
        kernel_artifact = self._kernel_payload(compiled, resolved)
        config_json = config_to_json(worker_config)

        #: per-seed lease state: expiry count + whether we ran it locally
        expiries: Dict[int, int] = {seed: 0 for seed in seeds}
        ran_locally: Dict[int, bool] = {seed: False for seed in seeds}
        results: Dict[int, TestGenResult] = {}
        failures: Dict[int, SeedFailure] = {}

        outstanding = [int(s) for s in seeds]
        if not self.degraded:
            for seed in outstanding:
                existing = self.journal.result_for(
                    circuit_name, label, seed, scale
                )
                # Lease fresh cells and stale failures (a failed record
                # older than this grant is superseded by it — the
                # re-execution path of a resumed campaign).
                if existing is None or existing.get("status") != "ok":
                    self.journal.grant_lease(
                        circuit_name, label, seed, scale, digest,
                        host=self._pick_host(), ttl=self._ttl(),
                        config=config_json, kernel_artifact=kernel_artifact,
                        collect=collect,
                    )

        while outstanding:
            self.journal.refresh()
            now = time.time()
            progressed = False
            for seed in list(outstanding):
                record = self.journal.pending_result(
                    circuit_name, label, seed, scale
                )
                if record is not None:
                    self._accept(
                        seed, record, results, failures,
                        expiries[seed], ran_locally[seed],
                    )
                    outstanding.remove(seed)
                    progressed = True
                    continue
                if self.degraded:
                    self._run_local(
                        circuit_name, compiled, config, seed, scale,
                        label, digest,
                    )
                    ran_locally[seed] = True
                    progressed = True
                    continue
                lease = self.journal.lease_for(
                    circuit_name, label, seed, scale
                )
                if lease is None or now < float(lease["expires_at"]):
                    continue
                # Reap: the lease expired with no sealed result.
                expiries[seed] += 1
                self.collector.inc("campaign.lease.expired")
                if expiries[seed] > self.policy.max_retries:
                    # Out of re-lease budget: degrade stickily — this
                    # cell and every later one run locally in-process.
                    self.degraded = True
                    self.collector.inc("campaign.lease.degraded")
                    self._run_local(
                        circuit_name, compiled, config, seed, scale,
                        label, digest,
                    )
                    ran_locally[seed] = True
                    progressed = True
                    continue
                host = self._pick_host()
                if host != lease.get("host"):
                    self.collector.inc("campaign.lease.stolen")
                self.journal.grant_lease(
                    circuit_name, label, seed, scale, digest,
                    host=host, ttl=self._ttl(), config=config_json,
                    kernel_artifact=kernel_artifact, collect=collect,
                )
                progressed = True
            if outstanding and not progressed:
                time.sleep(self.poll)
        return results, failures

    def _kernel_payload(self, compiled, resolved: str) -> Optional[List[str]]:
        """Build the C kernel once here and ship its artifact path.

        Mirrors the evaluator's pool shipping: workers
        ``preload_artifact`` the path and dlopen instead of recompiling
        per host (they still fall back to their own cache/compile when
        the path is unusable — e.g. hosts without a shared filesystem).
        """
        if resolved != "c":
            return None
        try:
            kernel_for(compiled, resolved, self.collector)
            from ..sim import ckernel

            payload = ckernel.shipping_payload(compiled)
        except Exception:
            return None
        return [payload[0], payload[1]] if payload is not None else None

    def _accept(
        self,
        seed: int,
        record: dict,
        results: Dict[int, TestGenResult],
        failures: Dict[int, SeedFailure],
        expiry_count: int,
        ran_locally: bool,
    ) -> None:
        """Fold one sealed cell record into the aggregate-shaped output."""
        if record.get("status") == "ok":
            results[seed] = result_from_json(record["result"])
        else:
            failures[seed] = SeedFailure(
                seed=seed,
                error=record.get("error", "unknown worker failure"),
                attempts=int(record.get("attempts", 1)),
            )
        host = record.get("host")
        if not ran_locally:
            # Local runs already counted via the journal's own
            # record_cell; worker-sealed cells count on the coordinator.
            name = "campaign.cells.completed" if record.get("status") == "ok" \
                else "campaign.cells.failed"
            self.collector.inc(name)
        trace = record.get("trace")
        if trace and self.collector.enabled and host:
            self.collector.merge_worker_trace(f"host.{host}", trace)
        if expiry_count > 0:
            self.collector.inc("campaign.lease.healed")

    def _run_local(
        self,
        circuit_name: str,
        compiled,
        config: TestGenConfig,
        seed: int,
        scale: float,
        label: str,
        digest: str,
    ) -> None:
        """Degraded path: execute one cell in-process and seal it.

        The sealed record is *not* returned directly — the main loop
        re-reads the journal and accepts whatever record won
        arbitration, so a stalled worker that sealed first still wins
        (results are identical either way; the arbitration only decides
        whose trace is attached).
        """
        try:
            result = _run_one_seed(
                compiled, config, seed,
                self.collector if self.collector.enabled else None,
            )
        except Exception as exc:
            detail = str(exc).strip() or type(exc).__name__
            self.journal.record_cell(
                circuit_name, label, seed, scale, digest,
                error=f"{type(exc).__name__}: {detail}", attempts=1,
                host="coordinator",
            )
            return
        self.journal.record_cell(
            circuit_name, label, seed, scale, digest,
            result=result_to_json(result), host="coordinator",
        )

    def close(self) -> None:
        """Seal the campaign-close marker; workers drain and exit."""
        self.journal.record_close()


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------


def _next_claimable(
    journal: CampaignJournal, host: str, now: float
) -> Optional[dict]:
    """The lowest-``seq`` live lease addressed to ``host``, or ``None``.

    A lease is claimable iff it is the cell's *latest* lease, the cell
    has no sealed result yet, and — checked here, at claim time — its
    TTL has not already expired (an expired lease belongs to the
    coordinator's reaper; executing it anyway would only produce a
    duplicate for arbitration to discard).
    """
    candidates = [
        lease for lease in journal.leases()
        if lease.get("host") == host
        and float(lease["expires_at"]) > now
        and journal.pending_result(
            lease["circuit"], lease["label"], lease["seed"], lease["scale"]
        ) is None
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda lease: int(lease["seq"]))


def _execute_lease(
    journal: CampaignJournal,
    lease: dict,
    chaos: Optional[ChaosConfig],
    host: str,
) -> None:
    """Run one leased cell through the per-seed pool and seal the result."""
    circuit = lease["circuit"]
    label = lease["label"]
    seed = int(lease["seed"])
    scale = float(lease["scale"])
    digest = lease["config_digest"]
    if chaos is not None:
        action = chaos.decide_host(int(lease["seq"]))
        if action == "worker-vanish":
            os._exit(86)
        elif action == "lease-stall":
            # Sleep past the lease TTL, then proceed anyway: the
            # coordinator reaps and re-leases meanwhile, and this
            # worker's late seal becomes a duplicate for
            # first-sealed-ok-wins arbitration.
            time.sleep(max(0.0, float(lease["expires_at"]) - time.time()) + 0.2)
    config = config_from_json(lease["config"])
    artifact = lease.get("kernel_artifact")
    shipped = None
    if artifact:
        # Register in this process (covers the pool's in-process
        # degrade path) and ship into the seed's pool worker, which is
        # a separate process with its own preload registry.
        shipped = (str(artifact[0]), str(artifact[1]))
        from ..sim import ckernel

        ckernel.preload_artifact(*shipped)
    compiled = compiled_circuit_for(circuit, scale)
    collect = bool(lease.get("collect"))
    cellcol = (
        TelemetryCollector(source="repro.harness.campaign-worker")
        if collect else NullCollector()
    )
    results, failures = _run_seed_pool(
        compiled, config, [seed], 1, cellcol, kernel_artifact=shipped
    )
    trace = None
    if seed in results:
        result, records = results[seed]
        if records is not None:
            cellcol.merge_worker_trace(f"worker.{seed}", records)
        if collect:
            trace = cellcol.records()
        journal.record_cell(
            circuit, label, seed, scale, digest,
            result=result_to_json(result), host=host, trace=trace,
        )
    else:
        failure = failures[seed]
        if collect:
            trace = cellcol.records()
        journal.record_cell(
            circuit, label, seed, scale, digest,
            error=failure.error, attempts=failure.attempts,
            host=host, trace=trace,
        )


def campaign_worker_main(
    journal_path: Union[str, Path],
    host: str,
    *,
    poll: float = 0.1,
    max_idle: Optional[float] = 60.0,
    once: bool = False,
) -> int:
    """The ``gatest campaign-worker`` loop: claim, execute, seal, repeat.

    Attaches to ``journal_path`` in append mode (waiting up to
    ``max_idle`` seconds for the coordinator to create it), then polls:
    claim the next live lease addressed to ``host``, execute it through
    the PR 5 self-healing seed pool, seal the result back.  Exits 0
    when the journal carries a campaign-close marker, when ``max_idle``
    seconds pass with nothing claimable, or — with ``once`` — as soon
    as one scan finds nothing claimable.

    A malformed ``REPRO_CHAOS`` spec fails loudly *here*, before any
    lease is touched, instead of deep inside a pool worker.
    """
    chaos = ChaosConfig.from_env()  # raises ValueError on a bad spec
    path = Path(journal_path)
    wait_budget = max_idle if max_idle is not None else 60.0
    deadline = time.monotonic() + wait_budget
    while not path.exists():
        if time.monotonic() >= deadline:
            raise CheckpointError(
                f"campaign journal {path} did not appear within "
                f"{wait_budget:.0f}s; is the coordinator running?"
            )
        time.sleep(poll)
    journal = CampaignJournal.open(path, collector=NullCollector())
    last_activity = time.monotonic()
    while True:
        journal.refresh()
        if journal.closed:
            return 0
        lease = _next_claimable(journal, host, time.time())
        if lease is not None:
            _execute_lease(journal, lease, chaos, host)
            last_activity = time.monotonic()
            continue
        if once:
            return 0
        if (max_idle is not None
                and time.monotonic() - last_activity > max_idle):
            return 0
        time.sleep(poll)
