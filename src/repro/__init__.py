"""GATEST reproduction — GA-based sequential circuit test generation.

Reproduction of E. M. Rudnick, J. H. Patel, G. S. Greenstein and
T. M. Niermann, "Sequential Circuit Test Generation in a Genetic
Algorithm Framework", Proc. Design Automation Conference, 1994.

Top-level convenience imports cover the common workflow::

    from repro import s27, GaTestGenerator, TestGenConfig
    result = GaTestGenerator(s27(), TestGenConfig(seed=1)).run()
    print(result.fault_coverage, len(result.test_sequence))
"""

__version__ = "1.0.0"

from .circuit import (  # noqa: F401
    Circuit,
    GateType,
    load_bench,
    parse_bench,
    s27,
    synthesize_named,
)

__all__ = [
    "Circuit",
    "GateType",
    "__version__",
    "load_bench",
    "parse_bench",
    "s27",
    "synthesize_named",
]


def _late_imports() -> None:
    """Extend the public namespace once the heavier subpackages exist.

    Kept in a function so that partial checkouts (circuit substrate only)
    still import cleanly during bootstrapping.
    """
    global GaTestGenerator, TestGenConfig, FaultSimulator, generate_faults
    global TelemetryCollector
    from .core import GaTestGenerator, TestGenConfig  # noqa: F401
    from .faults import FaultSimulator, generate_faults  # noqa: F401
    from .telemetry import TelemetryCollector  # noqa: F401
    __all__.extend(["GaTestGenerator", "TestGenConfig", "FaultSimulator",
                    "generate_faults", "TelemetryCollector"])


try:
    _late_imports()
except ImportError:  # pragma: no cover - only during bootstrap
    pass
