"""PROOFS-style parallel-fault sequential fault simulator.

The simulator maintains the *committed* circuit state: the fault-free
(good) flip-flop state plus, for every undetected fault, the set of
flip-flops where that fault's machine has diverged from the good
machine.  Faults are simulated in groups of ``word_width``: each bit
slot of the arbitrary-precision bit-plane words carries one faulty
machine, so one pass of bitwise operations over the compiled program
evaluates a whole group per time frame (see DESIGN.md §6).

Two entry points mirror how GATEST uses PROOFS (paper §III/§IV):

* :meth:`FaultSimulator.evaluate` — score a *candidate* test against the
  current state **without committing**: returns the observables every
  phase's fitness function needs (faults detected, fault effects at
  flip-flops, good/faulty event counts, flip-flops initialized).  The
  paper's §IV "store and restore the good and faulty circuit states"
  modification is realized by simply never writing candidate results
  back.
* :meth:`FaultSimulator.commit` — apply the selected test for real:
  advance the good state and every faulty state, mark newly detected
  faults and drop them from the active list.

Explicit :meth:`snapshot` / :meth:`restore` are also provided for
callers that need transactional experimentation beyond that model.

Candidate scoring has two executions with bit-identical results.  The
*serial* path (the default) runs every fault group in-process, one
``word_width``-wide pass per group.  The *sharded* path
(``eval_jobs > 1``) hands :meth:`evaluate` / :meth:`evaluate_batch` to a
:class:`repro.parallel.ParallelEvaluator`: the good-machine pass still
runs here, but the fault groups are split into contiguous shards scored
by a persistent worker-process pool and merged by summation (exact,
because shards are disjoint fault subsets), with a chromosome-level
memo cache in front keyed by ``(candidate bits, state_epoch)``.  The
``state_epoch`` counter — bumped by every :meth:`commit`,
:meth:`restore` and :meth:`reset` — is what lets that cache prove a
memoized score is still valid.  See docs/ARCHITECTURE.md and
docs/PERFORMANCE.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.gates import X
from ..circuit.netlist import Circuit
from ..sim.codegen import SimKernel, kernel_for
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import GoodState, Vector
from ..telemetry.collector import NullCollector, get_collector
from .collapse import collapsed_fault_list
from .model import STEM, Fault, FaultStatus

DEFAULT_WORD_WIDTH = 64


@dataclass
class CandidateEval:
    """Observables from scoring one candidate test (never committed)."""

    frames: int
    detected: int            # distinct sampled faults detected at a PO
    prop_final: int          # faults with a definite effect at a FF, final frame
    prop_sum: int            # the same, summed over every frame
    faulty_events: int       # (fault, node, frame) triples where faulty != good
    good_events: int         # good-machine node changes, summed over frames
    ffs_set: int             # good-machine FFs definite after the last frame
    ffs_changed: int         # good-machine definite-to-definite FF toggles, last frame
    num_faults_simulated: int
    num_ffs: int


@dataclass
class CommitResult:
    """Outcome of committing a test to the simulator state."""

    frames: int
    detections: List[Tuple[Fault, int]]  # (fault, frame index within this test)
    detected_count: int
    remaining: int


@dataclass
class SimSnapshot:
    """Opaque deep snapshot of all simulator state (§IV store/restore)."""

    good_state: GoodState
    divergence: Dict[int, Dict[int, int]]
    status: List[FaultStatus]
    active: List[int]
    vectors_applied: int


@dataclass
class _GoodTrace:
    """Good-machine results for one candidate, reused by every group."""

    node_planes: List[Tuple[List[int], List[int]]]  # per frame (v1, v0), 1-bit
    ff_states: List[List[int]]                      # per frame next-state scalars
    good_events: int
    ffs_set: int
    ffs_changed: int


class PatternParallelGood:
    """Good-machine companion for :meth:`FaultSimulator.evaluate_batch`.

    Simulates all candidates' fault-free machines pattern-parallel (one
    slot per candidate) and exposes, per frame, the node bit planes the
    faulty mega-pass compares against.  Also accumulates the good-machine
    observables the phase-1/3 fitness functions need.
    """

    def __init__(
        self,
        compiled,
        state: GoodState,
        candidates,
        count_events: bool = False,
        kernel: Optional[SimKernel] = None,
    ) -> None:
        self.compiled = compiled
        self._kernel = kernel if kernel is not None else kernel_for(compiled)
        self.candidates = candidates
        self.count_events = count_events
        n_cand = len(candidates)
        self.n_cand = n_cand
        self.mask = (1 << n_cand) - 1
        n = compiled.num_nodes
        self.v1 = [0] * n
        self.v0 = [0] * n
        self.ff1 = [0] * compiled.num_ffs
        self.ff0 = [0] * compiled.num_ffs
        for k, value in enumerate(state.ff_values):
            if value == 1:
                self.ff1[k] = self.mask
            elif value == 0:
                self.ff0[k] = self.mask
        self._scalars = [list(state.ff_values) for _ in range(n_cand)]
        self.events = [0] * n_cand
        self.ffs_set = [0] * n_cand
        self.ffs_changed = [0] * n_cand

    def step(self, frame: int):
        """Clock one frame; returns (v1, v0) node planes (borrowed refs —
        valid only until the next step call)."""
        compiled = self.compiled
        n_cand = self.n_cand
        v1, v0 = self.v1, self.v0
        old_v1 = list(v1) if self.count_events else None
        old_v0 = list(v0) if self.count_events else None
        for j, pi in enumerate(compiled.pi_ids):
            w1 = 0
            w0 = 0
            bit = 1
            for c in range(n_cand):
                value = self.candidates[c][frame][j]
                if value == 1:
                    w1 |= bit
                elif value == 0:
                    w0 |= bit
                bit <<= 1
            v1[pi], v0[pi] = w1, w0
        for k, ff in enumerate(compiled.ff_ids):
            v1[ff], v0[ff] = self.ff1[k], self.ff0[k]

        self._kernel.eval(v1, v0, self.mask)

        self.ffs_changed = [0] * n_cand
        next_scalars = [[] for _ in range(n_cand)]
        for k, d_node in enumerate(compiled.ff_d_ids):
            n1, n0 = v1[d_node], v0[d_node]
            self.ff1[k], self.ff0[k] = n1, n0
            for c in range(n_cand):
                bit = 1 << c
                if n1 & bit:
                    value = 1
                elif n0 & bit:
                    value = 0
                else:
                    value = X
                prev = self._scalars[c][k]
                if value != X and prev != X and value != prev:
                    self.ffs_changed[c] += 1
                next_scalars[c].append(value)
        self._scalars = next_scalars
        self.ffs_set = [
            sum(1 for value in s if value != X) for s in next_scalars
        ]
        if self.count_events:
            for i in range(compiled.num_nodes):
                diff = (v1[i] ^ old_v1[i]) | (v0[i] ^ old_v0[i])
                if diff:
                    for c in range(n_cand):
                        if (diff >> c) & 1:
                            self.events[c] += 1
        return v1, v0

    def next_state_scalars(self):
        """Per-candidate next-state scalars captured by the last step."""
        return self._scalars


class FaultSimulator:
    """Sequential fault simulator over a collapsed stuck-at fault list.

    ``eval_jobs > 1`` scores candidates fault-shard-parallel over a
    persistent worker pool, and ``eval_cache`` memoizes candidate scores
    per committed-state epoch (default: enabled exactly when
    ``eval_jobs > 1``); both leave every result bit-identical to the
    serial path (see :mod:`repro.parallel`).
    """

    #: Whether candidate scoring may be sharded to pool workers (which
    #: rebuild a plain ``FaultSimulator``); subclasses with extra
    #: per-frame state they cannot ship (e.g. the transition-fault
    #: model) set this False and keep only the evaluation cache.
    _shardable = True

    #: Whether a kernel's fused ``run_batch`` may replace
    #: :meth:`_evaluate_batch_serial`: the fused pass replays exactly
    #: this class's static injection and capture semantics, so any
    #: subclass that changes either must set this False (the transition
    #: model does, although it also overrides :meth:`evaluate_batch`
    #: outright and never reaches the hook).
    _batch_fusable = True

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        faults: Optional[List[Fault]] = None,
        word_width: int = DEFAULT_WORD_WIDTH,
        collector: Optional[NullCollector] = None,
        eval_jobs: int = 1,
        eval_cache: Optional[bool] = None,
        kernel: Optional[str] = None,
        eval_task_timeout: Optional[float] = None,
        eval_retries: Optional[int] = None,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self.compiled = circuit
        else:
            self.compiled = compile_circuit(circuit)
        self.collector = collector if collector is not None else get_collector()
        self._kernel = kernel_for(self.compiled, kernel, collector=self.collector)
        #: Backend actually evaluating the compiled program (``"interp"``
        #: or ``"codegen"``, after any fallback); workers must match it.
        self.kernel_name = self._kernel.name
        if self.collector.enabled:
            self.collector.inc(f"sim.kernel.{self.kernel_name}")
        self.circuit = self.compiled.circuit
        if faults is None:
            faults = collapsed_fault_list(self.circuit)
        if word_width < 1:
            raise ValueError("word_width must be positive")
        if eval_jobs < 1:
            raise ValueError("eval_jobs must be >= 1")
        self.faults: List[Fault] = list(faults)
        self.word_width = word_width
        self._eval_jobs = eval_jobs
        self.status: List[FaultStatus] = [FaultStatus.UNDETECTED] * len(self.faults)
        self.active: List[int] = list(range(len(self.faults)))
        self.good_state: GoodState = GoodState.unknown(self.compiled.num_ffs)
        #: fault index -> {ff index -> scalar faulty value} where the faulty
        #: machine's flip-flop state differs from the good machine's.
        self.divergence: Dict[int, Dict[int, int]] = {}
        self.vectors_applied = 0
        self.detections: List[Tuple[Fault, int]] = []  # (fault, absolute frame)
        #: Monotonic committed-state version: bumped by every commit /
        #: restore / reset, consulted by the evaluation cache.
        self.state_epoch = 0
        #: Per-epoch memo of grouped injection plans (groups + digested
        #: force tables).  They depend only on group membership, which
        #: only changes with the committed state, so every evaluate
        #: against the same sample reuses them.
        self._plan_cache: Dict[Tuple[int, ...], list] = {}
        self._plan_epoch = -1
        if eval_cache is None:
            eval_cache = eval_jobs > 1
        if eval_jobs > 1 or eval_cache:
            from ..parallel.evaluator import ParallelEvaluator
            from ..parallel.resilience import RetryPolicy

            self._parallel: Optional["ParallelEvaluator"] = ParallelEvaluator(
                self, jobs=eval_jobs, cache=eval_cache, collector=self.collector,
                retry=RetryPolicy.from_env(
                    task_timeout=eval_task_timeout, max_retries=eval_retries
                ),
            )
        else:
            self._parallel = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def num_faults(self) -> int:
        """Size of the simulated (collapsed) fault list."""
        return len(self.faults)

    @property
    def detected_count(self) -> int:
        """Faults detected so far by committed tests."""
        return len(self.faults) - len(self.active)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the collapsed fault list."""
        if not self.faults:
            return 0.0
        return self.detected_count / len(self.faults)

    def undetected_faults(self) -> List[Fault]:
        """The remaining (active) faults, in list order."""
        return [self.faults[i] for i in self.active]

    # ------------------------------------------------------------------
    # Snapshot / restore (paper §IV)
    # ------------------------------------------------------------------

    def snapshot(self) -> SimSnapshot:
        """Deep-copy all mutable state (paper §IV store)."""
        return SimSnapshot(
            good_state=self.good_state.copy(),
            divergence={f: dict(d) for f, d in self.divergence.items()},
            status=list(self.status),
            active=list(self.active),
            vectors_applied=self.vectors_applied,
        )

    def restore(self, snap: SimSnapshot) -> None:
        """Roll every piece of state back to a snapshot (paper §IV)."""
        self.good_state = snap.good_state.copy()
        self.divergence = {f: dict(d) for f, d in snap.divergence.items()}
        self.status = list(snap.status)
        self.active = list(snap.active)
        self.vectors_applied = snap.vectors_applied
        self.state_epoch += 1

    def reset(self) -> None:
        """Return to power-up: all faults undetected, all state unknown."""
        self.status = [FaultStatus.UNDETECTED] * len(self.faults)
        self.active = list(range(len(self.faults)))
        self.good_state = GoodState.unknown(self.compiled.num_ffs)
        self.divergence = {}
        self.vectors_applied = 0
        self.detections = []
        self.state_epoch += 1

    def close(self) -> None:
        """Release the parallel evaluator's worker pool, if any.

        Safe to call repeatedly; scoring afterwards still works (the
        pool is recreated on demand).  A no-op on serial simulators.
        """
        if self._parallel is not None:
            self._parallel.close()

    # ------------------------------------------------------------------
    # Checkpoint hooks (run-level checkpoints, see repro.core.checkpoint)
    # ------------------------------------------------------------------

    def _checkpoint_extra(self) -> dict:
        """JSON-safe model-specific state beyond the common snapshot
        fields; subclasses with extra committed state (the transition
        model's previous-frame good values) override both hooks."""
        return {}

    def _restore_checkpoint_extra(self, extra: dict) -> None:
        """Restore what :meth:`_checkpoint_extra` captured."""

    # ------------------------------------------------------------------
    # Good-machine pass
    # ------------------------------------------------------------------

    def _run_good(self, vectors: Sequence[Vector], count_events: bool) -> _GoodTrace:
        compiled = self.compiled
        n = compiled.num_nodes
        v1 = [0] * n
        v0 = [0] * n
        ff_scalars = list(self.good_state.ff_values)
        node_planes: List[Tuple[List[int], List[int]]] = []
        ff_states: List[List[int]] = []
        good_events = 0
        ffs_changed_last = 0
        for vector in vectors:
            old_v1 = list(v1) if count_events else None
            old_v0 = list(v0) if count_events else None
            for j, pi in enumerate(compiled.pi_ids):
                value = vector[j]
                v1[pi] = 1 if value == 1 else 0
                v0[pi] = 1 if value == 0 else 0
            for k, ff in enumerate(compiled.ff_ids):
                value = ff_scalars[k]
                v1[ff] = 1 if value == 1 else 0
                v0[ff] = 1 if value == 0 else 0
            self._kernel.eval(v1, v0, 1)
            next_scalars = []
            ffs_changed_last = 0
            for k, d_node in enumerate(compiled.ff_d_ids):
                if v1[d_node]:
                    value = 1
                elif v0[d_node]:
                    value = 0
                else:
                    value = X
                prev = ff_scalars[k]
                if value != X and prev != X and value != prev:
                    ffs_changed_last += 1
                next_scalars.append(value)
            if count_events:
                good_events += sum(
                    1 for i in range(n) if v1[i] != old_v1[i] or v0[i] != old_v0[i]
                )
            node_planes.append((list(v1), list(v0)))
            ff_states.append(next_scalars)
            ff_scalars = next_scalars
        ffs_set = sum(1 for value in ff_scalars if value != X)
        return _GoodTrace(
            node_planes=node_planes,
            ff_states=ff_states,
            good_events=good_events,
            ffs_set=ffs_set,
            ffs_changed=ffs_changed_last,
        )

    # ------------------------------------------------------------------
    # Fault grouping and injection tables
    # ------------------------------------------------------------------

    def _make_groups(self, fault_ids: Sequence[int]) -> List[List[int]]:
        """Chunk faults into word groups, clustering state-divergent faults.

        Faults whose machines currently agree with the good machine can
        often be skipped frame-to-frame; packing divergent faults
        together maximizes how many groups stay quiescent.

        Kernels with a fused vectorized group runner advertise a
        ``group_width`` (see docs/KERNELS.md); for them groups are
        widened up to that cap — but never below ``eval_jobs`` groups,
        so fault sharding still fans out, and only at the default word
        width (an explicit ``word_width`` is an explicit request).
        Observables are exact per-fault aggregates, so grouping never
        changes results.
        """
        ordered = sorted(
            fault_ids,
            key=lambda f: (0 if self.divergence.get(f) else 1, self.faults[f].node),
        )
        width = self.word_width
        cap = self._kernel.group_width
        if cap and width == DEFAULT_WORD_WIDTH and len(ordered) > width:
            per = -(-len(ordered) // max(1, self._eval_jobs))
            width = min(cap, max(width, ((per + 63) // 64) * 64))
        return [ordered[i:i + width] for i in range(0, len(ordered), width)]

    def _injection_tables(self, group: Sequence[int]):
        """Build injection structures for one fault group.

        Returns ``(out_force, pin_force, pi_forces, ff_out_forces,
        ff_pin_forces)`` where the first two feed
        :func:`eval_program_injected` (combinational nodes), and the rest
        handle fault sites the program never writes: primary-input
        outputs, flip-flop outputs (forced at present-state load) and
        flip-flop D pins (forced at next-state capture).
        """
        compiled = self.compiled
        is_ff = {ff: k for k, ff in enumerate(compiled.ff_ids)}
        is_pi = set(compiled.pi_ids)
        out_force: Dict[int, Tuple[int, int]] = {}
        pin_force: Dict[int, List[Tuple[int, int, int]]] = {}
        pi_forces: List[Tuple[int, int, int]] = []
        ff_out_forces: Dict[int, Tuple[int, int]] = {}
        ff_pin_forces: Dict[int, Tuple[int, int]] = {}

        def add_pair(table: Dict, key, bit: int, stuck_at: int) -> None:
            f1, f0 = table.get(key, (0, 0))
            if stuck_at == 1:
                f1 |= bit
            else:
                f0 |= bit
            table[key] = (f1, f0)

        for slot, fault_id in enumerate(group):
            fault = self.faults[fault_id]
            bit = 1 << slot
            if fault.pin == STEM:
                if fault.node in is_ff:
                    add_pair(ff_out_forces, is_ff[fault.node], bit, fault.stuck_at)
                else:
                    # PI stems land in out_force too; they are split out
                    # into pi_forces below (the program never writes PIs).
                    add_pair(out_force, fault.node, bit, fault.stuck_at)
            else:
                if fault.node in is_ff:
                    add_pair(ff_pin_forces, is_ff[fault.node], bit, fault.stuck_at)
                else:
                    entries = pin_force.setdefault(fault.node, [])
                    for idx, (pin, f1, f0) in enumerate(entries):
                        if pin == fault.pin:
                            if fault.stuck_at == 1:
                                f1 |= bit
                            else:
                                f0 |= bit
                            entries[idx] = (pin, f1, f0)
                            break
                    else:
                        entries.append(
                            (fault.pin, bit if fault.stuck_at == 1 else 0,
                             bit if fault.stuck_at == 0 else 0)
                        )
        pi_forces = [
            (node, f1, f0) for node, (f1, f0) in out_force.items() if node in is_pi
        ]
        return out_force, pin_force, pi_forces, ff_out_forces, ff_pin_forces

    def _group_injection(self, group: Sequence[int]):
        """Digest one group's injection tables for :meth:`_run_group`.

        Subclasses whose injection is rebuilt per frame (the transition
        model) return ``None``.
        """
        (out_force, pin_force, pi_forces,
         ff_out_forces, ff_pin_forces) = self._injection_tables(group)
        return (
            pi_forces,
            ff_out_forces,
            ff_pin_forces,
            self._kernel.make_injection(out_force, pin_force),
        )

    def _injection_plan(self, sample: Sequence[int]):
        """``[(group, digested injection), ...]`` for one fault sample.

        Memoized per committed-state epoch: grouping and force tables
        depend only on the sample's membership and the divergence map,
        both frozen between state changes — so the GA's many evaluate
        calls against one committed state build them once.
        """
        if self._plan_epoch != self.state_epoch:
            self._plan_cache.clear()
            self._plan_epoch = self.state_epoch
        key = tuple(sample)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = [
                (group, self._group_injection(group))
                for group in self._make_groups(sample)
            ]
            if len(self._plan_cache) >= 16:
                # Fault sampling can stream distinct subsets; keep the
                # memo bounded (the common full-sample key returns fast).
                self._plan_cache.clear()
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Faulty-machine pass for one group
    # ------------------------------------------------------------------

    def _run_group(
        self,
        group: Sequence[int],
        trace: _GoodTrace,
        count_faulty_events: bool,
        inj=None,
    ):
        """Simulate one fault group along the good trace.

        Returns ``(det_word, det_frame, prop_final, prop_per_frame,
        faulty_events, final_ff1, final_ff0)`` where ``det_word`` has a
        bit per slot whose fault was detected at a primary output in
        some frame and ``det_frame`` maps detected slots to the first
        detecting frame.  Kernel backends that bind ``run_group`` must
        reproduce this tuple bit for bit (docs/KERNELS.md).
        """
        compiled = self.compiled
        n = compiled.num_nodes
        n_slots = len(group)
        mask = (1 << n_slots) - 1
        if inj is None:
            inj = self._group_injection(group)
        runner = self._kernel.run_group
        if runner is not None and n_slots > DEFAULT_WORD_WIDTH:
            # Fused vectorized path (numpy backend): bit-identical by
            # the kernel contract; narrow groups stay on bigints where
            # arbitrary-precision words are already faster.
            return runner(self, group, trace, count_faulty_events, inj)
        pi_forces, ff_out_forces, ff_pin_forces, injection = inj

        # Initialize faulty FF planes: good state broadcast + divergences.
        ff1 = [0] * compiled.num_ffs
        ff0 = [0] * compiled.num_ffs
        for k in range(compiled.num_ffs):
            value = self.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot, fault_id in enumerate(group):
            div = self.divergence.get(fault_id)
            if not div:
                continue
            bit = 1 << slot
            nbit = ~bit
            for k, value in div.items():
                ff1[k] &= nbit
                ff0[k] &= nbit
                if value == 1:
                    ff1[k] |= bit
                elif value == 0:
                    ff0[k] |= bit

        v1 = [0] * n
        v0 = [0] * n
        det_word = 0
        det_frame: Dict[int, int] = {}
        prop_per_frame: List[int] = []
        faulty_events = 0
        po_ids = compiled.po_ids
        pi_ids = compiled.pi_ids
        ff_ids = compiled.ff_ids
        ff_d_ids = compiled.ff_d_ids
        eval_injection = self._kernel.eval_injection
        # Hoist the (usually empty) per-flip-flop force probes out of
        # the frame loop: list of (k, node id, f1, f0) rows to patch.
        ff_out_rows = [
            (k, ff_ids[k], f1, f0) for k, (f1, f0) in ff_out_forces.items()
        ]
        ff_pin_items = list(ff_pin_forces.items())

        for frame, (g1, g0) in enumerate(trace.node_planes):
            # Load primary inputs (good values broadcast, then PI faults).
            for pi in pi_ids:
                v1[pi] = mask * g1[pi]
                v0[pi] = mask * g0[pi]
            for node, f1, f0 in pi_forces:
                if f1:
                    v1[node] |= f1
                    v0[node] &= ~f1
                if f0:
                    v0[node] |= f0
                    v1[node] &= ~f0
            # Load faulty present state, applying stuck-Q faults.
            for k, ff in enumerate(ff_ids):
                v1[ff] = ff1[k]
                v0[ff] = ff0[k]
            for k, ff, f1, f0 in ff_out_rows:
                a1, a0 = ff1[k], ff0[k]
                if f1:
                    a1 |= f1
                    a0 &= ~f1
                if f0:
                    a0 |= f0
                    a1 &= ~f0
                v1[ff], v0[ff] = a1, a0

            eval_injection(v1, v0, mask, injection)

            if count_faulty_events:
                events = 0
                for i in range(n):
                    diff = (v1[i] ^ (mask * g1[i])) | (v0[i] ^ (mask * g0[i]))
                    if diff:
                        events += diff.bit_count()
                faulty_events += events

            # Detections: definite good vs definite-and-different faulty.
            frame_det = 0
            for po in po_ids:
                if g1[po]:
                    frame_det |= v0[po]
                elif g0[po]:
                    frame_det |= v1[po]
            new = frame_det & ~det_word
            while new:
                low = new & -new
                det_frame[low.bit_length() - 1] = frame
                new ^= low
            det_word |= frame_det

            # Capture faulty next state (D-pin faults applied here).
            good_next = trace.ff_states[frame]
            prop_word = 0
            for k, d_node in enumerate(ff_d_ids):
                a1, a0 = v1[d_node], v0[d_node]
                if k in ff_pin_forces:
                    f1, f0 = ff_pin_forces[k]
                    if f1:
                        a1 |= f1
                        a0 &= ~f1
                    if f0:
                        a0 |= f0
                        a1 &= ~f0
                ff1[k], ff0[k] = a1, a0
                value = good_next[k]
                if value == 1:
                    prop_word |= a0
                elif value == 0:
                    prop_word |= a1
            prop_per_frame.append(prop_word.bit_count())

        prop_final = prop_per_frame[-1] if prop_per_frame else 0
        return det_word, det_frame, prop_final, prop_per_frame, faulty_events, ff1, ff0

    # ------------------------------------------------------------------
    # Public simulation entry points
    # ------------------------------------------------------------------

    def evaluate(
        self,
        vectors: Sequence[Vector],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> CandidateEval:
        """Score a candidate test from the current state, without commit.

        ``sample`` is the list of fault indices to simulate (defaults to
        every active fault); pass a subset for the paper's fault-sampling
        speedup.  ``count_faulty_events`` additionally computes the
        phase-3 activity observable (it costs an extra pass over the
        node arrays per frame).

        With ``eval_jobs > 1`` / ``eval_cache`` the call is served by the
        sharded, memoized evaluator; the result is bit-identical.
        """
        if self._parallel is not None:
            return self._parallel.evaluate(
                vectors, sample=sample, count_faulty_events=count_faulty_events
            )
        return self._evaluate_serial(
            vectors, sample=sample, count_faulty_events=count_faulty_events
        )

    def _evaluate_serial(
        self,
        vectors: Sequence[Vector],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> CandidateEval:
        """The in-process scoring pass behind :meth:`evaluate`."""
        if sample is None:
            sample = self.active
        trace = self._run_good(vectors, count_events=count_faulty_events)
        detected = 0
        prop_final = 0
        prop_sum = 0
        faulty_events = 0
        word_passes = 0
        for group, inj in self._injection_plan(sample):
            det_word, _, g_prop_final, prop_frames, g_events, _, _ = self._run_group(
                group, trace, count_faulty_events, inj
            )
            word_passes += 1
            detected += det_word.bit_count()
            prop_final += g_prop_final
            prop_sum += sum(prop_frames)
            faulty_events += g_events
        collector = self.collector
        if collector.enabled:
            frames = len(vectors)
            collector.inc("sim.evaluate.calls")
            collector.inc("sim.evaluate.frames", frames)
            collector.inc("sim.evaluate.faults", len(sample))
            collector.inc("sim.evaluate.words", word_passes * frames)
            if count_faulty_events:
                collector.inc("sim.good_events", trace.good_events)
                collector.inc("sim.faulty_events", faulty_events)
        return CandidateEval(
            frames=len(vectors),
            detected=detected,
            prop_final=prop_final,
            prop_sum=prop_sum,
            faulty_events=faulty_events,
            good_events=trace.good_events,
            ffs_set=trace.ffs_set,
            ffs_changed=trace.ffs_changed,
            num_faults_simulated=len(sample),
            num_ffs=self.compiled.num_ffs,
        )

    def evaluate_batch(
        self,
        candidates: Sequence[Sequence[Vector]],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> List[CandidateEval]:
        """Score many candidate tests at once (one GA population).

        Semantically identical to ``[evaluate(c, sample) for c in
        candidates]`` but packs every (candidate, fault) pair into one
        slot of a single ultra-wide bit-plane word: candidate *c* owns
        the slot block ``[c*S, (c+1)*S)`` where *S* is the sample size.
        One pass over the compiled program then evaluates the whole
        population against the whole sample — with arbitrary-precision
        integers the interpreter overhead per bitwise op dominates, so
        widening the word is nearly free and this replaces
        ``len(candidates) * ceil(S / word_width)`` narrow passes.

        All candidates must have the same number of frames.  With
        ``eval_jobs > 1`` / ``eval_cache`` the population is served by
        the sharded, memoized evaluator instead (duplicates are scored
        once; misses fan out per fault shard); results are bit-identical.
        """
        if self._parallel is not None:
            return self._parallel.evaluate_batch(
                candidates, sample=sample, count_faulty_events=count_faulty_events
            )
        return self._evaluate_batch_serial(
            candidates, sample=sample, count_faulty_events=count_faulty_events
        )

    def _evaluate_batch_serial(
        self,
        candidates: Sequence[Sequence[Vector]],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> List[CandidateEval]:
        """The in-process wide-word pass behind :meth:`evaluate_batch`."""
        if sample is None:
            sample = self.active
        sample = list(sample)
        n_cand = len(candidates)
        if n_cand == 0:
            return []
        frames = len(candidates[0])
        if any(len(c) != frames for c in candidates):
            raise ValueError("all candidates must have the same frame count")
        if not sample or frames == 0:
            return [
                self._evaluate_serial(
                    c, sample=sample, count_faulty_events=count_faulty_events
                )
                for c in candidates
            ]

        runner = self._kernel.run_batch
        if (runner is not None and self._batch_fusable
                and n_cand * len(sample) > DEFAULT_WORD_WIDTH):
            # Fused vectorized population pass (numpy backend):
            # bit-identical by the kernel contract; populations narrower
            # than one machine word stay on the bigint mega-word below,
            # where array marshaling overhead loses to arbitrary-
            # precision integers (see docs/KERNELS.md).
            return runner(self, candidates, sample, count_faulty_events)

        compiled = self.compiled
        n = compiled.num_nodes
        S = len(sample)
        width = n_cand * S
        mask = (1 << width) - 1
        block_mask = (1 << S) - 1
        block_of = [block_mask << (c * S) for c in range(n_cand)]

        # Good machines: pattern-parallel, one slot per candidate.
        good = PatternParallelGood(
            compiled, self.good_state, candidates,
            count_events=count_faulty_events, kernel=self._kernel,
        )

        # Injection tables over the S sample slots, replicated per block.
        rep = 0
        for c in range(n_cand):
            rep |= 1 << (c * S)

        def replicate(word: int) -> int:
            """Spread an S-bit fault mask into every candidate block."""
            return word * rep

        (out_force_s, pin_force_s, pi_forces_s,
         ff_out_forces_s, ff_pin_forces_s) = self._injection_tables(sample)
        out_force = {k: (replicate(f1), replicate(f0))
                     for k, (f1, f0) in out_force_s.items()}
        pin_force = {
            gate: [(pin, replicate(f1), replicate(f0)) for pin, f1, f0 in entries]
            for gate, entries in pin_force_s.items()
        }
        pi_forces = [(node, replicate(f1), replicate(f0))
                     for node, f1, f0 in pi_forces_s]
        ff_out_forces = {k: (replicate(f1), replicate(f0))
                         for k, (f1, f0) in ff_out_forces_s.items()}
        ff_pin_forces = {k: (replicate(f1), replicate(f0))
                         for k, (f1, f0) in ff_pin_forces_s.items()}
        injection = self._kernel.make_injection(out_force, pin_force)

        # Initialize faulty FF planes: per-candidate good broadcast (all
        # candidates start from the same committed state) + divergences.
        ff1 = [0] * compiled.num_ffs
        ff0 = [0] * compiled.num_ffs
        for k in range(compiled.num_ffs):
            value = self.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot_in_block, fault_id in enumerate(sample):
            div = self.divergence.get(fault_id)
            if not div:
                continue
            slot_word = rep << slot_in_block  # this fault in every block
            nword = ~slot_word
            for k, value in div.items():
                ff1[k] &= nword
                ff0[k] &= nword
                if value == 1:
                    ff1[k] |= slot_word
                elif value == 0:
                    ff0[k] |= slot_word

        v1 = [0] * n
        v0 = [0] * n
        det_word = 0
        prop_sum = [0] * n_cand
        prop_final = [0] * n_cand
        faulty_events = [0] * n_cand
        po_ids = compiled.po_ids
        ff_d_ids = compiled.ff_d_ids

        for frame in range(frames):
            g1, g0 = good.step(frame)
            # Expand each candidate's good PI bits into its block.
            for j, pi in enumerate(compiled.pi_ids):
                w1 = 0
                w0 = 0
                for c in range(n_cand):
                    value = candidates[c][frame][j]
                    if value == 1:
                        w1 |= block_of[c]
                    elif value == 0:
                        w0 |= block_of[c]
                v1[pi], v0[pi] = w1, w0
            for node, f1, f0 in pi_forces:
                if f1:
                    v1[node] |= f1
                    v0[node] &= ~f1
                if f0:
                    v0[node] |= f0
                    v1[node] &= ~f0
            for k, ff in enumerate(compiled.ff_ids):
                a1, a0 = ff1[k], ff0[k]
                if k in ff_out_forces:
                    f1, f0 = ff_out_forces[k]
                    if f1:
                        a1 |= f1
                        a0 &= ~f1
                    if f0:
                        a0 |= f0
                        a1 &= ~f0
                v1[ff], v0[ff] = a1, a0

            self._kernel.eval_injection(v1, v0, mask, injection)

            if count_faulty_events:
                # Expand good planes candidate-block-wise per node; this
                # is the expensive observable (phase 3 only).
                for i in range(n):
                    gb1 = 0
                    gb0 = 0
                    w1 = g1[i]
                    w0 = g0[i]
                    for c in range(n_cand):
                        bit = 1 << c
                        if w1 & bit:
                            gb1 |= block_of[c]
                        elif w0 & bit:
                            gb0 |= block_of[c]
                    diff = (v1[i] ^ gb1) | (v0[i] ^ gb0)
                    if diff:
                        for c in range(n_cand):
                            d = diff & block_of[c]
                            if d:
                                faulty_events[c] += d.bit_count()

            frame_det = 0
            for po in po_ids:
                w1 = g1[po]
                w0 = g0[po]
                if w1 or w0:
                    f1p, f0p = v1[po], v0[po]
                    for c in range(n_cand):
                        bit = 1 << c
                        if w1 & bit:
                            frame_det |= f0p & block_of[c]
                        elif w0 & bit:
                            frame_det |= f1p & block_of[c]
            det_word |= frame_det

            good_next = good.next_state_scalars()
            prop_word = 0
            for k, d_node in enumerate(ff_d_ids):
                a1, a0 = v1[d_node], v0[d_node]
                if k in ff_pin_forces:
                    f1, f0 = ff_pin_forces[k]
                    if f1:
                        a1 |= f1
                        a0 &= ~f1
                    if f0:
                        a0 |= f0
                        a1 &= ~f0
                ff1[k], ff0[k] = a1, a0
                gb1 = 0
                gb0 = 0
                for c in range(n_cand):
                    value = good_next[c][k]
                    if value == 1:
                        gb1 |= block_of[c]
                    elif value == 0:
                        gb0 |= block_of[c]
                prop_word |= (a0 & gb1) | (a1 & gb0)
            for c in range(n_cand):
                count = (prop_word & block_of[c]).bit_count()
                prop_sum[c] += count
                if frame == frames - 1:
                    prop_final[c] = count

        collector = self.collector
        if collector.enabled:
            collector.inc("sim.batch.calls")
            collector.inc("sim.batch.candidates", n_cand)
            collector.inc("sim.batch.frames", frames)
            collector.inc("sim.batch.faults", S)
            collector.inc("sim.batch.slot_frames", width * frames)
            if count_faulty_events:
                collector.inc("sim.good_events", sum(good.events))
                collector.inc("sim.faulty_events", sum(faulty_events))

        results = []
        for c in range(n_cand):
            results.append(
                CandidateEval(
                    frames=frames,
                    detected=(det_word & block_of[c]).bit_count(),
                    prop_final=prop_final[c],
                    prop_sum=prop_sum[c],
                    faulty_events=faulty_events[c],
                    good_events=good.events[c],
                    ffs_set=good.ffs_set[c],
                    ffs_changed=good.ffs_changed[c],
                    num_faults_simulated=S,
                    num_ffs=compiled.num_ffs,
                )
            )
        return results

    def commit(self, vectors: Sequence[Vector]) -> CommitResult:
        """Apply a test for real: advance all state, drop detected faults."""
        trace = self._run_good(vectors, count_events=False)
        detections: List[Tuple[Fault, int]] = []
        new_divergence: Dict[int, Dict[int, int]] = {}
        detected_ids: List[int] = []
        for group, inj in self._injection_plan(self.active):
            det_word, det_frame, _, _, _, ff1, ff0 = self._run_group(
                group, trace, False, inj
            )
            final_good = (
                trace.ff_states[-1] if trace.ff_states else self.good_state.ff_values
            )
            for slot, fault_id in enumerate(group):
                bit = 1 << slot
                if det_word & bit:
                    detected_ids.append(fault_id)
                    detections.append(
                        (self.faults[fault_id],
                         self.vectors_applied + det_frame.get(slot, 0))
                    )
                    continue
                div: Dict[int, int] = {}
                for k in range(self.compiled.num_ffs):
                    if ff1[k] & bit:
                        value = 1
                    elif ff0[k] & bit:
                        value = 0
                    else:
                        value = X
                    if value != final_good[k]:
                        div[k] = value
                if div:
                    new_divergence[fault_id] = div
        for fault_id in detected_ids:
            self.status[fault_id] = FaultStatus.DETECTED
        detected_set = set(detected_ids)
        self.active = [f for f in self.active if f not in detected_set]
        self.divergence = new_divergence
        if trace.ff_states:
            self.good_state = GoodState(list(trace.ff_states[-1]))
        self.vectors_applied += len(vectors)
        self.detections.extend(detections)
        self.state_epoch += 1
        self._after_commit(trace)
        collector = self.collector
        if collector.enabled:
            collector.inc("sim.commit.calls")
            collector.inc("sim.commit.frames", len(vectors))
            collector.inc("sim.commit.detected", len(detected_ids))
        return CommitResult(
            frames=len(vectors),
            detections=detections,
            detected_count=len(detected_ids),
            remaining=len(self.active),
        )

    def _after_commit(self, trace: _GoodTrace) -> None:
        """Hook for subclasses needing committed-trace bookkeeping
        (e.g. the transition-fault model's previous-value state)."""

    def run_test_set(self, vectors: Sequence[Vector]) -> CommitResult:
        """Convenience: commit an entire pre-built test set at once."""
        return self.commit(vectors)
