"""Transition (gate-delay) fault model — a reproduction extension.

The paper closes by noting that the GA framework "is not limited to the
single stuck-at fault model, and other fault models can easily be
accommodated with appropriate fitness functions."  This module makes
that concrete: slow-to-rise / slow-to-fall transition faults simulated
with the standard *conditional stuck-at* approximation —

* a **slow-to-rise** fault at node *n* is excited in time frame *t* when
  the fault-free machine drives *n* from 0 (frame *t*-1) to 1 (frame
  *t*); while excited, the faulty machine sees the *old* value 0 at *n*;
* symmetrically for **slow-to-fall**.

Excitation is judged on the fault-free machine's values (the classic
first-order approximation used by sequential transition-fault
simulators); the launched error then propagates, latches into flip-flops
and persists exactly like a stuck-at effect, which is what the inherited
machinery already models.  :class:`TransitionFaultSimulator` exposes the
same interface as :class:`~repro.faults.simulator.FaultSimulator`, so
the GATEST generator runs unmodified on top of it — only the fault
universe and the injection rule change, exactly as the paper promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..circuit.gates import X
from ..circuit.netlist import Circuit
from ..sim.compile import CompiledCircuit
from .simulator import FaultSimulator, _GoodTrace


@dataclass(frozen=True, order=True)
class TransitionFault:
    """One transition fault on a node's output.

    ``slow_to`` is the *destination* value of the slow transition:
    1 = slow-to-rise, 0 = slow-to-fall.
    """

    node: int
    slow_to: int

    def describe(self, circuit: Circuit) -> str:
        """Human-readable name like ``G11 slow-to-rise``."""
        kind = "slow-to-rise" if self.slow_to == 1 else "slow-to-fall"
        return f"{circuit.node_names[self.node]} {kind}"

    @property
    def stuck_value(self) -> int:
        """The value the excited faulty node is held at (the old value)."""
        return 1 - self.slow_to


def generate_transition_faults(circuit: Circuit) -> List[TransitionFault]:
    """Both transition faults on every node output."""
    faults: List[TransitionFault] = []
    for node_id in range(circuit.num_nodes):
        faults.append(TransitionFault(node_id, 1))
        faults.append(TransitionFault(node_id, 0))
    return faults


class TransitionFaultSimulator(FaultSimulator):
    """Sequential transition-fault simulator (conditional stuck-at).

    Inherits all state management (good state, per-fault flip-flop
    divergences, snapshot/rollback, fault dropping) from the stuck-at
    simulator; only the per-frame injection differs — force masks are
    rebuilt each frame from the good machine's value *transitions*
    instead of being static.
    """

    #: Pool workers rebuild a plain stuck-at simulator, which cannot
    #: replay this model's per-frame conditional injection; only the
    #: epoch-keyed evaluation cache applies (``eval_jobs`` is accepted
    #: but scoring stays in-process).
    _shardable = False

    #: Fused kernel batch passes replay the stuck-at static-injection
    #: semantics, which are wrong here for the same reason.
    _batch_fusable = False

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        faults: Optional[List[TransitionFault]] = None,
        word_width: int = 64,
        collector=None,
        eval_jobs: int = 1,
        eval_cache: Optional[bool] = None,
        kernel: Optional[str] = None,
        eval_task_timeout: Optional[float] = None,
        eval_retries: Optional[int] = None,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            compiled = circuit
        else:
            from ..sim.compile import compile_circuit

            compiled = compile_circuit(circuit)
        if faults is None:
            faults = generate_transition_faults(compiled.circuit)
        super().__init__(compiled, faults=faults, word_width=word_width,  # type: ignore[arg-type]
                         collector=collector, eval_jobs=eval_jobs,
                         eval_cache=eval_cache, kernel=kernel,
                         eval_task_timeout=eval_task_timeout,
                         eval_retries=eval_retries)
        #: Fault-free node values at the last committed frame (scalars);
        #: the excitation condition for the first frame of any new test.
        self.prev_good: List[int] = [X] * compiled.num_nodes

    # ------------------------------------------------------------------
    # State management additions
    # ------------------------------------------------------------------

    def snapshot(self):
        """Base snapshot plus the previous-frame good values."""
        return (super().snapshot(), list(self.prev_good))

    def restore(self, snap) -> None:
        """Restore base state and the previous-frame good values."""
        base, prev_good = snap
        super().restore(base)
        self.prev_good = list(prev_good)

    def reset(self) -> None:
        """Power-up reset, clearing the previous-value state too."""
        super().reset()
        self.prev_good = [X] * self.compiled.num_nodes

    def _after_commit(self, trace: _GoodTrace) -> None:
        if not trace.node_planes:
            return
        g1, g0 = trace.node_planes[-1]
        self.prev_good = [
            1 if g1[i] else (0 if g0[i] else X)
            for i in range(self.compiled.num_nodes)
        ]

    def _checkpoint_extra(self) -> dict:
        return {"prev_good": list(self.prev_good)}

    def _restore_checkpoint_extra(self, extra: dict) -> None:
        self.prev_good = list(extra["prev_good"])

    # ------------------------------------------------------------------
    # Per-frame conditional injection
    # ------------------------------------------------------------------

    def _frame_forces(self, group: Sequence[int], prev, g1, g0):
        """Force tables for one frame: only faults whose transition the
        good machine launches this frame are injected."""
        out_force: Dict[int, tuple] = {}
        pi_forces = []
        ff_forces: Dict[int, tuple] = {}
        is_ff = {ff: k for k, ff in enumerate(self.compiled.ff_ids)}
        is_pi = set(self.compiled.pi_ids)
        for slot, fault_id in enumerate(group):
            fault = self.faults[fault_id]
            node = fault.node
            old = prev[node]
            new = 1 if g1[node] else (0 if g0[node] else X)
            if old != 1 - fault.slow_to or new != fault.slow_to:
                continue  # no launching transition this frame
            bit = 1 << slot
            held = fault.stuck_value
            if node in is_ff:
                f1, f0 = ff_forces.get(is_ff[node], (0, 0))
                ff_forces[is_ff[node]] = (
                    (f1 | bit, f0) if held == 1 else (f1, f0 | bit)
                )
            else:
                f1, f0 = out_force.get(node, (0, 0))
                entry = (f1 | bit, f0) if held == 1 else (f1, f0 | bit)
                out_force[node] = entry
                if node in is_pi:
                    pi_forces.append((node, *entry))
        return out_force, pi_forces, ff_forces

    def _group_injection(self, group):
        """No precomputed tables: forces depend on per-frame transitions."""
        return None

    def _run_group(self, group, trace: _GoodTrace, count_faulty_events: bool,
                   inj=None):
        compiled = self.compiled
        n = compiled.num_nodes
        n_slots = len(group)
        mask = (1 << n_slots) - 1

        ff1 = [0] * compiled.num_ffs
        ff0 = [0] * compiled.num_ffs
        for k in range(compiled.num_ffs):
            value = self.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot, fault_id in enumerate(group):
            div = self.divergence.get(fault_id)
            if not div:
                continue
            bit = 1 << slot
            nbit = ~bit
            for k, value in div.items():
                ff1[k] &= nbit
                ff0[k] &= nbit
                if value == 1:
                    ff1[k] |= bit
                elif value == 0:
                    ff0[k] |= bit

        v1 = [0] * n
        v0 = [0] * n
        det_word = 0
        det_frame: Dict[int, int] = {}
        prop_per_frame: List[int] = []
        faulty_events = 0
        prev_scalars = list(self.prev_good)

        for frame, (g1, g0) in enumerate(trace.node_planes):
            out_force, pi_forces, ff_forces = self._frame_forces(
                group, prev_scalars, g1, g0
            )
            for pi in compiled.pi_ids:
                v1[pi] = mask * g1[pi]
                v0[pi] = mask * g0[pi]
            for node, f1, f0 in pi_forces:
                if f1:
                    v1[node] |= f1
                    v0[node] &= ~f1
                if f0:
                    v0[node] |= f0
                    v1[node] &= ~f0
            for k, ff in enumerate(compiled.ff_ids):
                a1, a0 = ff1[k], ff0[k]
                if k in ff_forces:
                    f1, f0 = ff_forces[k]
                    if f1:
                        a1 |= f1
                        a0 &= ~f1
                    if f0:
                        a0 |= f0
                        a1 &= ~f0
                v1[ff], v0[ff] = a1, a0

            # Forces change every frame (conditional injection), so the
            # injection tables are rebuilt per frame — cheap next to the
            # pass itself, and the generated kernel is reused as-is.
            self._kernel.eval_injection(
                v1, v0, mask, self._kernel.make_injection(out_force, {})
            )

            if count_faulty_events:
                events = 0
                for i in range(n):
                    diff = (v1[i] ^ (mask * g1[i])) | (v0[i] ^ (mask * g0[i]))
                    if diff:
                        events += diff.bit_count()
                faulty_events += events

            frame_det = 0
            for po in compiled.po_ids:
                if g1[po]:
                    frame_det |= v0[po]
                elif g0[po]:
                    frame_det |= v1[po]
            new = frame_det & ~det_word
            while new:
                low = new & -new
                det_frame[low.bit_length() - 1] = frame
                new ^= low
            det_word |= frame_det

            good_next = trace.ff_states[frame]
            prop_word = 0
            for k, d_node in enumerate(compiled.ff_d_ids):
                a1, a0 = v1[d_node], v0[d_node]
                ff1[k], ff0[k] = a1, a0
                value = good_next[k]
                if value == 1:
                    prop_word |= a0
                elif value == 0:
                    prop_word |= a1
            prop_per_frame.append(prop_word.bit_count())

            prev_scalars = [
                1 if g1[i] else (0 if g0[i] else X) for i in range(n)
            ]

        prop_final = prop_per_frame[-1] if prop_per_frame else 0
        return det_word, det_frame, prop_final, prop_per_frame, faulty_events, ff1, ff0

    # The wide-word batch path builds static injection masks, which is
    # wrong for per-frame conditional injection; fall back to serial.
    def evaluate_batch(self, candidates, sample=None, count_faulty_events=False):
        """Serial fallback (per-frame conditional masks defeat the
        static wide-word packing of the stuck-at batch path)."""
        return [
            self.evaluate(c, sample=sample, count_faulty_events=count_faulty_events)
            for c in candidates
        ]
