"""Fault model, collapsing, sampling and the sequential fault simulator."""

from .collapse import CollapsedFaults, collapse_faults, collapsed_fault_list
from .model import STEM, Fault, FaultStatus, fault_universe_size, generate_faults
from .reports import CoverageReport, coverage_report
from .sampling import FaultSampler, FixedSize, Fraction, FullList, make_sampler
from .simulator import (
    CandidateEval,
    CommitResult,
    FaultSimulator,
    SimSnapshot,
)
from .transition import (
    TransitionFault,
    TransitionFaultSimulator,
    generate_transition_faults,
)

__all__ = [
    "STEM",
    "CandidateEval",
    "CollapsedFaults",
    "CommitResult",
    "CoverageReport",
    "coverage_report",
    "Fault",
    "FaultSampler",
    "FaultSimulator",
    "FaultStatus",
    "FixedSize",
    "Fraction",
    "FullList",
    "SimSnapshot",
    "TransitionFault",
    "TransitionFaultSimulator",
    "collapse_faults",
    "generate_transition_faults",
    "collapsed_fault_list",
    "fault_universe_size",
    "generate_faults",
    "make_sampler",
]
