"""Coverage reporting over fault-simulation results.

Turns the raw state of a :class:`~repro.faults.simulator.FaultSimulator`
(or a :class:`~repro.core.results.TestGenResult`) into the reports a
test engineer actually reads: the coverage curve over the test set, the
undetected-fault list grouped by region, and a one-page text summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from .model import Fault
from .simulator import FaultSimulator


@dataclass
class CoverageReport:
    """Digest of one fault-simulation campaign."""

    circuit_name: str
    total_faults: int
    detected: int
    vectors: int
    #: (frame, cumulative detections) steps of the coverage curve.
    curve: List[Tuple[int, int]]
    undetected: List[str]
    by_region: Dict[str, Tuple[int, int]]  # region -> (detected, total)

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0

    def render(self, max_undetected: int = 20) -> str:
        """Format the report as readable text."""
        lines = [
            f"Fault coverage report — {self.circuit_name}",
            f"  detected {self.detected}/{self.total_faults} "
            f"({100 * self.coverage:.2f}%) with {self.vectors} vectors",
        ]
        if self.curve:
            milestones = [0.5, 0.75, 0.9, 1.0]
            lines.append("  coverage curve (vectors to reach fraction of final):")
            for frac in milestones:
                target = frac * self.detected
                frame = next(
                    (f for f, d in self.curve if d >= target), None
                )
                if frame is not None:
                    lines.append(f"    {int(100 * frac):3d}% -> vector {frame + 1}")
        lines.append("  per-region coverage:")
        for region, (det, total) in sorted(self.by_region.items()):
            pct = 100 * det / total if total else 0.0
            lines.append(f"    {region:12s} {det:5d}/{total:<5d} ({pct:.1f}%)")
        if self.undetected:
            lines.append(f"  undetected ({len(self.undetected)} total, "
                         f"first {max_undetected}):")
            for name in self.undetected[:max_undetected]:
                lines.append(f"    {name}")
        return "\n".join(lines)


def _region_of(circuit: Circuit, fault: Fault) -> str:
    """Coarse region label from the synthesized naming convention, with
    a structural fallback for arbitrary netlists."""
    name = circuit.node_names[fault.node]
    if name.startswith("cff"):
        return "core-ff"
    if name.startswith("sff"):
        return "shallow-ff"
    if name.startswith("pi") or fault.node in circuit.inputs:
        return "inputs"
    if fault.node in circuit.dffs:
        return "flip-flops"
    return "gates"


def coverage_report(simulator: FaultSimulator) -> CoverageReport:
    """Build a report from a simulator's current (post-commit) state."""
    circuit = simulator.circuit
    detected_frames = sorted(frame for _, frame in simulator.detections)
    curve: List[Tuple[int, int]] = []
    running = 0
    for frame in detected_frames:
        running += 1
        if curve and curve[-1][0] == frame:
            curve[-1] = (frame, running)
        else:
            curve.append((frame, running))

    by_region: Dict[str, List[int]] = {}
    detected_set = {
        simulator.faults[i] for i in range(simulator.num_faults)
        if i not in set(simulator.active)
    }
    totals: Counter = Counter()
    detected_counter: Counter = Counter()
    for fault in simulator.faults:
        region = _region_of(circuit, fault)
        totals[region] += 1
        if fault in detected_set:
            detected_counter[region] += 1

    return CoverageReport(
        circuit_name=circuit.name,
        total_faults=simulator.num_faults,
        detected=simulator.detected_count,
        vectors=simulator.vectors_applied,
        curve=curve,
        undetected=[
            f.describe(circuit) for f in simulator.undetected_faults()
        ],
        by_region={
            region: (detected_counter[region], totals[region])
            for region in totals
        },
    )
