"""Single stuck-at fault model and fault-list generation.

A fault is a stuck-at-0 or stuck-at-1 on either a node's *output* (the
stem, ``pin == STEM``) or on one specific *fanin pin* of a gate (a fanout
branch).  Following standard practice, branch faults are only generated
where the driving net actually fans out to more than one load — with a
single load the branch fault is indistinguishable from the stem fault
and equivalence collapsing would immediately remove it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

STEM = -1  #: pin index denoting a fault on the node's output


class FaultStatus(enum.Enum):
    """Lifecycle of a fault during simulation."""

    UNDETECTED = "undetected"
    DETECTED = "detected"


@dataclass(frozen=True, order=True)
class Fault:
    """One single stuck-at fault.

    ``node`` is the faulty node's id.  For ``pin == STEM`` the node's
    output is stuck; otherwise fanin pin ``pin`` of that node is stuck
    (the branch from its driver).  ``stuck_at`` is 0 or 1.
    """

    node: int
    pin: int
    stuck_at: int

    def describe(self, circuit: Circuit) -> str:
        """Human-readable name like ``G11 s-a-0`` or ``G9.in1 s-a-1``."""
        name = circuit.node_names[self.node]
        where = name if self.pin == STEM else f"{name}.in{self.pin}"
        return f"{where} s-a-{self.stuck_at}"


def generate_faults(circuit: Circuit, include_branches: bool = True) -> List[Fault]:
    """Generate the full (uncollapsed) stuck-at fault list.

    Stem faults on every node; branch faults on every gate/DFF fanin pin
    whose driving net has more than one observation point — multiple
    fanout loads, or a single load plus a primary-output tap (a PO is a
    branch of the net too).  The result is deterministic: ordered by
    node id, then stem before branches, then stuck-at value.
    """
    po_set = set(circuit.outputs)
    faults: List[Fault] = []
    for node_id in range(circuit.num_nodes):
        for sa in (0, 1):
            faults.append(Fault(node_id, STEM, sa))
        gate_type = circuit.node_types[node_id]
        if gate_type is GateType.INPUT or not include_branches:
            continue
        for pin, src in enumerate(circuit.fanins[node_id]):
            if len(circuit.fanouts[src]) > 1 or src in po_set:
                for sa in (0, 1):
                    faults.append(Fault(node_id, pin, sa))
    return faults


def fault_universe_size(circuit: Circuit) -> int:
    """Size of the uncollapsed fault list (for reporting)."""
    return len(generate_faults(circuit))
