"""Structural fault-equivalence collapsing.

Two faults are *equivalent* when every test detecting one detects the
other; only one representative per equivalence class needs simulating.
The classic intra-gate rules are applied and closed transitively with a
union-find (so fanout-free chains collapse end to end):

========  ==============================  =====================
gate      input fault                     equivalent output fault
========  ==============================  =====================
AND       s-a-0                           s-a-0
NAND      s-a-0                           s-a-1
OR        s-a-1                           s-a-1
NOR       s-a-1                           s-a-0
NOT       s-a-v                           s-a-(1-v)
BUFF/DFF  s-a-v                           s-a-v
========  ==============================  =====================

When a gate input is fed by a net with a single load there is no branch
fault on that pin (see :mod:`repro.faults.model`); the driver's stem
fault plays the input-fault role, which is what makes chains collapse.
One caveat applies: a driver that is itself a *primary output* has an
extra observation point, so its stem fault is strictly easier to detect
than the gate-input fault and must not be merged (caught by
``tests/test_invariants.py::TestCollapseInvariant``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from .model import STEM, Fault, generate_faults


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Fault, Fault] = {}

    def find(self, fault: Fault) -> Fault:
        """Representative of the fault's class (path compressed)."""
        parent = self.parent.setdefault(fault, fault)
        if parent is fault or parent == fault:
            return fault
        root = self.find(parent)
        self.parent[fault] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        """Merge two classes, keeping the smaller fault as representative."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the smaller fault wins.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


@dataclass
class CollapsedFaults:
    """Result of collapsing: representatives plus the full class map."""

    representatives: List[Fault]
    class_of: Dict[Fault, Fault]
    members: Dict[Fault, List[Fault]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.representatives)

    def expand(self, representative: Fault) -> List[Fault]:
        """All faults equivalent to ``representative`` (including itself)."""
        return self.members.get(representative, [representative])


#: (input stuck-at value, output stuck-at value) per collapsible gate type.
_RULES = {
    GateType.AND: [(0, 0)],
    GateType.NAND: [(0, 1)],
    GateType.OR: [(1, 1)],
    GateType.NOR: [(1, 0)],
    GateType.NOT: [(0, 1), (1, 0)],
    GateType.BUFF: [(0, 0), (1, 1)],
    GateType.DFF: [(0, 0), (1, 1)],
}


def collapse_faults(circuit: Circuit, faults: Optional[List[Fault]] = None) -> CollapsedFaults:
    """Collapse a fault list (default: the full list) into classes."""
    if faults is None:
        faults = generate_faults(circuit)
    fault_set = set(faults)
    uf = _UnionFind()
    for fault in faults:
        uf.find(fault)

    po_set = set(circuit.outputs)
    for node_id, gate_type in enumerate(circuit.node_types):
        rules = _RULES.get(gate_type)
        if not rules:
            continue
        for pin, src in enumerate(circuit.fanins[node_id]):
            single_load = (
                len(circuit.fanouts[src]) == 1 and src not in po_set
            )
            for in_sa, out_sa in rules:
                input_fault = (
                    Fault(src, STEM, in_sa) if single_load else Fault(node_id, pin, in_sa)
                )
                output_fault = Fault(node_id, STEM, out_sa)
                if input_fault in fault_set and output_fault in fault_set:
                    uf.union(input_fault, output_fault)

    class_of: Dict[Fault, Fault] = {}
    members: Dict[Fault, List[Fault]] = {}
    for fault in faults:
        root = uf.find(fault)
        class_of[fault] = root
        members.setdefault(root, []).append(fault)
    representatives = sorted(members)
    return CollapsedFaults(representatives=representatives, class_of=class_of, members=members)


def collapsed_fault_list(circuit: Circuit) -> List[Fault]:
    """Convenience: the collapsed representatives for a circuit."""
    return collapse_faults(circuit).representatives
