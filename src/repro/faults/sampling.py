"""Fault-sampling strategies for fitness evaluation (paper §III-B).

Fitness computation is the dominant cost of GA-based test generation, so
the paper approximates fitness with a small random sample of the
remaining faults: either a fixed fraction (1%–10%) or a fixed size
(100–300 faults).  Table 6 studies the fixed-size variant.  When the
undetected fault list shrinks below the sample size, the whole list is
used (as the paper specifies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence


class FaultSampler(Protocol):
    """Strategy interface: pick the fault indices to simulate."""

    def sample(self, active: Sequence[int], rng: random.Random) -> List[int]:
        """Return the subset of ``active`` fault indices to score against."""
        ...  # Protocol stub


@dataclass(frozen=True)
class FullList:
    """No sampling: always evaluate against every remaining fault."""

    def sample(self, active: Sequence[int], rng: random.Random) -> List[int]:
        return list(active)


@dataclass(frozen=True)
class FixedSize:
    """Random sample of at most ``size`` remaining faults (Table 6)."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("sample size must be positive")

    def sample(self, active: Sequence[int], rng: random.Random) -> List[int]:
        """Uniform sample without replacement (whole list if smaller)."""
        if len(active) <= self.size:
            return list(active)
        return rng.sample(list(active), self.size)


@dataclass(frozen=True)
class Fraction:
    """Random sample of a fraction of the remaining faults (1%–10%)."""

    fraction: float
    minimum: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")

    def sample(self, active: Sequence[int], rng: random.Random) -> List[int]:
        """Uniform sample of ceil(fraction * len) faults, floored at minimum."""
        want = max(self.minimum, round(len(active) * self.fraction))
        if len(active) <= want:
            return list(active)
        return rng.sample(list(active), want)


def make_sampler(spec: Optional[object]) -> FaultSampler:
    """Coerce a user-friendly spec into a sampler.

    ``None`` -> full list; an ``int`` -> :class:`FixedSize`; a ``float``
    in (0, 1) -> :class:`Fraction`; a sampler instance passes through.
    """
    if spec is None:
        return FullList()
    if isinstance(spec, bool):
        raise TypeError("bool is not a valid sampler spec")
    if isinstance(spec, int):
        return FixedSize(spec)
    if isinstance(spec, float):
        return Fraction(spec)
    if hasattr(spec, "sample"):
        return spec  # type: ignore[return-value]
    raise TypeError(f"cannot interpret fault sampler spec {spec!r}")
