"""SCOAP testability analysis (Goldstein's controllability/observability).

Classic static testability measures, extended to sequential circuits in
the usual way (a D flip-flop adds one unit of *sequential* cost and
passes combinational cost through):

* ``CC0(n)`` / ``CC1(n)`` — the combinational controllability of node
  *n*: a lower bound on the number of signal assignments needed to set
  *n* to 0 / 1;
* ``CO(n)`` — combinational observability: assignments needed to
  propagate *n*'s value to a primary output.

The measures serve two roles here: they validate that the synthetic
circuit generator produces testability profiles in the range of real
designs (used by the test suite), and they give library users the
standard first-look tool for "why is this fault hard?" questions —
hard-to-detect faults have large ``CC + CO`` at their site.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .gates import GateType
from .netlist import Circuit

INF = float("inf")


@dataclass
class TestabilityReport:
    """SCOAP numbers for every node of one circuit."""

    circuit: Circuit
    cc0: List[float]
    cc1: List[float]
    co: List[float]
    #: Sequential depth component of each controllability (DFF crossings).
    sc0: List[float] = field(default_factory=list)
    sc1: List[float] = field(default_factory=list)

    def hardest_to_control(self, count: int = 10) -> List[Tuple[str, float]]:
        """Nodes ranked by max(CC0, CC1), hardest first."""
        scored = [
            (self.circuit.node_names[i], max(self.cc0[i], self.cc1[i]))
            for i in range(self.circuit.num_nodes)
        ]
        scored.sort(key=lambda item: -item[1])
        return scored[:count]

    def hardest_to_observe(self, count: int = 10) -> List[Tuple[str, float]]:
        """Nodes ranked by CO, hardest first."""
        scored = [
            (self.circuit.node_names[i], self.co[i])
            for i in range(self.circuit.num_nodes)
        ]
        scored.sort(key=lambda item: -item[1])
        return scored[:count]

    def fault_difficulty(self, node: int, stuck_at: int) -> float:
        """SCOAP difficulty of detecting ``node`` s-a-``stuck_at``:
        controllability of the opposite value plus observability."""
        control = self.cc1[node] if stuck_at == 0 else self.cc0[node]
        return control + self.co[node]


def _gate_controllability(gate_type: GateType, in_cc0, in_cc1) -> Tuple[float, float]:
    """(CC0, CC1) of a gate from its inputs' controllabilities."""
    if gate_type is GateType.NOT:
        return (in_cc1[0] + 1, in_cc0[0] + 1)
    if gate_type in (GateType.BUFF, GateType.DFF):
        return (in_cc0[0] + 1, in_cc1[0] + 1)
    if gate_type in (GateType.AND, GateType.NAND):
        c_all1 = sum(in_cc1) + 1
        c_any0 = min(in_cc0) + 1
        return (c_any0, c_all1) if gate_type is GateType.AND else (c_all1, c_any0)
    if gate_type in (GateType.OR, GateType.NOR):
        c_all0 = sum(in_cc0) + 1
        c_any1 = min(in_cc1) + 1
        return (c_all0, c_any1) if gate_type is GateType.OR else (c_any1, c_all0)
    # XOR/XNOR: cost of each input parity combination, take the cheapest.
    if gate_type in (GateType.XOR, GateType.XNOR):
        even = [0.0]
        odd: List[float] = []
        for c0, c1 in zip(in_cc0, in_cc1):
            new_even = []
            new_odd = []
            for e in even:
                new_even.append(e + c0)
                new_odd.append(e + c1)
            for o in odd:
                new_odd.append(o + c0)
                new_even.append(o + c1)
            even = [min(new_even)] if new_even else []
            odd = [min(new_odd)] if new_odd else []
        cc_even = (even[0] + 1) if even else INF
        cc_odd = (odd[0] + 1) if odd else INF
        if gate_type is GateType.XOR:
            return (cc_even, cc_odd)
        return (cc_odd, cc_even)
    raise ValueError(f"no controllability rule for {gate_type}")


def analyze(circuit: Circuit, max_iterations: int = 50) -> TestabilityReport:
    """Compute SCOAP measures; sequential loops iterate to a fixpoint."""
    n = circuit.num_nodes
    cc0 = [INF] * n
    cc1 = [INF] * n
    for pi in circuit.inputs:
        cc0[pi] = 1.0
        cc1[pi] = 1.0

    # Controllability: forward passes until stable (DFF feedback loops
    # need iteration; costs only decrease, so the fixpoint is reached).
    for _ in range(max_iterations):
        changed = False
        for ff in circuit.dffs:
            d = circuit.fanins[ff][0]
            new0 = cc0[d] + 1
            new1 = cc1[d] + 1
            if new0 < cc0[ff]:
                cc0[ff] = new0
                changed = True
            if new1 < cc1[ff]:
                cc1[ff] = new1
                changed = True
        for node in circuit.topo_order:
            fanins = circuit.fanins[node]
            in0 = [cc0[f] for f in fanins]
            in1 = [cc1[f] for f in fanins]
            if any(math.isinf(v) for v in in0 + in1):
                # Uncontrollable (yet): leave at INF this pass.
                new0, new1 = INF, INF
                try:
                    new0, new1 = _gate_controllability(
                        circuit.node_types[node], in0, in1
                    )
                except (ValueError, OverflowError):
                    pass
            else:
                new0, new1 = _gate_controllability(
                    circuit.node_types[node], in0, in1
                )
            if new0 < cc0[node]:
                cc0[node] = new0
                changed = True
            if new1 < cc1[node]:
                cc1[node] = new1
                changed = True
        if not changed:
            break

    # Observability: backward passes (again to a fixpoint through DFFs).
    co = [INF] * n
    for po in circuit.outputs:
        co[po] = 0.0
    for _ in range(max_iterations):
        changed = False
        for node in reversed(circuit.topo_order + list(circuit.dffs)):
            gate_type = circuit.node_types[node]
            fanins = circuit.fanins[node]
            base = co[node]
            if math.isinf(base):
                continue
            for pin, src in enumerate(fanins):
                others = [f for i, f in enumerate(fanins) if i != pin]
                if gate_type in (GateType.AND, GateType.NAND):
                    side = sum(cc1[f] for f in others)
                elif gate_type in (GateType.OR, GateType.NOR):
                    side = sum(cc0[f] for f in others)
                elif gate_type in (GateType.XOR, GateType.XNOR):
                    side = sum(min(cc0[f], cc1[f]) for f in others)
                else:  # NOT/BUFF/DFF
                    side = 0.0
                new = base + side + 1
                if new < co[src]:
                    co[src] = new
                    changed = True
        if not changed:
            break

    return TestabilityReport(circuit=circuit, cc0=cc0, cc1=cc1, co=co)
