"""Circuit substrate: netlist model, .bench I/O, bundled and synthetic circuits."""

from .bench import BenchParseError, load_bench, parse_bench, save_bench, write_bench
from .gates import GateType, X
from .library import build_builtin, c17, list_builtin, mini_fsm, parity_tracker, \
    resettable_counter, resolve_spec, s27, shift_register, uninitializable_loop
from .netlist import Circuit, CircuitError, Node
from .profiles import ISCAS89_PROFILES, CircuitProfile, get_profile
from .synth import profile_of, synthesize, synthesize_named
from .testability import TestabilityReport, analyze as analyze_testability
from .validate import Severity, Violation, check, validate
from .verilog import VerilogError, load_verilog, parse_verilog, save_verilog, write_verilog

__all__ = [
    "BenchParseError", "Circuit", "CircuitError", "CircuitProfile", "GateType",
    "ISCAS89_PROFILES", "Node", "Severity", "Violation", "X",
    "build_builtin", "c17", "check", "get_profile", "list_builtin", "load_bench",
    "mini_fsm", "parity_tracker", "parse_bench", "profile_of",
    "resettable_counter", "resolve_spec", "s27", "save_bench", "shift_register",
    "synthesize",
    "synthesize_named", "TestabilityReport", "analyze_testability",
    "uninitializable_loop", "validate", "write_bench",
    "VerilogError", "load_verilog", "parse_verilog", "save_verilog", "write_verilog",
]
