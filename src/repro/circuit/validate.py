"""Structural validation checks for netlists.

:func:`validate` runs every check and returns a list of
:class:`Violation` records; :func:`check` raises on the first error-level
violation.  The checks catch the netlist pathologies that would silently
corrupt simulation results (dangling nodes, floating gates, fanin
arity errors) and flag benign-but-suspicious structure (dead logic,
unobservable flip-flops) as warnings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .gates import GateType
from .netlist import Circuit, CircuitError


class Severity(enum.Enum):
    """Violation severity: ERROR breaks simulation, WARNING is advisory."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One validation finding."""

    severity: Severity
    rule: str
    node: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.rule} @ {self.node}: {self.message}"


def _reachable_to_outputs(circuit: Circuit) -> List[bool]:
    """Nodes from which some primary output is reachable (through FFs too)."""
    reach = [False] * circuit.num_nodes
    stack = list(circuit.outputs)
    for node_id in stack:
        reach[node_id] = True
    while stack:
        node_id = stack.pop()
        for src in circuit.fanins[node_id]:
            if not reach[src]:
                reach[src] = True
                stack.append(src)
    return reach


def validate(circuit: Circuit) -> List[Violation]:
    """Run all structural checks; returns findings (possibly empty)."""
    violations: List[Violation] = []

    def report(severity: Severity, rule: str, node_id: int, message: str) -> None:
        violations.append(
            Violation(severity, rule, circuit.node_names[node_id], message)
        )

    for node_id, gate_type in enumerate(circuit.node_types):
        fanin = circuit.fanins[node_id]
        if gate_type is GateType.INPUT and fanin:
            report(Severity.ERROR, "input-fanin", node_id, "primary input has fanins")
        if gate_type is GateType.DFF and len(fanin) != 1:
            report(Severity.ERROR, "dff-arity", node_id, f"DFF has {len(fanin)} fanins")
        if gate_type in (GateType.NOT, GateType.BUFF) and len(fanin) != 1:
            report(
                Severity.ERROR, "unary-arity", node_id,
                f"{gate_type.value} has {len(fanin)} fanins",
            )
        if gate_type.is_combinational and gate_type not in (GateType.NOT, GateType.BUFF):
            if len(fanin) < 2:
                report(
                    Severity.WARNING, "degenerate-gate", node_id,
                    f"{gate_type.value} with {len(fanin)} fanin(s)",
                )
        if len(set(fanin)) != len(fanin):
            report(Severity.WARNING, "duplicate-fanin", node_id, "repeated fanin net")

    is_output = [False] * circuit.num_nodes
    for po in circuit.outputs:
        is_output[po] = True
    reach = _reachable_to_outputs(circuit)
    for node_id in range(circuit.num_nodes):
        if not circuit.fanouts[node_id] and not is_output[node_id]:
            report(
                Severity.WARNING, "dangling", node_id,
                "node drives nothing and is not an output",
            )
        elif not reach[node_id]:
            report(
                Severity.WARNING, "dead-logic", node_id,
                "no path to any primary output",
            )
    return violations


def check(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` on the first error-level violation."""
    for violation in validate(circuit):
        if violation.severity is Severity.ERROR:
            raise CircuitError(str(violation))
