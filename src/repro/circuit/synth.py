"""Synthetic profile-matched sequential circuit generator.

The reproduction cannot ship the ISCAS89 netlists, so experiments run on
synthetic circuits matching each benchmark's *profile* — PI/PO/DFF/gate
counts and, critically, the structural sequential depth that the paper's
test-generation schedule keys on (see DESIGN.md §3).

Construction strategy
---------------------

Real sequential benchmarks owe their depth to a small state core (a
counter or FSM chain) that only sees its own state, embedded in a large,
well-controllable cloud of decode/control logic.  The generator mirrors
that:

* **Deep core** — ``seq_depth`` ranks of flip-flops.  The D logic of a
  rank-*k* flip-flop reads *only* rank-(k-1) flip-flop outputs (rank 1
  reads the primary inputs), which pins the minimum PI-to-node
  flip-flop distance of rank *k* to exactly *k* and hence the circuit's
  structural sequential depth to exactly ``seq_depth``.  Core logic is
  XOR/NOT-heavy (near-bijective state evolution keeps deep ranks
  controllable) and feed-forward (so the core self-initializes within
  ``seq_depth`` frames regardless of input).
* **Control cloud** — the bulk of the gates; reads PIs and every
  flip-flop, drives the primary outputs and the remaining "shallow"
  flip-flops (depth-1 state with feedback, as in real control logic).
  Gates with shallow-feedback fanins avoid XOR so unknowns can be
  masked during initialization.

The generator is fully deterministic given ``(profile, seed)``.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence

from .gates import GateType
from .netlist import Circuit
from .profiles import CircuitProfile, get_profile

#: Gate mix for the control cloud (NAND/NOR-heavy like ISCAS89).
_CLOUD_MIX = [
    (GateType.NAND, 22),
    (GateType.AND, 16),
    (GateType.NOR, 16),
    (GateType.OR, 14),
    (GateType.NOT, 16),
    (GateType.XOR, 6),
    (GateType.BUFF, 4),
]
_CLOUD_TYPES = [t for t, w in _CLOUD_MIX for _ in range(w)]

#: Gate mix for cloud gates that read shallow-feedback state: XOR would
#: propagate the initial X forever, so only maskable gates are used.
_MASKABLE_TYPES = [
    GateType.NAND, GateType.AND, GateType.NOR, GateType.OR,
    GateType.NAND, GateType.NOR,
]

#: Gate mix for the deep core (linear-heavy: controllable, propagating).
_CORE_MIX = [
    (GateType.XOR, 30),
    (GateType.XNOR, 14),
    (GateType.NOT, 16),
    (GateType.BUFF, 10),
    (GateType.NAND, 16),
    (GateType.NOR, 14),
]
_CORE_TYPES = [t for t, w in _CORE_MIX for _ in range(w)]

_FANIN_CHOICES = [2, 2, 2, 2, 3, 3]


def _split_even(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` positive near-equal integers."""
    if parts <= 0:
        return []
    if total < parts:
        raise ValueError(f"cannot split {total} into {parts} non-empty parts")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class _Synth:
    """Single-use builder holding the generation state for one circuit."""

    def __init__(self, profile: CircuitProfile, seed: int) -> None:
        self.profile = profile
        self.rng = random.Random(zlib.crc32(profile.name.encode()) ^ (seed * 0x9E3779B9))
        self.circuit = Circuit(profile.name)
        self.pi_names: List[str] = []
        self.gate_count = 0
        #: estimated P(signal = 1) per net, used to keep probabilities
        #: balanced (heavily skewed signals make random logic untestable,
        #: unlike designed logic — see _balanced_type).
        self.prob: dict = {}

    def _name(self) -> str:
        self.gate_count += 1
        return f"g{self.gate_count}"

    @staticmethod
    def _gate_prob(gate_type: GateType, probs: Sequence[float]) -> float:
        """P(output = 1) assuming independent inputs."""
        if gate_type in (GateType.NOT,):
            return 1.0 - probs[0]
        if gate_type in (GateType.BUFF, GateType.DFF):
            return probs[0]
        if gate_type in (GateType.AND, GateType.NAND):
            p = 1.0
            for q in probs:
                p *= q
            return 1.0 - p if gate_type is GateType.NAND else p
        if gate_type in (GateType.OR, GateType.NOR):
            p = 1.0
            for q in probs:
                p *= 1.0 - q
            return p if gate_type is GateType.NOR else 1.0 - p
        # XOR / XNOR
        p = probs[0]
        for q in probs[1:]:
            p = p * (1.0 - q) + q * (1.0 - p)
        return 1.0 - p if gate_type is GateType.XNOR else p

    def _balanced_type(self, candidates: Sequence[GateType], fanins: Sequence[str]) -> GateType:
        """Pick, among a few random candidates, the type whose output
        probability stays closest to 1/2."""
        rng = self.rng
        probs = [self.prob.get(f, 0.5) for f in fanins]
        picks = [rng.choice(list(candidates)) for _ in range(3)]
        return min(picks, key=lambda t: abs(self._gate_prob(t, probs) - 0.5))

    def _pick_fanins(self, sources: Sequence[str], n: int, must: str = None) -> List[str]:
        rng = self.rng
        fanins = [must] if must else []
        pool = [s for s in sources if s not in fanins]
        rng.shuffle(pool)
        fanins.extend(pool[: max(0, n - len(fanins))])
        return fanins

    def _emit(self, candidates: Sequence[GateType], sources: Sequence[str], must: str = None) -> str:
        """Emit one gate with probability-balanced type selection."""
        rng = self.rng
        n = min(rng.choice(_FANIN_CHOICES), len(set(sources)) + (1 if must else 0))
        fanins = self._pick_fanins(sources, max(2, n), must)
        if len(fanins) < 2:
            gate_type = GateType.NOT if rng.random() < 0.7 else GateType.BUFF
        else:
            multi = [t for t in candidates if t not in (GateType.NOT, GateType.BUFF)]
            gate_type = self._balanced_type(multi or list(candidates), fanins)
            if gate_type in (GateType.NOT, GateType.BUFF):
                fanins = fanins[:1]
        name = self._name()
        self.circuit.add_gate(name, gate_type, fanins)
        self.prob[name] = self._gate_prob(
            gate_type, [self.prob.get(f, 0.5) for f in fanins]
        )
        return name

    # ------------------------------------------------------------------

    def build(self) -> Circuit:
        """Construct the circuit (deep core, then observation trees)."""
        profile, rng = self.profile, self.rng
        depth = max(1, min(profile.seq_depth, profile.n_ff))

        for i in range(profile.n_pi):
            name = f"pi{i}"
            self.circuit.add_input(name)
            self.pi_names.append(name)
            self.prob[name] = 0.5

        # --- partition flip-flops: deep core vs shallow control state ---
        core_target = max(depth, round(profile.n_ff * 0.4))
        n_core_ff = min(profile.n_ff, core_target)
        n_shallow_ff = profile.n_ff - n_core_ff
        rank_sizes = _split_even(n_core_ff, depth)

        # --- deep core (~2 gates per core FF; cloud takes the rest) -------
        core_ffs: List[str] = []
        prev_rank: List[str] = list(self.pi_names)
        for k, n_ff in enumerate(rank_sizes, start=1):
            # Rank transition is a triangular XOR map:
            #   D_i = prev_i XOR g_i(prev_j, j < i)
            # which is bijective on the rank's state space.  Bijectivity
            # keeps full entropy flowing down the pipeline (any reachable
            # rank-(k-1) state maps onto a distinct rank-k state), so deep
            # state stays controllable and single-bit fault effects always
            # propagate to the next rank — the behaviour of real counter /
            # LFSR cores.  The cone still reads only the previous rank,
            # preserving the sequential-depth guarantee.
            rank_ffs: List[str] = []
            width_prev = len(prev_rank)
            for i in range(n_ff):
                base = prev_rank[i % width_prev]
                if i == 0 or width_prev == 1:
                    d_name = self._name()
                    d_type = rng.choice([GateType.NOT, GateType.BUFF, GateType.NOT])
                    self.circuit.add_gate(d_name, d_type, [base])
                    self.prob[d_name] = self._gate_prob(d_type, [self.prob.get(base, 0.5)])
                else:
                    lower_pool = [prev_rank[j % width_prev] for j in range(i)]
                    lower = list(dict.fromkeys(
                        rng.sample(lower_pool, min(len(set(lower_pool)), rng.choice([1, 2])))
                    ))
                    if base in lower:
                        lower.remove(base)
                    if lower:
                        aux = self._emit(
                            [GateType.AND, GateType.OR, GateType.NAND,
                             GateType.NOR, GateType.NOT],
                            lower,
                            must=lower[0],
                        )
                    else:
                        aux = None
                    d_name = self._name()
                    if aux is not None:
                        self.circuit.add_gate(d_name, GateType.XOR, [base, aux])
                        self.prob[d_name] = self._gate_prob(
                            GateType.XOR,
                            [self.prob.get(base, 0.5), self.prob.get(aux, 0.5)],
                        )
                    else:
                        self.circuit.add_gate(d_name, GateType.NOT, [base])
                        self.prob[d_name] = 1.0 - self.prob.get(base, 0.5)
                ff_name = f"cff{k}_{i}"
                self.circuit.add_dff(ff_name, d_name)
                self.prob[ff_name] = self.prob.get(d_name, 0.5)
                rank_ffs.append(ff_name)
            core_ffs.extend(rank_ffs)
            prev_rank = rank_ffs

        # --- control cloud: observation trees ------------------------------
        # Each primary output and each shallow flip-flop roots a mostly
        # fanout-free tree over PI/FF leaves.  Fanout-free cones are
        # highly testable (every fault effect has an unbranched path to
        # the observation point), which is what gives real benchmark
        # circuits their coverage profile; a moderate rate of cross-tree
        # taps reintroduces realistic fanout and reconvergence.
        shallow_ffs = [f"sff{j}" for j in range(n_shallow_ff)]
        leaf_pool = self.pi_names + core_ffs + shallow_ffs
        n_trees = profile.n_po + n_shallow_ff
        cloud_gate_budget = max(profile.n_gates - self.gate_count, n_trees)
        tree_sizes = _split_even(max(cloud_gate_budget, n_trees), n_trees)
        all_cloud_gates: List[str] = []
        roots: List[str] = []
        for n_gates in tree_sizes:
            # Working queue of signals to be combined; ends as one root.
            # Seeding with ~n_gates+1 leaves and always popping from random
            # positions yields balanced trees (depth ~ log2 of tree size),
            # keeping the cone controllable.
            queue: List[str] = [
                rng.choice(leaf_pool) for _ in range(n_gates + 1)
            ]
            tree_gates: List[str] = []
            for _ in range(n_gates):
                fanins: List[str] = []
                arity = rng.choice(_FANIN_CHOICES)
                while len(fanins) < arity:
                    roll = rng.random()
                    if queue and roll < 0.80:
                        fanins.append(queue.pop(rng.randrange(len(queue))))
                    elif all_cloud_gates and roll < 0.88:
                        # Cross-tree tap: creates fanout and reconvergence.
                        fanins.append(rng.choice(all_cloud_gates))
                    else:
                        fanins.append(rng.choice(leaf_pool))
                fanins = list(dict.fromkeys(fanins))  # no duplicate nets
                candidates = (
                    _MASKABLE_TYPES
                    if any(f in shallow_ffs for f in fanins)
                    else _CLOUD_TYPES
                )
                if len(fanins) < 2:
                    gate_type = rng.choice([GateType.NOT, GateType.BUFF])
                    fanins = fanins[:1]
                else:
                    multi = [
                        t for t in candidates
                        if t not in (GateType.NOT, GateType.BUFF)
                    ]
                    gate_type = self._balanced_type(multi, fanins)
                name = self._name()
                self.circuit.add_gate(name, gate_type, fanins)
                self.prob[name] = self._gate_prob(
                    gate_type, [self.prob.get(f, 0.5) for f in fanins]
                )
                tree_gates.append(name)
                queue.append(name)
            # Fold any remaining queue entries into the root.
            while len(queue) > 1:
                a = queue.pop(rng.randrange(len(queue)))
                b = queue.pop(rng.randrange(len(queue)))
                candidates = (
                    _MASKABLE_TYPES
                    if (a in shallow_ffs or b in shallow_ffs)
                    else _CLOUD_TYPES
                )
                gate_type = self._balanced_type(
                    [t for t in candidates if t not in (GateType.NOT, GateType.BUFF)],
                    [a, b],
                )
                name = self._name()
                self.circuit.add_gate(name, gate_type, [a, b])
                self.prob[name] = self._gate_prob(
                    gate_type, [self.prob.get(f, 0.5) for f in [a, b]]
                )
                tree_gates.append(name)
                queue.append(name)
            roots.append(queue[0])
            all_cloud_gates.extend(tree_gates)

        # First n_po roots become outputs; the rest drive shallow FFs.
        for root in roots[: profile.n_po]:
            self.circuit.mark_output(root)
        for ff_name, root in zip(shallow_ffs, roots[profile.n_po:]):
            self.circuit.add_dff(ff_name, root)

        circuit = self.circuit.finalize()
        actual_depth = circuit.sequential_depth()
        if actual_depth != depth:
            raise AssertionError(
                f"synthesized {profile.name}: sequential depth {actual_depth} "
                f"!= target {depth}"
            )
        return circuit


def synthesize(profile: CircuitProfile, seed: int = 0) -> Circuit:
    """Generate a deterministic synthetic circuit matching ``profile``."""
    return _Synth(profile, seed).build()


def synthesize_named(name: str, seed: int = 0, scale: float = 1.0) -> Circuit:
    """Generate the synthetic stand-in for an ISCAS89 circuit by name.

    ``scale`` proportionally shrinks FF/gate/PO counts (depth preserved
    up to the shrunk FF count) for fast test and benchmark runs.
    """
    return synthesize(get_profile(name).scaled(scale), seed=seed)


def profile_of(circuit: Circuit) -> CircuitProfile:
    """Extract the realized profile of a circuit (for reporting)."""
    return CircuitProfile(
        name=circuit.name,
        n_pi=circuit.num_inputs,
        n_po=circuit.num_outputs,
        n_ff=circuit.num_dffs,
        n_gates=circuit.num_gates,
        seq_depth=circuit.sequential_depth(),
    )
