"""Reader and writer for the ISCAS89 ``.bench`` netlist format.

The format, as distributed with the ISCAS89 benchmark suite::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NOT(G10)
    G14 = NOR(G0, G11)

Gate keywords are case-insensitive; node names are case-sensitive.
Forward references are allowed (and ubiquitous in the real files).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from ..atomicio import atomic_write_text
from .gates import BENCH_NAMES, GateType
from .netlist import Circuit, CircuitError

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z][A-Za-z0-9_]*)\s*\(\s*(.*?)\s*\)$")


class BenchParseError(CircuitError):
    """Raised on malformed ``.bench`` input.

    Carries the 1-based ``lineno`` (0 for whole-file errors raised at
    finalize time) and the ``source`` — the file name when parsing came
    through :func:`load_bench` — so error messages pinpoint the exact
    spot: ``broken.bench: line 3: unknown gate type 'NAN'``.
    """

    def __init__(
        self, lineno: int, message: str, source: Optional[str] = None
    ) -> None:
        prefix = f"{source}: " if source else ""
        where = f"line {lineno}: " if lineno else ""
        super().__init__(f"{prefix}{where}{message}")
        self.lineno = lineno
        self.source = source


def parse_bench(
    text: str, name: str = "circuit", source: Optional[str] = None
) -> Circuit:
    """Parse ``.bench`` source text into a finalized :class:`Circuit`.

    ``source`` (usually a file name) is woven into parse-error messages.
    """
    circuit = Circuit(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, node_name = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                if node_name in circuit.name_to_id and node_name not in circuit._declared:
                    raise BenchParseError(
                        lineno, f"input {node_name!r} already defined", source
                    )
                circuit.add_input(node_name)
            else:
                circuit.mark_output(node_name)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            node_name, keyword, args = gate_match.groups()
            gate_type = BENCH_NAMES.get(keyword.lower())
            if gate_type is None:
                raise BenchParseError(
                    lineno, f"unknown gate type {keyword!r}", source
                )
            fanins = [a.strip() for a in args.split(",") if a.strip()]
            if not fanins:
                raise BenchParseError(
                    lineno, f"gate {node_name!r} has no fanins", source
                )
            try:
                if gate_type is GateType.DFF:
                    if len(fanins) != 1:
                        raise BenchParseError(
                            lineno, "DFF must have exactly one input", source
                        )
                    circuit.add_dff(node_name, fanins[0])
                else:
                    circuit.add_gate(node_name, gate_type, fanins)
            except BenchParseError:
                raise
            except CircuitError as exc:
                raise BenchParseError(lineno, str(exc), source) from exc
            continue
        raise BenchParseError(
            lineno, f"unparseable line: {raw.strip()!r}", source
        )
    try:
        return circuit.finalize()
    except CircuitError as exc:
        raise BenchParseError(0, str(exc), source) from exc


def load_bench(path: Union[str, Path]) -> Circuit:
    """Load a ``.bench`` file from disk.

    Parse errors name the file: ``<file>: line <n>: <what went wrong>``.
    """
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem, source=path.name)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit back to ``.bench`` text.

    Round-trips through :func:`parse_bench` up to comment/whitespace and
    ordering of declarations.
    """
    lines = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({circuit.node_names[pi]})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({circuit.node_names[po]})")
    for node_id, gate_type in enumerate(circuit.node_types):
        if gate_type is GateType.INPUT:
            continue
        fanin_names = ", ".join(circuit.node_names[f] for f in circuit.fanins[node_id])
        keyword = "DFF" if gate_type is GateType.DFF else gate_type.value.upper()
        lines.append(f"{circuit.node_names[node_id]} = {keyword}({fanin_names})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a ``.bench`` file (atomically)."""
    atomic_write_text(path, write_bench(circuit))
