"""Gate-level netlist model for synchronous sequential circuits.

A :class:`Circuit` is a directed graph of nodes.  Node kinds:

* ``INPUT`` — primary input (no fanin);
* ``DFF`` — D flip-flop; exactly one fanin (the D input).  The node's
  value during simulation is the *present-state* output Q;
* combinational gates (AND/NAND/OR/NOR/NOT/BUFF/XOR/XNOR).

Primary outputs are a designated subset of nodes (any node may be
observed).  The model matches the ISCAS89 ``.bench`` view of the world:
single clock, implicit and never modelled explicitly; flip-flops have no
set/reset.

Construction is two-phase: ``add_*`` calls build the graph (forward
references allowed through :meth:`Circuit.declare`), then
:meth:`Circuit.finalize` freezes it and computes the derived structures
used everywhere else — levelized evaluation order, fanout lists,
structural sequential depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .gates import GateType


class CircuitError(Exception):
    """Raised for structurally invalid netlists or misuse of the builder."""


@dataclass
class Node:
    """Read-only view of one netlist node (handy for debugging/reporting)."""

    id: int
    name: str
    type: GateType
    fanin: Tuple[int, ...]
    fanout: Tuple[int, ...]


_UNRESOLVED = GateType.BUFF  # placeholder type for declared-but-undefined nodes


class Circuit:
    """A synchronous sequential gate-level circuit.

    The heavy simulation code indexes the parallel arrays directly
    (``node_types``, ``fanins``, ``topo_order`` …); user code should
    prefer the accessor methods.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.node_names: List[str] = []
        self.node_types: List[GateType] = []
        self.fanins: List[Tuple[int, ...]] = []
        self.fanouts: List[Tuple[int, ...]] = []
        self.name_to_id: Dict[str, int] = {}
        self.inputs: List[int] = []   # PI node ids, in declaration order
        self.outputs: List[int] = []  # PO node ids, in declaration order
        self.dffs: List[int] = []     # DFF node ids, in declaration order
        self.topo_order: List[int] = []   # combinational nodes, level order
        self.levels: List[int] = []       # per-node level (0 for PI/DFF)
        self._declared: Dict[str, int] = {}  # declared but not yet defined
        self._finalized = False
        self._seq_depth: Optional[int] = None

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------

    def declare(self, name: str) -> int:
        """Return the id for ``name``, creating a placeholder if needed.

        Used for forward references while parsing; every declared node
        must be defined (given a type and fanins) before ``finalize``.
        """
        if name in self.name_to_id:
            return self.name_to_id[name]
        node_id = self._new_node(name, _UNRESOLVED, ())
        self._declared[name] = node_id
        return node_id

    def add_input(self, name: str) -> int:
        """Add a primary input node."""
        node_id = self._define(name, GateType.INPUT, ())
        self.inputs.append(node_id)
        return node_id

    def add_dff(self, name: str, d_input: str) -> int:
        """Add a D flip-flop whose D input is the node named ``d_input``."""
        node_id = self._define(name, GateType.DFF, (self.declare(d_input),))
        self.dffs.append(node_id)
        return node_id

    def add_gate(self, name: str, gate_type: GateType, fanin_names: Sequence[str]) -> int:
        """Add a combinational gate."""
        if not gate_type.is_combinational:
            raise CircuitError(
                f"add_gate called with non-combinational type {gate_type}; "
                "use add_input/add_dff"
            )
        if gate_type in (GateType.NOT, GateType.BUFF) and len(fanin_names) != 1:
            raise CircuitError(f"{gate_type.value} gate {name!r} must have exactly one fanin")
        if gate_type not in (GateType.NOT, GateType.BUFF) and len(fanin_names) < 1:
            raise CircuitError(f"gate {name!r} has no fanins")
        fanin_ids = tuple(self.declare(n) for n in fanin_names)
        return self._define(name, gate_type, fanin_ids)

    def mark_output(self, name: str) -> int:
        """Mark an existing or forward-declared node as a primary output."""
        node_id = self.declare(name)
        self.outputs.append(node_id)
        return node_id

    def _new_node(self, name: str, gate_type: GateType, fanin: Tuple[int, ...]) -> int:
        if self._finalized:
            raise CircuitError("circuit is finalized; cannot add nodes")
        node_id = len(self.node_names)
        self.node_names.append(name)
        self.node_types.append(gate_type)
        self.fanins.append(fanin)
        self.name_to_id[name] = node_id
        return node_id

    def _define(self, name: str, gate_type: GateType, fanin: Tuple[int, ...]) -> int:
        if name in self._declared:
            node_id = self._declared.pop(name)
            self.node_types[node_id] = gate_type
            self.fanins[node_id] = fanin
            return node_id
        if name in self.name_to_id:
            raise CircuitError(f"node {name!r} defined twice")
        return self._new_node(name, gate_type, fanin)

    # ------------------------------------------------------------------
    # Finalization and derived structure
    # ------------------------------------------------------------------

    def finalize(self) -> "Circuit":
        """Freeze the netlist and compute levels, fanouts and topo order.

        Returns ``self`` so construction can be written fluently.
        """
        if self._finalized:
            return self
        if self._declared:
            missing = sorted(self._declared)
            raise CircuitError(f"nodes referenced but never defined: {missing}")
        if not self.inputs and not self.dffs:
            raise CircuitError("circuit has no primary inputs and no flip-flops")

        fanout_lists: List[List[int]] = [[] for _ in self.node_names]
        for node_id, fanin in enumerate(self.fanins):
            for src in fanin:
                fanout_lists[src].append(node_id)
        self.fanouts = [tuple(f) for f in fanout_lists]

        self._levelize()
        self._finalized = True
        return self

    def _levelize(self) -> None:
        """Compute combinational levels treating DFF outputs as sources.

        Detects combinational cycles (illegal in this model).
        """
        n = len(self.node_names)
        self.levels = [0] * n
        # Kahn's algorithm over combinational edges only.  Edges into a DFF
        # terminate a combinational path (the DFF output restarts at level 0).
        indegree = [0] * n
        for node_id, gate_type in enumerate(self.node_types):
            if gate_type.is_combinational:
                indegree[node_id] = len(self.fanins[node_id])
        ready = [i for i in range(n) if indegree[i] == 0]
        order: List[int] = []
        head = 0
        while head < len(ready):
            node_id = ready[head]
            head += 1
            if self.node_types[node_id].is_combinational:
                order.append(node_id)
            for succ in self.fanouts[node_id]:
                if not self.node_types[succ].is_combinational:
                    continue
                indegree[succ] -= 1
                self.levels[succ] = max(self.levels[succ], self.levels[node_id] + 1)
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(ready) != n:
            stuck = [self.node_names[i] for i in range(n) if indegree[i] > 0]
            raise CircuitError(f"combinational cycle involving: {stuck[:10]}")
        self.topo_order = order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count (PIs + DFFs + gates)."""
        return len(self.node_names)

    @property
    def num_inputs(self) -> int:
        """Primary input count."""
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        """Primary output count."""
        return len(self.outputs)

    @property
    def num_dffs(self) -> int:
        """Flip-flop count."""
        return len(self.dffs)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (excludes PIs and DFFs)."""
        return sum(1 for t in self.node_types if t.is_combinational)

    def node(self, node_id: int) -> Node:
        """Return a read-only view of one node."""
        return Node(
            id=node_id,
            name=self.node_names[node_id],
            type=self.node_types[node_id],
            fanin=self.fanins[node_id],
            fanout=self.fanouts[node_id] if self._finalized else (),
        )

    def id_of(self, name: str) -> int:
        """Node id for ``name`` (raises ``KeyError`` if absent)."""
        return self.name_to_id[name]

    def iter_nodes(self) -> Iterable[Node]:
        """Yield read-only views of every node."""
        for node_id in range(self.num_nodes):
            yield self.node(node_id)

    def max_level(self) -> int:
        """Deepest combinational level (0 for a circuit of wires only)."""
        return max(self.levels, default=0)

    def sequential_depth(self) -> int:
        """Structural sequential depth per the paper's definition.

        "The minimum number of flip-flops in a path between the primary
        inputs and the furthest gate": for every node reachable from a PI
        we compute the *minimum* number of DFF crossings on any PI-to-node
        path, then take the maximum of that quantity over all reachable
        nodes.  A purely combinational circuit has depth 0.
        """
        if self._seq_depth is not None:
            return self._seq_depth
        if not self._finalized:
            raise CircuitError("finalize() must run before sequential_depth()")

        INF = float("inf")
        dist: List[float] = [INF] * self.num_nodes
        # 0-1 BFS: edges into a DFF cost 1 (a flip-flop is crossed), all
        # other edges cost 0.
        from collections import deque

        queue: deque = deque()
        for pi in self.inputs:
            dist[pi] = 0
            queue.append(pi)
        # Circuits with no PIs (autonomous) start from DFFs at depth 0.
        if not self.inputs:
            for ff in self.dffs:
                dist[ff] = 0
                queue.append(ff)
        while queue:
            node_id = queue.popleft()
            d = dist[node_id]
            for succ in self.fanouts[node_id]:
                cost = 1 if self.node_types[succ] is GateType.DFF else 0
                nd = d + cost
                if nd < dist[succ]:
                    dist[succ] = nd
                    if cost == 0:
                        queue.appendleft(succ)
                    else:
                        queue.append(succ)
        finite = [d for d in dist if d is not INF and d != INF]
        self._seq_depth = int(max(finite, default=0))
        return self._seq_depth

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by reports and the harness."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "dffs": self.num_dffs,
            "gates": self.num_gates,
            "nodes": self.num_nodes,
            "levels": self.max_level(),
            "seq_depth": self.sequential_depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, pis={self.num_inputs}, pos={self.num_outputs}, "
            f"dffs={self.num_dffs}, gates={self.num_gates})"
        )
