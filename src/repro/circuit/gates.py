"""Gate types and word-parallel three-valued gate evaluation primitives.

Signals are represented in a two-bit-plane encoding: a signal value is a
pair of machine words ``(v1, v0)``.  Bit *i* of ``v1`` set means slot *i*
carries logic 1; bit *i* of ``v0`` set means slot *i* carries logic 0;
neither bit set means unknown (X).  Both bits set is illegal and never
produced by the operators below.  Because Python integers have arbitrary
width, a single pair of words evaluates a gate for any number of parallel
slots (patterns or faulty machines) in one bitwise operation — this is the
core trick that makes pure-Python fault simulation viable (see DESIGN.md
section 6).
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple

Word = int
Val3 = Tuple[Word, Word]  # (v1 plane, v0 plane)


class GateType(enum.Enum):
    """All node types supported by the netlist model.

    ``INPUT`` is a primary input, ``DFF`` is a D flip-flop (one fanin, its
    D input; its output is the present-state value).  The remaining types
    are combinational gates with one or more fanins.
    """

    INPUT = "input"
    DFF = "dff"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    NOT = "not"
    BUFF = "buff"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def is_sequential(self) -> bool:
        """True for state-holding node types (DFF)."""
        return self is GateType.DFF

    @property
    def is_combinational(self) -> bool:
        """True for gate types evaluated within a time frame."""
        return self not in (GateType.INPUT, GateType.DFF)


#: Gate types whose controlling value is 0 (AND family) or 1 (OR family).
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Inversion parity of each gate type (output inverted w.r.t. the
#: "underlying" monotone function).
INVERTING = {
    GateType.NAND: True,
    GateType.NOR: True,
    GateType.NOT: True,
    GateType.XNOR: True,
    GateType.AND: False,
    GateType.OR: False,
    GateType.BUFF: False,
    GateType.XOR: False,
}

# Names accepted by the .bench parser, lowercase, mapped to GateType.
BENCH_NAMES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "not": GateType.NOT,
    "inv": GateType.NOT,
    "buf": GateType.BUFF,
    "buff": GateType.BUFF,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "dff": GateType.DFF,
}


# ---------------------------------------------------------------------------
# Three-valued word-parallel operators.
# ---------------------------------------------------------------------------

def v3_const0(mask: Word) -> Val3:
    """All slots at logic 0."""
    return (0, mask)


def v3_const1(mask: Word) -> Val3:
    """All slots at logic 1."""
    return (mask, 0)


def v3_constx() -> Val3:
    """All slots unknown."""
    return (0, 0)


def v3_not(a: Val3) -> Val3:
    """Three-valued NOT: swap the bit planes."""
    return (a[1], a[0])


def v3_and(a: Val3, b: Val3) -> Val3:
    """Three-valued AND: 1 where both 1; 0 where either 0 (controlling
    value dominates X); X otherwise."""
    return (a[0] & b[0], a[1] | b[1])


def v3_or(a: Val3, b: Val3) -> Val3:
    """Three-valued OR: 1 where either 1; 0 where both 0; X otherwise."""
    return (a[0] | b[0], a[1] & b[1])


def v3_xor(a: Val3, b: Val3) -> Val3:
    """Three-valued XOR: defined only where both inputs are definite."""
    return ((a[0] & b[1]) | (a[1] & b[0]), (a[0] & b[0]) | (a[1] & b[1]))


_and2, _or2, _xor2 = v3_and, v3_or, v3_xor


def v3_fold(gate_type: GateType, inputs: Iterable[Val3], mask: Word) -> Val3:
    """Evaluate an arbitrary-fanin gate over three-valued words.

    ``mask`` is the word of active slots (all ones up to the slot count);
    it is needed to express the identity element of AND (all ones).
    """
    if gate_type is GateType.NOT:
        (a,) = inputs
        return v3_not(a)
    if gate_type in (GateType.BUFF, GateType.DFF):
        (a,) = inputs
        return a

    it = iter(inputs)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError(f"gate of type {gate_type} requires at least one input")

    if gate_type in (GateType.AND, GateType.NAND):
        for v in it:
            acc = _and2(acc, v)
        return v3_not(acc) if gate_type is GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        for v in it:
            acc = _or2(acc, v)
        return v3_not(acc) if gate_type is GateType.NOR else acc
    if gate_type in (GateType.XOR, GateType.XNOR):
        for v in it:
            acc = _xor2(acc, v)
        return v3_not(acc) if gate_type is GateType.XNOR else acc
    raise ValueError(f"cannot evaluate gate type {gate_type}")


# ---------------------------------------------------------------------------
# Scalar three-valued helpers (used by tests, the event-driven simulator,
# and anywhere readability beats throughput).  Scalar values are encoded as
# 0, 1, or the module-level constant X.
# ---------------------------------------------------------------------------

X = 2  #: scalar encoding of the unknown value


def scalar_to_v3(value: int, mask: Word = 1) -> Val3:
    """Broadcast a scalar 0/1/X to all slots of a word pair."""
    if value == 0:
        return v3_const0(mask)
    if value == 1:
        return v3_const1(mask)
    if value == X:
        return v3_constx()
    raise ValueError(f"not a three-valued scalar: {value!r}")


def v3_to_scalar(value: Val3, slot: int = 0) -> int:
    """Extract the scalar 0/1/X held in one slot of a word pair."""
    bit = 1 << slot
    one = bool(value[0] & bit)
    zero = bool(value[1] & bit)
    if one and zero:
        raise ValueError(f"slot {slot} holds the illegal 11 encoding")
    if one:
        return 1
    if zero:
        return 0
    return X


def eval_gate_scalar(gate_type: GateType, inputs: Iterable[int]) -> int:
    """Evaluate one gate on scalar 0/1/X inputs (reference implementation).

    This is the simple, obviously-correct evaluator the word-parallel path
    is property-tested against.
    """
    vals = list(inputs)
    out = v3_fold(gate_type, [scalar_to_v3(v) for v in vals], 1)
    return v3_to_scalar(out)


def v3_valid(value: Val3, mask: Word) -> bool:
    """True when no slot holds the illegal 11 encoding and no bit exceeds the mask."""
    v1, v0 = value
    return (v1 & v0) == 0 and (v1 | v0) & ~mask == 0
