"""Bundled and parametric example circuits.

Two real benchmark netlists ship with the package (``s27`` from ISCAS89
and ``c17`` from ISCAS85 — both small enough to be public knowledge and
verified against their published descriptions).  The parametric builders
construct well-understood sequential structures used throughout the test
suite: their expected behaviour (sequential depth, initializability,
detectable-fault sets) can be derived by hand.
"""

from __future__ import annotations

from importlib import resources
from typing import List

from .bench import parse_bench
from .gates import GateType
from .netlist import Circuit


def _load_data(filename: str, name: str) -> Circuit:
    text = resources.files("repro.circuit").joinpath("data", filename).read_text()
    return parse_bench(text, name=name)


def s27() -> Circuit:
    """The ISCAS89 s27 benchmark (4 PIs, 1 PO, 3 DFFs, 10 gates)."""
    return _load_data("s27.bench", "s27")


def c17() -> Circuit:
    """The ISCAS85 c17 benchmark (combinational; 5 PIs, 2 POs, 6 NANDs)."""
    return _load_data("c17.bench", "c17")


def shift_register(n: int) -> Circuit:
    """An n-stage shift register: depth ``n``, trivially initializable.

    ``din -> ff0 -> ff1 -> ... -> ff(n-1) -> dout``.  Every stuck-at fault
    on the datapath is detectable by a sequence of length ``n + 1``.
    """
    if n < 1:
        raise ValueError("shift register needs at least one stage")
    circuit = Circuit(f"shift{n}")
    circuit.add_input("din")
    prev = "din"
    for i in range(n):
        # A buffer between stages gives the fault list combinational sites.
        circuit.add_gate(f"b{i}", GateType.BUFF, [prev])
        circuit.add_dff(f"ff{i}", f"b{i}")
        prev = f"ff{i}"
    circuit.add_gate("dout", GateType.BUFF, [prev])
    circuit.mark_output("dout")
    return circuit.finalize()


def resettable_counter(n: int) -> Circuit:
    """An n-bit synchronous binary counter with synchronous reset.

    With ``rst = 1`` every flip-flop loads 0, so the circuit is
    initializable in one vector — the friendly case for phase-1 fitness.
    Bit *i* toggles when all lower bits are 1:
    ``d[i] = ~rst & (q[i] ^ carry[i])`` with ``carry[0] = en``.
    """
    if n < 1:
        raise ValueError("counter needs at least one bit")
    circuit = Circuit(f"counter{n}")
    circuit.add_input("rst")
    circuit.add_input("en")
    circuit.add_gate("nrst", GateType.NOT, ["rst"])
    carry = "en"
    for i in range(n):
        q = f"q{i}"
        circuit.add_gate(f"t{i}", GateType.XOR, [q, carry])
        circuit.add_gate(f"d{i}", GateType.AND, [f"t{i}", "nrst"])
        circuit.add_dff(q, f"d{i}")
        circuit.mark_output(q)
        if i + 1 < n:
            new_carry = f"c{i + 1}"
            circuit.add_gate(new_carry, GateType.AND, [carry, q])
            carry = new_carry
    return circuit.finalize()


def parity_tracker() -> Circuit:
    """A serial parity tracker with synchronous clear.

    ``d = clr' AND (din XOR q)``.  Without asserting ``clr`` the state
    stays unknown forever under three-valued simulation (X XOR v = X),
    which makes this the canonical phase-1 stress case.
    """
    circuit = Circuit("parity")
    circuit.add_input("din")
    circuit.add_input("clr")
    circuit.add_gate("nclr", GateType.NOT, ["clr"])
    circuit.add_gate("x0", GateType.XOR, ["din", "q"])
    circuit.add_gate("d0", GateType.AND, ["x0", "nclr"])
    circuit.add_dff("q", "d0")
    circuit.mark_output("q")
    return circuit.finalize()


def uninitializable_loop() -> Circuit:
    """A flip-flop loop that three-valued simulation can never initialize.

    ``q -> inv -> q`` with the observed value gated by a PI.  Used to test
    that phase 1 gives up gracefully at its progress limit.
    """
    circuit = Circuit("uninit")
    circuit.add_input("a")
    circuit.add_gate("nq", GateType.XOR, ["q", "a"])
    circuit.add_dff("q", "nq")
    circuit.add_gate("out", GateType.AND, ["q", "a"])
    circuit.mark_output("out")
    return circuit.finalize()


def mini_fsm() -> Circuit:
    """A 2-bit Moore machine with reset, rich enough for ATPG tests.

    States advance on ``go``; output asserts in state 3.  All flip-flops
    initialize with one ``rst`` vector; most stuck-at faults need a short
    state-walking sequence, exercising the sequence-generation phase.
    """
    circuit = Circuit("minifsm")
    circuit.add_input("rst")
    circuit.add_input("go")
    circuit.add_gate("nrst", GateType.NOT, ["rst"])
    # Next-state logic for a 2-bit counter gated by `go`.
    circuit.add_gate("t0", GateType.XOR, ["s0", "go"])
    circuit.add_gate("d0", GateType.AND, ["t0", "nrst"])
    circuit.add_gate("c0", GateType.AND, ["s0", "go"])
    circuit.add_gate("t1", GateType.XOR, ["s1", "c0"])
    circuit.add_gate("d1", GateType.AND, ["t1", "nrst"])
    circuit.add_dff("s0", "d0")
    circuit.add_dff("s1", "d1")
    circuit.add_gate("out", GateType.AND, ["s0", "s1"])
    circuit.mark_output("out")
    return circuit.finalize()


def resolve_spec(spec: str, scale: float = 1.0, seed: int = 0) -> Circuit:
    """Resolve a circuit spec string to a :class:`Circuit`.

    The one spelling of "name a circuit" shared by the CLI and the job
    service: a ``.bench`` file path, a :func:`list_builtin` name, or an
    ISCAS89 profile name (optionally ``name@variant``) synthesized with
    ``seed``/``scale``.  Raises :class:`ValueError` on an unknown spec —
    callers map that to their own error surface (``SystemExit`` for the
    CLI, HTTP 400 for the service).
    """
    from pathlib import Path

    from .bench import load_bench
    from .profiles import ISCAS89_PROFILES
    from .synth import synthesize_named

    path = Path(spec)
    if path.suffix == ".bench" and path.exists():
        return load_bench(path)
    if spec in list_builtin():
        return build_builtin(spec)
    if spec.split("@")[0] in ISCAS89_PROFILES:
        return synthesize_named(spec.split("@")[0], seed=seed, scale=scale)
    raise ValueError(
        f"unknown circuit {spec!r} — give a .bench path, one of "
        f"{list_builtin()}, or an ISCAS89 name like s298"
    )


def list_builtin() -> List[str]:
    """Names of all circuits constructible by :func:`build_builtin`."""
    return ["s27", "c17", "shift4", "counter3", "parity", "uninit", "minifsm"]


def build_builtin(name: str) -> Circuit:
    """Construct a bundled circuit by its :func:`list_builtin` name."""
    builders = {
        "s27": s27,
        "c17": c17,
        "shift4": lambda: shift_register(4),
        "counter3": lambda: resettable_counter(3),
        "parity": parity_tracker,
        "uninit": uninitializable_loop,
        "minifsm": mini_fsm,
    }
    try:
        return builders[name]()
    except KeyError:
        raise KeyError(f"unknown builtin circuit {name!r}; see list_builtin()") from None
