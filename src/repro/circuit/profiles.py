"""Published structural profiles of the ISCAS89 benchmark circuits.

The reproduction does not ship the ISCAS89 netlists (see DESIGN.md §3);
instead, :mod:`repro.circuit.synth` generates a synthetic circuit matched
to each member's profile.  PIs, sequential depth, and total fault counts
for the circuits used in the paper come from the paper's Table 2; PO, DFF
and gate counts are the published ISCAS89 characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CircuitProfile:
    """Structural summary of one benchmark circuit.

    ``total_faults`` is the collapsed stuck-at fault count reported in the
    paper's Table 2 (``None`` for circuits the paper does not list).
    """

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    seq_depth: int
    total_faults: Optional[int] = None

    def scaled(self, scale: float) -> "CircuitProfile":
        """Return a proportionally smaller profile (same PIs).

        Sequential depth scales with the rest of the structure (floor 2)
        so a scaled circuit keeps the balance between deep pipeline
        state and shallow control state — keeping full depth while
        shrinking the flip-flop count would leave a pure pipeline, which
        has very different test-generation dynamics.  Used by the test
        suite and the pytest-benchmark targets; the full-scale harness
        uses the unscaled profiles.
        """
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        n_ff = max(1, round(self.n_ff * scale))
        depth = min(max(2, round(self.seq_depth * scale)), self.seq_depth, n_ff)
        return CircuitProfile(
            name=f"{self.name}@{scale:g}",
            n_pi=self.n_pi,
            n_po=max(1, round(self.n_po * scale)),
            n_ff=n_ff,
            n_gates=max(4, round(self.n_gates * scale)),
            seq_depth=max(1, depth),
            total_faults=None,
        )


#: Profiles for every circuit appearing in the paper's tables, plus s27.
ISCAS89_PROFILES: Dict[str, CircuitProfile] = {
    p.name: p
    for p in [
        CircuitProfile("s27", 4, 1, 3, 10, 1, 32),
        CircuitProfile("s298", 3, 6, 14, 119, 8, 308),
        CircuitProfile("s344", 9, 11, 15, 160, 6, 342),
        CircuitProfile("s349", 9, 11, 15, 161, 6, 350),
        CircuitProfile("s382", 3, 6, 21, 158, 11, 399),
        CircuitProfile("s386", 7, 7, 6, 159, 5, 384),
        CircuitProfile("s400", 3, 6, 21, 162, 11, 426),
        CircuitProfile("s444", 3, 6, 21, 181, 11, 474),
        CircuitProfile("s526", 3, 6, 21, 193, 11, 555),
        CircuitProfile("s641", 35, 24, 19, 379, 6, 467),
        CircuitProfile("s713", 35, 23, 19, 393, 6, 581),
        CircuitProfile("s820", 18, 19, 5, 289, 4, 850),
        CircuitProfile("s832", 18, 19, 5, 287, 4, 870),
        CircuitProfile("s1196", 14, 14, 18, 529, 4, 1242),
        CircuitProfile("s1238", 14, 14, 18, 508, 4, 1355),
        CircuitProfile("s1423", 17, 5, 74, 657, 10, 1515),
        CircuitProfile("s1488", 8, 19, 6, 653, 5, 1486),
        CircuitProfile("s1494", 8, 19, 6, 647, 5, 1506),
        CircuitProfile("s5378", 35, 49, 179, 2779, 36, 4603),
        CircuitProfile("s35932", 35, 320, 1728, 16065, 35, 39094),
    ]
}

#: The circuits reported in Table 2, in the paper's row order.
TABLE2_CIRCUITS: List[str] = [
    "s298", "s344", "s349", "s382", "s386", "s400", "s444", "s526",
    "s641", "s713", "s820", "s832", "s1196", "s1238", "s1423",
    "s1488", "s1494", "s5378", "s35932",
]

#: Circuits appearing in the selection/crossover study (Table 3) — the
#: paper omits circuits whose coverage was insensitive to the schemes.
TABLE3_CIRCUITS: List[str] = [
    "s298", "s386", "s526", "s820", "s832", "s1196", "s1238",
    "s1423", "s1488", "s1494", "s5378",
]

#: Circuits in the mutation-rate study (Table 4).
TABLE4_CIRCUITS: List[str] = [
    "s298", "s386", "s820", "s832", "s1196", "s1238",
    "s1423", "s1488", "s1494", "s5378",
]

#: Circuits in the coding/population study (Table 5) — same as Table 3.
TABLE5_CIRCUITS: List[str] = list(TABLE3_CIRCUITS)

#: Circuits in the fault-sampling study (Table 6).
TABLE6_CIRCUITS: List[str] = [
    "s298", "s382", "s386", "s526", "s820", "s832", "s1196",
    "s1238", "s1423", "s1488", "s1494", "s5378", "s35932",
]

#: Circuits in the overlapping-population study (Table 7).
TABLE7_CIRCUITS: List[str] = [
    "s298", "s382", "s386", "s526", "s820", "s832", "s1196",
    "s1238", "s1423", "s1488", "s1494", "s5378",
]


def get_profile(name: str) -> CircuitProfile:
    """Look up a profile by circuit name (raises ``KeyError`` if unknown)."""
    return ISCAS89_PROFILES[name]
