"""Static test-set compaction for sequential circuits.

GATEST already produces test sets far shorter than random methods (the
paper reports one-third of CRIS's length), but a generated sequence
still carries noncontributing vectors: phase-3 vectors committed while
the GA searched for activity, and sequence prefixes whose only job was
reaching a state that a later, shorter path also reaches.  Two classic
static compaction passes are provided; both preserve (or improve) fault
coverage by construction because every trial is verified with full
resimulation:

* **tail truncation** — drop everything after the last detecting frame;
* **block omission** — greedily try deleting blocks of vectors,
  re-simulating the remainder; a deletion is kept only if coverage does
  not drop.  Block sizes halve down to single vectors, which bounds the
  number of resimulations at roughly ``O(n log n)`` while still finding
  single-vector omissions.

This is a reproduction *extension* (DESIGN.md §5): the paper's Vec
column motivates it but the paper itself applies no compaction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..circuit.netlist import Circuit
from ..faults.model import Fault
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import Vector


@dataclass
class CompactionResult:
    """Outcome of compacting one test set."""

    original_vectors: int
    compacted_vectors: int
    original_detected: int
    compacted_detected: int
    trials: int                 # resimulations performed
    elapsed_seconds: float
    test_sequence: List[List[int]]

    @property
    def reduction(self) -> float:
        """Fraction of vectors removed."""
        if not self.original_vectors:
            return 0.0
        return 1.0 - self.compacted_vectors / self.original_vectors


class TestSetCompactor:
    """Coverage-preserving static compaction of a vector sequence."""

    __test__ = False  # "Test" prefix confuses pytest collection otherwise

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        faults: Optional[List[Fault]] = None,
    ) -> None:
        self.compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self._faults = faults
        self.trials = 0

    def _detected_by(self, vectors: Sequence[Vector]) -> int:
        """Detections of a candidate test set, from power-up."""
        sim = FaultSimulator(self.compiled, faults=self._faults)
        if vectors:
            sim.commit(vectors)
        self.trials += 1
        return sim.detected_count

    def _last_detection_frame(self, vectors: Sequence[Vector]) -> int:
        """Index of the last frame that detects a new fault (-1 if none)."""
        sim = FaultSimulator(self.compiled, faults=self._faults)
        last = -1
        for index, vector in enumerate(vectors):
            if sim.commit([vector]).detected_count > 0:
                last = index
        self.trials += 1
        return last

    def compact(self, vectors: Sequence[Vector]) -> CompactionResult:
        """Run tail truncation followed by greedy block omission."""
        start = time.perf_counter()
        self.trials = 0
        original = [list(v) for v in vectors]
        baseline = self._detected_by(original)

        # Pass 1: tail truncation.
        last = self._last_detection_frame(original)
        current = original[: last + 1]

        # Pass 2: greedy block omission, halving block sizes.
        block = max(1, len(current) // 4)
        while block >= 1:
            index = 0
            while index < len(current):
                trial = current[:index] + current[index + block:]
                if len(trial) < len(current) and self._detected_by(trial) >= baseline:
                    current = trial
                    # Do not advance: the next block slid into place.
                else:
                    index += block
            block //= 2

        compacted_detected = self._detected_by(current)
        assert compacted_detected >= baseline, "compaction lost coverage"
        return CompactionResult(
            original_vectors=len(original),
            compacted_vectors=len(current),
            original_detected=baseline,
            compacted_detected=compacted_detected,
            trials=self.trials,
            elapsed_seconds=time.perf_counter() - start,
            test_sequence=current,
        )


def compact_test_set(
    circuit: Union[Circuit, CompiledCircuit],
    vectors: Sequence[Vector],
    faults: Optional[List[Fault]] = None,
) -> CompactionResult:
    """Functional convenience wrapper around :class:`TestSetCompactor`."""
    return TestSetCompactor(circuit, faults=faults).compact(vectors)
