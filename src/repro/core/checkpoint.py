"""Checkpointing for long test-generation campaigns.

The paper's largest run (s35932, full fault list) took 105 hours on its
hardware; campaigns of that length need to survive interruption.  Three
layers live here:

* **Simulator checkpoints** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) — a faithful JSON rendering of one
  :class:`~repro.faults.simulator.FaultSimulator`'s committed state
  plus the vectors that produced it, for callers that manage their own
  campaign loop.
* **Run checkpoints** (:func:`save_run_checkpoint` /
  :func:`load_run_checkpoint` plus the ``sim_run_state`` helpers) — the
  *complete* :class:`~repro.core.generator.GaTestGenerator` run state:
  simulator state, test set, phase tracker, RNG state, GA counters and
  stage trace, guarded by a schema version, a circuit fingerprint, a
  config digest and a whole-payload content hash.  ``gatest run
  --checkpoint CKPT --checkpoint-every N`` writes them periodically and
  ``--resume`` continues a killed run bit-identically (the RNG state
  makes the continuation replay exactly what an uninterrupted run would
  have done).  See ``docs/ROBUSTNESS.md`` for the schema and
  compatibility rules.
* **Campaign journals** (:func:`save_campaign_journal` /
  :func:`load_campaign_journal` plus the per-line sealing helpers) —
  the JSONL substrate of the harness's multi-run experiment campaigns
  (:mod:`repro.harness.campaign`): a content-hashed header line binding
  the campaign's identity, followed by one sealed record per journaled
  unit of work.  The guards mirror the run-checkpoint compatibility
  rules — unknown schema versions, torn or bit-flipped lines and
  mismatched headers are refused with :class:`CheckpointError`, never
  silently misread.

All checkpoint writes are atomic (tmp + fsync + rename, via
:mod:`repro.atomicio`): a crash mid-write leaves the previous
checkpoint intact, never a torn file.

The circuit itself is *not* stored; a fingerprint (structural hash) is,
and both loaders refuse to restore onto a different netlist.  Typical
simulator-level usage::

    sim = FaultSimulator(circuit)
    sim.commit(first_batch)
    save_checkpoint("run.ckpt.json", sim, test_sequence=first_batch)
    ...
    sim, vectors = load_checkpoint("run.ckpt.json", circuit)
    sim.commit(next_batch)   # continues where the first session stopped
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..atomicio import atomic_write_text
from ..circuit.netlist import Circuit
from ..faults.model import Fault, FaultStatus
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import GoodState

FORMAT_VERSION = 1

#: Schema version of *run* checkpoints (the generator-level payload).
RUN_FORMAT_VERSION = 1

#: Schema version of campaign journals (the harness-level JSONL file).
CAMPAIGN_FORMAT_VERSION = 1


class CheckpointError(Exception):
    """Raised on version, fingerprint, digest or content-hash
    mismatches, and on corrupt checkpoint files."""


def circuit_fingerprint(circuit: Circuit) -> str:
    """Stable structural hash of a netlist (names, types, edges, I/O)."""
    hasher = hashlib.sha256()
    for node_id in range(circuit.num_nodes):
        hasher.update(circuit.node_names[node_id].encode())
        hasher.update(circuit.node_types[node_id].value.encode())
        for fanin in circuit.fanins[node_id]:
            hasher.update(str(fanin).encode())
    hasher.update(b"|")
    hasher.update(",".join(map(str, circuit.inputs)).encode())
    hasher.update(",".join(map(str, circuit.outputs)).encode())
    return hasher.hexdigest()


def save_checkpoint(
    path: Union[str, Path],
    simulator: FaultSimulator,
    test_sequence: Optional[Sequence[Sequence[int]]] = None,
) -> None:
    """Write the simulator's committed state (and the test set) as JSON."""
    payload = {
        "format": FORMAT_VERSION,
        "circuit": simulator.circuit.name,
        "fingerprint": circuit_fingerprint(simulator.circuit),
        "word_width": simulator.word_width,
        "faults": [
            [f.node, f.pin, f.stuck_at] for f in simulator.faults
        ],
        "status": [
            s is FaultStatus.DETECTED for s in simulator.status
        ],
        "good_state": simulator.good_state.ff_values,
        "divergence": {
            str(fault_id): divergence
            for fault_id, divergence in simulator.divergence.items()
        },
        "vectors_applied": simulator.vectors_applied,
        "detections": [
            [[f.node, f.pin, f.stuck_at], frame]
            for f, frame in simulator.detections
        ],
        "test_sequence": [list(v) for v in (test_sequence or [])],
    }
    atomic_write_text(path, json.dumps(payload))


def load_checkpoint(
    path: Union[str, Path],
    circuit: Union[Circuit, CompiledCircuit],
) -> Tuple[FaultSimulator, List[List[int]]]:
    """Reconstruct a simulator (and the stored test set) from JSON.

    The circuit must match the checkpoint's fingerprint exactly.
    """
    compiled = (
        circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
    )
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    found = circuit_fingerprint(compiled.circuit)
    if payload["fingerprint"] != found:
        raise CheckpointError(
            f"checkpoint was taken on circuit {payload['circuit']!r} with a "
            f"different structure (fingerprint {payload['fingerprint'][:12]}…, "
            f"this circuit fingerprints to {found[:12]}…); refusing to restore"
        )
    faults = [Fault(n, p, s) for n, p, s in payload["faults"]]
    simulator = FaultSimulator(
        compiled, faults=faults, word_width=payload["word_width"]
    )
    simulator.status = [
        FaultStatus.DETECTED if detected else FaultStatus.UNDETECTED
        for detected in payload["status"]
    ]
    simulator.active = [
        i for i, s in enumerate(simulator.status) if s is FaultStatus.UNDETECTED
    ]
    simulator.good_state = GoodState(list(payload["good_state"]))
    simulator.divergence = {
        int(fault_id): {int(k): v for k, v in divergence.items()}
        for fault_id, divergence in payload["divergence"].items()
    }
    simulator.vectors_applied = payload["vectors_applied"]
    simulator.detections = [
        (Fault(*fault), frame) for fault, frame in payload["detections"]
    ]
    return simulator, [list(v) for v in payload["test_sequence"]]


# ----------------------------------------------------------------------
# Run checkpoints (full generator state; crash-safe, resumable)
# ----------------------------------------------------------------------


def fault_list_digest(faults: Sequence[object]) -> str:
    """Stable hash of a fault list's identity and order.

    Run checkpoints do not store the fault list — a resumed generator
    regenerates it deterministically from the circuit — they store this
    digest and refuse to restore per-index fault state onto a list that
    differs.  Works for any fault type with a stable ``repr`` (stuck-at
    ``Fault`` and ``TransitionFault`` are both frozen dataclasses).
    """
    hasher = hashlib.sha256()
    for fault in faults:
        hasher.update(repr(fault).encode())
        hasher.update(b"|")
    return hasher.hexdigest()


def sim_run_state(simulator: FaultSimulator) -> dict:
    """The simulator's committed state as a JSON-safe dict, keyed by
    fault *index* (the fault list itself is reproduced at resume)."""
    fault_index = {fault: i for i, fault in enumerate(simulator.faults)}
    return {
        "fault_digest": fault_list_digest(simulator.faults),
        "status": [s is FaultStatus.DETECTED for s in simulator.status],
        "good_state": list(simulator.good_state.ff_values),
        "divergence": {
            str(fault_id): {str(k): v for k, v in div.items()}
            for fault_id, div in simulator.divergence.items()
        },
        "vectors_applied": simulator.vectors_applied,
        "detections": [
            [fault_index[fault], frame] for fault, frame in simulator.detections
        ],
        "extra": simulator._checkpoint_extra(),
    }


def restore_sim_run_state(simulator: FaultSimulator, state: dict) -> None:
    """Overwrite a freshly built simulator's state from
    :func:`sim_run_state` (in place; bumps the state epoch)."""
    if state["fault_digest"] != fault_list_digest(simulator.faults):
        raise CheckpointError(
            "checkpoint fault list does not match the regenerated fault "
            "list; refusing to restore per-fault state"
        )
    simulator.status = [
        FaultStatus.DETECTED if detected else FaultStatus.UNDETECTED
        for detected in state["status"]
    ]
    simulator.active = [
        i for i, s in enumerate(simulator.status)
        if s is FaultStatus.UNDETECTED
    ]
    simulator.good_state = GoodState(list(state["good_state"]))
    simulator.divergence = {
        int(fault_id): {int(k): v for k, v in div.items()}
        for fault_id, div in state["divergence"].items()
    }
    simulator.vectors_applied = state["vectors_applied"]
    simulator.detections = [
        (simulator.faults[index], frame)
        for index, frame in state["detections"]
    ]
    simulator._restore_checkpoint_extra(state["extra"])
    simulator.state_epoch += 1


def _content_hash(payload: dict) -> str:
    """Canonical hash over everything except the hash field itself."""
    body = {k: v for k, v in payload.items() if k != "content_hash"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_run_checkpoint(path: Union[str, Path], payload: dict) -> None:
    """Atomically write one run checkpoint (tmp + fsync + rename).

    Stamps the schema version and a content hash over the whole
    payload; :func:`load_run_checkpoint` verifies both, so a truncated
    or bit-flipped file is detected instead of silently resuming from
    garbage.
    """
    payload = dict(payload)
    payload["kind"] = "gatest-run"
    payload["format"] = RUN_FORMAT_VERSION
    payload["content_hash"] = _content_hash(payload)
    atomic_write_text(path, json.dumps(payload))


def load_run_checkpoint(path: Union[str, Path]) -> dict:
    """Read and integrity-check one run checkpoint."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read run checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "gatest-run":
        raise CheckpointError(f"{path} is not a gatest run checkpoint")
    if payload.get("format") != RUN_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported run checkpoint format {payload.get('format')!r} "
            f"(this build reads format {RUN_FORMAT_VERSION})"
        )
    stored = payload.get("content_hash")
    if stored != _content_hash(payload):
        raise CheckpointError(
            f"run checkpoint {path} failed its content-hash check "
            "(truncated or corrupted file)"
        )
    return payload


def run_checkpoint_is_preempted(payload: dict) -> bool:
    """Whether a (loaded) run checkpoint was written by a preemption.

    A preempted checkpoint is an ordinary run checkpoint in every other
    respect — same schema, same guards, resumes bit-identically — the
    marker only records *why* the run stopped, so operators and the job
    service can distinguish "preempted mid-run, resumable" from
    "finished" (``stage == "done"``) when inspecting state directories.
    """
    return bool(payload.get("preempted"))


# ----------------------------------------------------------------------
# Campaign journals (harness-level JSONL; crash-safe, resumable)
# ----------------------------------------------------------------------


def _line_hash(record: dict) -> str:
    """Canonical hash of one journal record, excluding its seal."""
    body = {k: v for k, v in record.items() if k != "sha"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def seal_journal_record(record: dict) -> dict:
    """Return ``record`` with its per-line ``sha`` seal stamped in.

    Every journal line carries its own content hash so corruption is
    localized: :func:`load_campaign_journal` reports exactly which line
    is torn or bit-flipped instead of a whole-file parse error.
    """
    sealed = dict(record)
    sealed["sha"] = _line_hash(sealed)
    return sealed


def check_journal_record(record: dict, lineno: int, path) -> None:
    """Verify one journal line's seal; raise :class:`CheckpointError`."""
    if not isinstance(record, dict) or "sha" not in record:
        raise CheckpointError(
            f"campaign journal {path}:{lineno}: record has no seal "
            "(not a campaign journal, or written by an incompatible build)"
        )
    if record["sha"] != _line_hash(record):
        raise CheckpointError(
            f"campaign journal {path}:{lineno}: line failed its "
            "content-hash check (torn or corrupted record)"
        )


def save_campaign_journal(path: Union[str, Path], records: Sequence[dict]) -> None:
    """Atomically (re)write a whole campaign journal as sealed JSONL.

    The journal is small (one line per campaign cell), so the whole
    file is rewritten through :mod:`repro.atomicio` on every update: a
    SIGKILL mid-write leaves the previous complete journal intact,
    never a torn tail line.  Records that already carry a valid seal
    are written as-is; the rest are sealed here.
    """
    lines = []
    for record in records:
        if record.get("sha") != _line_hash(record):
            record = seal_journal_record(record)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    atomic_write_text(path, "\n".join(lines) + "\n")


def append_journal_record(path: Union[str, Path], record: dict) -> dict:
    """Append one sealed record to a multi-writer campaign journal.

    The distributed campaign backend has several processes — the
    coordinator plus any number of ``gatest campaign-worker`` hosts —
    writing the *same* journal, so the whole-file atomic rewrite of
    :func:`save_campaign_journal` would lose concurrent appends.  This
    path instead opens with ``O_APPEND``, takes an exclusive
    ``fcntl.flock`` for the write, emits the record as exactly one
    ``\\n``-terminated line, and fsyncs before releasing — concurrent
    appenders serialize, and a crash mid-append can tear at most the
    final line (which :func:`load_campaign_journal` can skip when asked
    with ``skip_torn_tail=True``).

    Returns the sealed record as written.
    """
    if record.get("sha") != _line_hash(record):
        record = seal_journal_record(record)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        fcntl = None
    with open(path, "a", encoding="utf-8") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    return record


def load_campaign_journal(
    path: Union[str, Path], *, skip_torn_tail: bool = False
) -> List[dict]:
    """Read and integrity-check a campaign journal.

    Returns the sealed records (header first).  Refuses — with a
    :class:`CheckpointError` naming the offending line — on unreadable
    files, non-JSON or unsealed lines, per-line hash failures, a
    missing or malformed header, and unknown schema versions.

    ``skip_torn_tail=True`` relaxes exactly one case: a *final* line
    that is torn (invalid JSON or a failed seal) is dropped instead of
    refused.  Multi-writer journals (the distributed backend) append
    under ``O_APPEND`` + flock, so a SIGKILL mid-append can leave only
    a torn tail — every complete line before it is still trustworthy.
    Corruption anywhere *but* the final line is refused regardless: that
    is bit-rot or tampering, not a crash artifact.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read campaign journal {path}: {exc}") from exc
    lines = [
        (lineno, line)
        for lineno, line in enumerate(text.splitlines(), 1)
        if line.strip()
    ]
    records: List[dict] = []
    for index, (lineno, line) in enumerate(lines):
        is_tail = index == len(lines) - 1
        try:
            record = json.loads(line)
            check_journal_record(record, lineno, path)
        except (json.JSONDecodeError, CheckpointError) as exc:
            if skip_torn_tail and is_tail:
                break
            if isinstance(exc, CheckpointError):
                raise
            raise CheckpointError(
                f"campaign journal {path}:{lineno}: not valid JSON ({exc})"
            ) from exc
        records.append(record)
    if not records:
        raise CheckpointError(f"campaign journal {path} is empty")
    header = records[0]
    if header.get("kind") != "campaign-header":
        raise CheckpointError(
            f"campaign journal {path}: first record must be the "
            f"campaign-header, got {header.get('kind')!r}"
        )
    if header.get("format") != CAMPAIGN_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported campaign journal format {header.get('format')!r} "
            f"(this build reads format {CAMPAIGN_FORMAT_VERSION})"
        )
    return records
