"""Checkpointing for long test-generation campaigns.

The paper's largest run (s35932, full fault list) took 105 hours on its
hardware; campaigns of that length need to survive interruption.  A
checkpoint captures everything needed to continue generating tests for
a circuit: the test set committed so far, every fault's status, the
good-machine state, and the per-fault divergences — i.e., a faithful
JSON rendering of :class:`~repro.faults.simulator.SimSnapshot` plus the
vectors that produced it.

The circuit itself is *not* stored; a fingerprint (structural hash) is,
and :func:`load_checkpoint` refuses to restore onto a different
netlist.  Typical usage::

    sim = FaultSimulator(circuit)
    sim.commit(first_batch)
    save_checkpoint("run.ckpt.json", sim, test_sequence=first_batch)
    ...
    sim, vectors = load_checkpoint("run.ckpt.json", circuit)
    sim.commit(next_batch)   # continues where the first session stopped
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..circuit.netlist import Circuit
from ..faults.model import Fault, FaultStatus
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import GoodState

FORMAT_VERSION = 1


class CheckpointError(Exception):
    """Raised on version or circuit-fingerprint mismatches."""


def circuit_fingerprint(circuit: Circuit) -> str:
    """Stable structural hash of a netlist (names, types, edges, I/O)."""
    hasher = hashlib.sha256()
    for node_id in range(circuit.num_nodes):
        hasher.update(circuit.node_names[node_id].encode())
        hasher.update(circuit.node_types[node_id].value.encode())
        for fanin in circuit.fanins[node_id]:
            hasher.update(str(fanin).encode())
    hasher.update(b"|")
    hasher.update(",".join(map(str, circuit.inputs)).encode())
    hasher.update(",".join(map(str, circuit.outputs)).encode())
    return hasher.hexdigest()


def save_checkpoint(
    path: Union[str, Path],
    simulator: FaultSimulator,
    test_sequence: Optional[Sequence[Sequence[int]]] = None,
) -> None:
    """Write the simulator's committed state (and the test set) as JSON."""
    payload = {
        "format": FORMAT_VERSION,
        "circuit": simulator.circuit.name,
        "fingerprint": circuit_fingerprint(simulator.circuit),
        "word_width": simulator.word_width,
        "faults": [
            [f.node, f.pin, f.stuck_at] for f in simulator.faults
        ],
        "status": [
            s is FaultStatus.DETECTED for s in simulator.status
        ],
        "good_state": simulator.good_state.ff_values,
        "divergence": {
            str(fault_id): divergence
            for fault_id, divergence in simulator.divergence.items()
        },
        "vectors_applied": simulator.vectors_applied,
        "detections": [
            [[f.node, f.pin, f.stuck_at], frame]
            for f, frame in simulator.detections
        ],
        "test_sequence": [list(v) for v in (test_sequence or [])],
    }
    Path(path).write_text(json.dumps(payload))


def load_checkpoint(
    path: Union[str, Path],
    circuit: Union[Circuit, CompiledCircuit],
) -> Tuple[FaultSimulator, List[List[int]]]:
    """Reconstruct a simulator (and the stored test set) from JSON.

    The circuit must match the checkpoint's fingerprint exactly.
    """
    compiled = (
        circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
    )
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    if payload["fingerprint"] != circuit_fingerprint(compiled.circuit):
        raise CheckpointError(
            f"checkpoint was taken on circuit {payload['circuit']!r} with a "
            "different structure; refusing to restore"
        )
    faults = [Fault(n, p, s) for n, p, s in payload["faults"]]
    simulator = FaultSimulator(
        compiled, faults=faults, word_width=payload["word_width"]
    )
    simulator.status = [
        FaultStatus.DETECTED if detected else FaultStatus.UNDETECTED
        for detected in payload["status"]
    ]
    simulator.active = [
        i for i, s in enumerate(simulator.status) if s is FaultStatus.UNDETECTED
    ]
    simulator.good_state = GoodState(list(payload["good_state"]))
    simulator.divergence = {
        int(fault_id): {int(k): v for k, v in divergence.items()}
        for fault_id, divergence in payload["divergence"].items()
    }
    simulator.vectors_applied = payload["vectors_applied"]
    simulator.detections = [
        (Fault(*fault), frame) for fault, frame in payload["detections"]
    ]
    return simulator, [list(v) for v in payload["test_sequence"]]
