"""GATEST: the GA-based sequential-circuit test generator (paper §III).

The generator alternates two stages (Figure 1):

1. **Individual test vectors** — one GA run per time frame evolves the
   best next vector under the phase-1/2/3 fitness functions; every best
   vector is committed (even noncontributing ones — they advance the
   state and are counted against the progress limit, Figure 2).
2. **Test sequences** — once the progress limit is hit, GA runs evolve
   whole vector sequences (phase-4 fitness) at increasing lengths.  Each
   attempt starts from a fresh random population; a sequence is added to
   the test set only if it improves fault coverage, and a length is
   abandoned after ``seq_fail_limit`` consecutive fruitless attempts.

Fitness evaluation is delegated to the PROOFS-style fault simulator; the
phase-1 good-machine fitness uses the pattern-parallel simulator to
score a whole population in one pass.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..circuit.netlist import Circuit
from ..faults.model import Fault
from ..faults.sampling import make_sampler
from ..faults.simulator import FaultSimulator
from ..ga.chromosome import make_coding
from ..ga.engine import GAParams, GeneticAlgorithm
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import PatternSimulator
from ..telemetry.collector import NullCollector, get_collector
from .checkpoint import (
    CheckpointError,
    circuit_fingerprint,
    load_run_checkpoint,
    restore_sim_run_state,
    save_run_checkpoint,
    sim_run_state,
)
from .config import TestGenConfig
from .fitness import FitnessContext, Phase, fitness_for_phase, phase1_fitness
from .phases import PhaseTracker
from .results import StageEvent, TestGenResult


class RunPreempted(Exception):
    """A run was stopped cooperatively before completion.

    Raised out of :meth:`GaTestGenerator.run` when the run's ``stop``
    hook (or :meth:`GaTestGenerator.request_stop`) fires.  When the run
    had a checkpoint path, a final checkpoint marked ``preempted`` was
    written at the stage boundary where the stop was observed —
    resubmitting the identical canonical config resumes from it and
    finishes bit-identically to an uninterrupted run.
    ``checkpoint_written`` tells the caller whether that checkpoint
    exists (a run without a checkpoint path preempts without one and
    simply loses its progress).
    """

    def __init__(self, message: str, checkpoint_written: bool = False) -> None:
        super().__init__(message)
        self.checkpoint_written = checkpoint_written


class _RunCheckpointer:
    """Periodic crash-safe checkpoint writer for one generator run.

    ``tick`` is called once per committed stage event (vector commit or
    sequence attempt); every ``every`` events the payload builder is
    invoked and the checkpoint atomically replaced on disk.  Building
    the payload is deferred to a callable so the skipped ticks cost
    nothing.
    """

    def __init__(self, path, every: int, collector) -> None:
        if every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.path = Path(path)
        self.every = every
        self.collector = collector
        self._since_write = 0

    def tick(self, payload_fn: Callable[[], dict]) -> None:
        """Count one stage event; write when the interval is reached."""
        self._since_write += 1
        if self._since_write >= self.every:
            self.write(payload_fn())

    def write(self, payload: dict) -> None:
        """Write one checkpoint now (atomic; meters the telemetry)."""
        t0 = time.perf_counter()
        save_run_checkpoint(self.path, payload)
        self._since_write = 0
        if self.collector.enabled:
            self.collector.inc("checkpoint.writes")
            self.collector.inc("checkpoint.seconds", time.perf_counter() - t0)


def make_fault_simulator(
    compiled: CompiledCircuit,
    config: TestGenConfig,
    faults: Optional[List[Fault]] = None,
    collector: Optional[NullCollector] = None,
) -> FaultSimulator:
    """Build the fault simulator one GATEST run needs under ``config``.

    The single place the config's simulator-shaping knobs (fault model,
    word width, kernel, eval parallelism/cache/resilience) are turned
    into a constructor call — the generator builds through here, and so
    does the job service's warm registry, so a leased resident simulator
    is guaranteed to match what the generator would have built itself.
    """
    if collector is None:
        collector = get_collector()
    if config.fault_model == "transition":
        from ..faults.transition import TransitionFaultSimulator

        sim_class = TransitionFaultSimulator
    else:
        sim_class = FaultSimulator
    return sim_class(
        compiled, faults=faults, word_width=config.word_width,
        collector=collector, eval_jobs=config.eval_jobs,
        eval_cache=config.eval_cache,
        kernel=config.sim_kernel,
        eval_task_timeout=config.eval_task_timeout,
        eval_retries=config.eval_retries,
    )


class GaTestGenerator:
    """One GATEST run over one circuit.

    >>> from repro.circuit import s27
    >>> from repro.core import GaTestGenerator, TestGenConfig
    >>> result = GaTestGenerator(s27(), TestGenConfig(seed=1)).run()
    >>> result.fault_coverage > 0.5
    True

    ``fsim`` lends the generator an existing simulator instead of
    building one: it must wrap the same compiled circuit, be configured
    like :func:`make_fault_simulator` would (same fault model, kernel,
    word width), and be at power-up state (freshly built or ``reset``).
    A lent simulator is *not* closed by :meth:`run`/:meth:`close` — its
    lifetime (and its worker pool's) stays with the owner, which is how
    the job service keeps simulators and pools warm across jobs.
    """

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        config: Optional[TestGenConfig] = None,
        faults: Optional[List[Fault]] = None,
        collector: Optional[NullCollector] = None,
        fsim: Optional[FaultSimulator] = None,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.circuit = compiled.circuit
        self.config = (config or TestGenConfig()).for_circuit(self.circuit.name)
        self.rng = random.Random(self.config.seed)
        self.collector = collector if collector is not None else get_collector()
        if fsim is not None:
            if fsim.compiled is not compiled:
                raise ValueError(
                    "lent fsim wraps a different CompiledCircuit than the "
                    "generator's; lend a simulator built on the same object"
                )
            self.fsim = fsim
            self._owns_fsim = False
        else:
            self.fsim = make_fault_simulator(
                compiled, self.config, faults=faults, collector=self.collector
            )
            self._owns_fsim = True
        self.sampler = make_sampler(self.config.fault_sample)
        self.ctx = FitnessContext(
            num_ffs=compiled.num_ffs, num_nodes=compiled.num_nodes
        )
        self.ga_runs = 0
        self.ga_evaluations = 0
        self.trace: List[StageEvent] = []
        self.test_sequence: List[List[int]] = []
        self._stop_requested = False
        self._stop_hook: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    # Evaluators
    # ------------------------------------------------------------------

    def _phase1_evaluator(self, coding):
        """Population-parallel good-machine fitness (phase 1)."""

        def evaluate(chromosomes):
            n = len(chromosomes)
            sim = PatternSimulator(
                self.compiled, n_slots=n, collector=self.collector,
                kernel=self.config.sim_kernel,
            )
            sim.begin(self.fsim.good_state)
            vectors = [coding.decode(c)[0] for c in chromosomes]
            stats = sim.step(vectors, count_events=False)
            fitnesses = []
            for s in range(n):
                # Build a minimal CandidateEval-alike via the fitness fn's
                # fields; phase 1 needs only ffs_set / ffs_changed.
                fitnesses.append(
                    stats.ffs_set[s] + (
                        stats.ffs_changed[s] / self.ctx.num_ffs
                        if self.ctx.num_ffs else 0.0
                    )
                )
            return fitnesses

        return evaluate

    def _fault_evaluator(self, coding, phase: Phase, sample: Sequence[int]):
        """Per-candidate fault-simulation fitness (phases 2, 3, 4)."""
        count_events = (
            phase is Phase.ACTIVITY and self.config.use_activity_fitness
        )
        effective_phase = phase
        if phase is Phase.ACTIVITY and not self.config.use_activity_fitness:
            effective_phase = Phase.DETECTION

        def evaluate(chromosomes):
            phenotypes = [coding.decode(c) for c in chromosomes]
            evaluations = self.fsim.evaluate_batch(
                phenotypes, sample=sample, count_faulty_events=count_events
            )
            return [
                fitness_for_phase(effective_phase, evaluation, self.ctx)
                for evaluation in evaluations
            ]

        return evaluate

    # ------------------------------------------------------------------
    # GA wrappers
    # ------------------------------------------------------------------

    def _run_ga(self, coding, evaluator, schedule) -> List[int]:
        """One GA run; returns the best chromosome evolved."""
        n_islands = self.config.n_islands
        population = schedule.population_size
        if n_islands > 1:
            population = max(2, round(population / n_islands))
        params = GAParams(
            population_size=population,
            generations=self.config.generations,
            selection=self.config.selection,
            crossover=self.config.crossover,
            mutation_rate=schedule.mutation_rate,
            generation_gap=self.config.generation_gap,
            # With the evaluation cache on, duplicate chromosomes inside
            # one generation are also collapsed before the evaluator is
            # called (identical fitnesses; fewer simulator slots).
            dedup_evaluations=self.config.eval_cache_enabled,
        )
        if n_islands > 1:
            from ..ga.islands import IslandGA, IslandParams

            ga = IslandGA(
                coding, evaluator, params,
                island_params=IslandParams(
                    n_islands=n_islands,
                    migration_interval=self.config.migration_interval,
                ),
                rng=self.rng,
            )
        else:
            ga = GeneticAlgorithm(
                coding, evaluator, params, rng=self.rng, collector=self.collector
            )
        with self.collector.bind(ga_run=self.ga_runs):
            result = ga.run()
        self.ga_runs += 1
        self.ga_evaluations += result.evaluations
        return result.best.chromosome

    def _evolve_vector(self, phase: Phase) -> List[int]:
        coding = make_coding("binary", self.compiled.num_pis, 1)
        schedule = self.config.vector_ga_schedule(self.compiled.num_pis)
        if phase is Phase.INITIALIZATION:
            evaluator = self._phase1_evaluator(coding)
        else:
            sample = self.sampler.sample(self.fsim.active, self.rng)
            evaluator = self._fault_evaluator(coding, phase, sample)
        with self.collector.bind(stage="vector", phase=phase.name):
            best = self._run_ga(coding, evaluator, schedule)
        return coding.decode(best)[0]

    def _evolve_sequence(self, length: int) -> List[List[int]]:
        coding = make_coding(self.config.coding, self.compiled.num_pis, length)
        schedule = self.config.sequence_ga_schedule()
        sample = self.sampler.sample(self.fsim.active, self.rng)
        evaluator = self._fault_evaluator(coding, Phase.SEQUENCES, sample)
        with self.collector.bind(stage="sequence", phase=Phase.SEQUENCES.name,
                                 length=length):
            best = self._run_ga(coding, evaluator, schedule)
        return coding.decode(best)

    # ------------------------------------------------------------------
    # Stage loops
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the running :meth:`run` to preempt cooperatively.

        Thread-safe (a single flag write); the run observes the request
        at its next stage-event boundary, writes a final ``preempted``
        checkpoint (when checkpointing) and raises :class:`RunPreempted`.
        """
        self._stop_requested = True

    def _stop_pending(self) -> bool:
        if self._stop_requested:
            return True
        hook = self._stop_hook
        return hook is not None and bool(hook())

    def _maybe_preempt(
        self,
        checkpointer: Optional[_RunCheckpointer],
        stage: str,
        tracker: PhaseTracker,
        sequence_stage: Optional[dict] = None,
    ) -> None:
        """Honor a pending stop request at a stage-event boundary.

        Stage boundaries are the only points where the loop state is
        fully described by the checkpoint payload, so they are the only
        points where preemption can leave behind a checkpoint that
        resumes bit-identically.
        """
        if not self._stop_pending():
            return
        written = False
        if checkpointer is not None:
            payload = self._checkpoint_payload(stage, tracker, sequence_stage)
            payload["preempted"] = True
            checkpointer.write(payload)
            written = True
        if self.collector.enabled:
            self.collector.inc("run.preempted")
        raise RunPreempted(
            f"run on {self.circuit.name!r} preempted at a {stage} stage "
            "boundary" + (" (resumable checkpoint written)" if written else ""),
            checkpoint_written=written,
        )

    def _vector_budget_left(self, need: int = 1) -> bool:
        cap = self.config.max_vectors
        return cap is None or len(self.test_sequence) + need <= cap

    def _generate_vectors(
        self,
        tracker: PhaseTracker,
        checkpointer: Optional[_RunCheckpointer] = None,
    ) -> None:
        while (
            self.fsim.active
            and not tracker.vectors_exhausted
            and self._vector_budget_left()
        ):
            phase = tracker.phase
            vector = self._evolve_vector(phase)
            commit = self.fsim.commit([vector])
            self.test_sequence.append(vector)
            self.trace.append(
                StageEvent(
                    kind="vector",
                    phase=phase,
                    frames=1,
                    detected=commit.detected_count,
                    committed=True,
                )
            )
            tracker.record_vector(
                detected=commit.detected_count,
                ffs_set=self.fsim.good_state.num_set,
                all_ffs_set=self.fsim.good_state.all_set,
            )
            if self.collector.enabled:
                self._record_stage("vector", phase, 1, commit.detected_count, True)
            if checkpointer is not None:
                checkpointer.tick(
                    lambda: self._checkpoint_payload("vectors", tracker)
                )
            self._maybe_preempt(checkpointer, "vectors", tracker)

    def _generate_sequences(
        self,
        tracker: PhaseTracker,
        checkpointer: Optional[_RunCheckpointer] = None,
        resume_state: Optional[dict] = None,
    ) -> None:
        tracker.enter_sequences()
        depth = self.circuit.sequential_depth()
        lengths = self.config.sequence_lengths(depth)
        start_index = 0
        resume_failures = 0
        if resume_state is not None:
            start_index = resume_state["length_index"]
            resume_failures = resume_state["failures"]
        for index in range(start_index, len(lengths)):
            length = lengths[index]
            failures = resume_failures if index == start_index else 0
            while (
                self.fsim.active
                and failures < self.config.seq_fail_limit
                and self._vector_budget_left(length)
            ):
                sequence = self._evolve_sequence(length)
                snapshot = self.fsim.snapshot()
                commit = self.fsim.commit(sequence)
                if commit.detected_count > 0:
                    self.test_sequence.extend(sequence)
                    failures = 0
                    committed = True
                else:
                    self.fsim.restore(snapshot)
                    failures += 1
                    committed = False
                self.trace.append(
                    StageEvent(
                        kind="sequence",
                        phase=Phase.SEQUENCES,
                        frames=length,
                        detected=commit.detected_count if committed else 0,
                        committed=committed,
                    )
                )
                if self.collector.enabled:
                    self._record_stage(
                        "sequence", Phase.SEQUENCES, length,
                        commit.detected_count if committed else 0, committed,
                    )
                if checkpointer is not None:
                    checkpointer.tick(
                        lambda: self._checkpoint_payload(
                            "sequences", tracker,
                            {"length_index": index, "failures": failures},
                        )
                    )
                self._maybe_preempt(
                    checkpointer, "sequences", tracker,
                    {"length_index": index, "failures": failures},
                )

    # ------------------------------------------------------------------

    def _record_stage(
        self, event: str, phase: Phase, frames: int, detected: int, committed: bool
    ) -> None:
        """Emit one StageEvent-aligned telemetry record with run context."""
        self.collector.stage(
            event=event,
            phase=phase.name,
            frames=frames,
            detected=detected,
            committed=committed,
            coverage=self.fsim.fault_coverage,
            vectors_total=len(self.test_sequence),
            faults_active=len(self.fsim.active),
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    @staticmethod
    def _encode_rng_state(state) -> list:
        """``random.Random.getstate()`` as JSON-safe nested lists."""
        version, internal, gauss_next = state
        return [version, list(internal), gauss_next]

    @staticmethod
    def _decode_rng_state(encoded) -> tuple:
        version, internal, gauss_next = encoded
        return (version, tuple(internal), gauss_next)

    def _checkpoint_payload(
        self,
        stage: str,
        tracker: PhaseTracker,
        sequence_stage: Optional[dict] = None,
    ) -> dict:
        """Everything needed to resume this run bit-identically.

        Built only at stage boundaries (after a committed vector or a
        finished sequence attempt), where the loop state is fully
        described by ``stage``/``sequence_stage`` plus the tracker, the
        simulator's committed state and the RNG state.
        """
        return {
            "circuit": self.circuit.name,
            "fingerprint": circuit_fingerprint(self.circuit),
            "config_digest": self.config.digest(),
            "stage": stage,
            "sequence_stage": sequence_stage,
            "sim": sim_run_state(self.fsim),
            "test_sequence": [list(v) for v in self.test_sequence],
            "rng_state": self._encode_rng_state(self.rng.getstate()),
            "tracker": tracker.state_dict(),
            "ga_runs": self.ga_runs,
            "ga_evaluations": self.ga_evaluations,
            "trace": [
                [e.kind, e.phase.name, e.frames, e.detected, e.committed]
                for e in self.trace
            ],
        }

    def _restore_run(self, payload: dict) -> Tuple[PhaseTracker, str, Optional[dict]]:
        """Overwrite this (freshly constructed) generator's state from a
        run checkpoint; returns the rebuilt tracker and resume stage."""
        found = circuit_fingerprint(self.circuit)
        if payload["fingerprint"] != found:
            raise CheckpointError(
                f"checkpoint was taken on circuit {payload['circuit']!r} "
                f"with a different structure (checkpoint fingerprint "
                f"{payload['fingerprint'][:12]}…, this circuit fingerprints "
                f"to {found[:12]}…); refusing to resume"
            )
        digest = self.config.digest()
        if payload["config_digest"] != digest:
            raise CheckpointError(
                f"checkpoint was taken under a different result-affecting "
                f"configuration (checkpoint config digest "
                f"{payload['config_digest'][:12]}…, this run's config "
                f"digests to {digest[:12]}…); refusing to resume "
                "(execution-only knobs like eval_jobs may differ, the rest "
                "must match)"
            )
        restore_sim_run_state(self.fsim, payload["sim"])
        self.test_sequence = [list(v) for v in payload["test_sequence"]]
        self.rng.setstate(self._decode_rng_state(payload["rng_state"]))
        self.ga_runs = payload["ga_runs"]
        self.ga_evaluations = payload["ga_evaluations"]
        self.trace = [
            StageEvent(
                kind=kind, phase=Phase[phase], frames=frames,
                detected=detected, committed=committed,
            )
            for kind, phase, frames, detected, committed in payload["trace"]
        ]
        tracker = PhaseTracker.from_state(
            payload["tracker"],
            progress_limit=self.config.progress_limit(
                self.circuit.sequential_depth()
            ),
        )
        return tracker, payload["stage"], payload.get("sequence_stage")

    DEFAULT_CHECKPOINT_EVERY = 8

    def close(self) -> None:
        """Release the fault simulator's resources, if this run owns them.

        Idempotent.  A simulator lent via the ``fsim`` constructor
        parameter is left open — closing it is its owner's job — so
        callers can unconditionally ``close()`` in a ``finally`` block
        (the CLI and the job service both do) without tearing down a
        warm simulator out from under its registry.
        """
        if self._owns_fsim:
            self.fsim.close()

    def run(
        self,
        *,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        resume: bool = False,
        stop: Optional[Callable[[], bool]] = None,
    ) -> TestGenResult:
        """Execute the full Figure-1 flow and return the result record.

        The run is wrapped in a ``generator.run`` telemetry span with one
        child span per stage; ``elapsed_seconds`` is read back from the
        root span so the reported wall clock and the trace cannot drift.

        With ``checkpoint_path`` set, a crash-safe run checkpoint is
        (re)written every ``checkpoint_every`` stage events plus once at
        completion; with ``resume=True`` the run restarts from that file
        and finishes bit-identically to an uninterrupted run (the
        checkpoint carries the RNG state).

        ``stop`` is the cooperative preemption hook: a zero-argument
        callable polled once per stage event (alongside any pending
        :meth:`request_stop`).  When it returns true the run writes a
        final ``preempted`` checkpoint (when checkpointing) and raises
        :class:`RunPreempted` — see its docstring for the resume
        contract.  The hook must be cheap; the job service passes a
        stop-file existence probe.
        """
        collector = self.collector
        self._stop_hook = stop
        checkpointer: Optional[_RunCheckpointer] = None
        if checkpoint_path is not None:
            checkpointer = _RunCheckpointer(
                checkpoint_path, checkpoint_every, collector
            )
        if resume and checkpointer is None:
            raise ValueError("resume=True requires a checkpoint_path")
        stage = "vectors"
        seq_state: Optional[dict] = None
        tracker: Optional[PhaseTracker] = None
        if resume:
            payload = load_run_checkpoint(checkpoint_path)
            tracker, stage, seq_state = self._restore_run(payload)
            if collector.enabled:
                collector.inc("run.resumed")
        try:
            with collector.span("generator.run", circuit=self.circuit.name) as root:
                if tracker is None:
                    tracker = PhaseTracker(
                        progress_limit=self.config.progress_limit(
                            self.circuit.sequential_depth()
                        )
                    )
                if stage == "vectors":
                    with collector.span("generator.vectors"):
                        self._generate_vectors(tracker, checkpointer)
                if stage != "done" and self.fsim.active:
                    with collector.span("generator.sequences"):
                        self._generate_sequences(
                            tracker, checkpointer,
                            seq_state if stage == "sequences" else None,
                        )
                if checkpointer is not None and stage != "done":
                    # Final checkpoint: resuming a finished run is a no-op
                    # that reproduces its result.
                    checkpointer.write(
                        self._checkpoint_payload("done", tracker)
                    )
        finally:
            self.close()  # release eval-jobs worker processes, if owned
        elapsed = root.elapsed
        return TestGenResult(
            circuit_name=self.circuit.name,
            test_sequence=self.test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            elapsed_seconds=elapsed,
            ga_evaluations=self.ga_evaluations,
            ga_runs=self.ga_runs,
            phase_transitions=list(tracker.transitions),
            trace=self.trace,
            detections=list(self.fsim.detections),
        )


def generate_tests(
    circuit: Circuit, config: Optional[TestGenConfig] = None
) -> TestGenResult:
    """Functional convenience wrapper around :class:`GaTestGenerator`."""
    return GaTestGenerator(circuit, config).run()
