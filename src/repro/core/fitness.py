"""The four-phase fitness functions (paper §III-B).

All fitnesses are non-negative (required by the proportionate selection
schemes) and constructed so that the dominant objective of each phase
strictly outranks its tiebreak terms:

* **Phase 1** (initialization): ``FFs set`` dominates; the fraction of
  FFs toggling breaks ties between equally-initializing vectors.
* **Phase 2** (detection): ``faults detected`` dominates; fault effects
  parked at flip-flops break ties (they may reach a PO next frame).  The
  propagation term is divided by (#faults)(#FFs) so it is < 1.
* **Phase 3** (no recent progress): phase 2 plus a circuit-activity
  term, ``2 * events / (nodes * faults)``, to reward vectors that at
  least excite and move fault effects around.
* **Phase 4** (sequence generation): as phase 2, but the propagation
  metric accumulates over the sequence's time frames — the paper states
  the sequence length "is included in the metric".  (The paper's
  displayed phase-4 formula omits phase 2's normalizing denominator; we
  keep the denominator so that detection remains the dominant term,
  following the prose "the fitness function used is the same as that for
  the second phase ... except that the test sequence length is included".)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..faults.simulator import CandidateEval


class Phase(enum.Enum):
    """Test-generation phases (Figures 1 and 2 of the paper)."""

    INITIALIZATION = 1
    DETECTION = 2
    ACTIVITY = 3
    SEQUENCES = 4


@dataclass(frozen=True)
class FitnessContext:
    """Static circuit quantities the fitness normalizers need."""

    num_ffs: int
    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("circuit must have nodes")


def phase1_fitness(evaluation: CandidateEval, ctx: FitnessContext) -> float:
    """fitness = total FFs set + fraction of FFs changed."""
    if ctx.num_ffs == 0:
        return 0.0
    return evaluation.ffs_set + evaluation.ffs_changed / ctx.num_ffs


def phase2_fitness(evaluation: CandidateEval, ctx: FitnessContext) -> float:
    """fitness = #detected + #propagated-to-FFs / (#faults * #FFs)."""
    fitness = float(evaluation.detected)
    denom = evaluation.num_faults_simulated * ctx.num_ffs
    if denom > 0:
        fitness += evaluation.prop_final / denom
    return fitness


def phase3_fitness(evaluation: CandidateEval, ctx: FitnessContext) -> float:
    """Phase 2 plus 2 * (good+faulty events) / (#nodes * #faults)."""
    fitness = phase2_fitness(evaluation, ctx)
    denom = ctx.num_nodes * max(1, evaluation.num_faults_simulated)
    events = evaluation.good_events + evaluation.faulty_events
    return fitness + 2.0 * events / denom


def phase4_fitness(evaluation: CandidateEval, ctx: FitnessContext) -> float:
    """Sequence fitness: detection + per-frame-accumulated propagation."""
    fitness = float(evaluation.detected)
    denom = evaluation.num_faults_simulated * ctx.num_ffs
    if denom > 0:
        fitness += evaluation.prop_sum / denom
    return fitness


def fitness_for_phase(phase: Phase, evaluation: CandidateEval, ctx: FitnessContext) -> float:
    """Dispatch to the right phase's fitness function."""
    if phase is Phase.INITIALIZATION:
        return phase1_fitness(evaluation, ctx)
    if phase is Phase.DETECTION:
        return phase2_fitness(evaluation, ctx)
    if phase is Phase.ACTIVITY:
        return phase3_fitness(evaluation, ctx)
    if phase is Phase.SEQUENCES:
        return phase4_fitness(evaluation, ctx)
    raise ValueError(f"unknown phase {phase!r}")
