"""Hybrid GA-then-deterministic test generation (paper §V's suggestion).

    "the GA-based test generator can be used as a first pass in test
    generation to screen out many of the faults before applying a
    deterministic test generator.  Note that untestable faults cannot be
    identified by a simulation-based test generator, so the deterministic
    fault-oriented test generator is still needed for this purpose."

:class:`HybridAtpg` realizes exactly that flow: GATEST runs first and
retires the bulk of the fault list cheaply; the deterministic engine
then targets only the survivors — generating tests for the
hard-but-testable ones and *proving* untestability where it can.  The
result records which stage contributed what, which is the quantity that
justifies the hybrid (deterministic effort shrinks to the residue).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..baselines.deterministic import DeterministicAtpg, DeterministicResult
from ..circuit.netlist import Circuit
from ..faults.model import Fault
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit
from .config import TestGenConfig
from .generator import GaTestGenerator
from .results import TestGenResult


@dataclass
class HybridResult:
    """Outcome of the two-pass flow."""

    circuit_name: str
    test_sequence: List[List[int]]
    total_faults: int
    ga_detected: int
    deterministic_detected: int
    untestable: int
    aborted: int
    ga_seconds: float
    deterministic_seconds: float
    ga_result: TestGenResult
    deterministic_result: Optional[DeterministicResult]

    @property
    def detected(self) -> int:
        """Total faults detected across both passes."""
        return self.ga_detected + self.deterministic_detected

    @property
    def vectors(self) -> int:
        """Combined test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction across both passes."""
        return self.detected / self.total_faults if self.total_faults else 0.0

    @property
    def fault_efficiency(self) -> float:
        """Detected-or-proven-untestable fraction (the ATPG quality
        metric deterministic tools report)."""
        if not self.total_faults:
            return 0.0
        return (self.detected + self.untestable) / self.total_faults

    def summary(self) -> str:
        """One-line report attributing coverage to each pass."""
        return (
            f"{self.circuit_name}: GA {self.ga_detected} + deterministic "
            f"{self.deterministic_detected} = {self.detected}/{self.total_faults} "
            f"detected ({100 * self.fault_coverage:.1f}%), "
            f"{self.untestable} proven untestable "
            f"(efficiency {100 * self.fault_efficiency:.1f}%), "
            f"{self.vectors} vectors, "
            f"GA {self.ga_seconds:.1f}s + det {self.deterministic_seconds:.1f}s"
        )


class HybridAtpg:
    """GATEST first pass, deterministic second pass on the survivors."""

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        config: Optional[TestGenConfig] = None,
        backtrack_limit: int = 400,
        max_frames: Optional[int] = None,
    ) -> None:
        self.compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.config = config or TestGenConfig()
        self.backtrack_limit = backtrack_limit
        self.max_frames = max_frames

    def run(self) -> HybridResult:
        """Run the GA pass, then the deterministic pass on survivors."""
        start = time.perf_counter()
        generator = GaTestGenerator(self.compiled, self.config)
        ga_result = generator.run()
        ga_seconds = time.perf_counter() - start
        survivors = generator.fsim.undetected_faults()
        test_sequence = list(ga_result.test_sequence)

        deterministic_result: Optional[DeterministicResult] = None
        deterministic_detected = 0
        untestable = 0
        aborted = 0
        deterministic_seconds = 0.0
        if survivors:
            start = time.perf_counter()
            atpg = DeterministicAtpg(
                self.compiled,
                faults=survivors,
                backtrack_limit=self.backtrack_limit,
                max_frames=self.max_frames,
            )
            deterministic_result = atpg.run()
            deterministic_seconds = time.perf_counter() - start
            deterministic_detected = deterministic_result.detected
            untestable = deterministic_result.untestable
            aborted = deterministic_result.aborted
            test_sequence.extend(deterministic_result.test_sequence)

        return HybridResult(
            circuit_name=self.compiled.circuit.name,
            test_sequence=test_sequence,
            total_faults=ga_result.total_faults,
            ga_detected=ga_result.detected,
            deterministic_detected=deterministic_detected,
            untestable=untestable,
            aborted=aborted,
            ga_seconds=ga_seconds,
            deterministic_seconds=deterministic_seconds,
            ga_result=ga_result,
            deterministic_result=deterministic_result,
        )


def run_hybrid(
    circuit: Union[Circuit, CompiledCircuit],
    config: Optional[TestGenConfig] = None,
) -> HybridResult:
    """Functional convenience wrapper around :class:`HybridAtpg`."""
    return HybridAtpg(circuit, config).run()
