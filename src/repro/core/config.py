"""GATEST configuration: the paper's parameter schedules and knobs.

Table 1 of the paper keys the GA's population size and mutation rate to
the vector length (number of primary inputs); §III fixes the sequence-
generation GA at population 32 and mutation 1/64; §V describes the
per-circuit progress limits and sequence-length schedules (s5378 and
s35932, whose sequential depths are very large, use smaller multiples).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class GaSchedule:
    """Population size and mutation rate for one GA run."""

    population_size: int
    mutation_rate: float


def ga_params_for_vector_length(length: int) -> GaSchedule:
    """Table 1: GA parameter values for individual-test-vector generation.

    ========  ===========  ====================
    L         population   mutation probability
    ========  ===========  ====================
    < 4       8            1/8
    4 - 16    16           1/16
    > 16      16           1/L
    ========  ===========  ====================
    """
    if length < 1:
        raise ValueError("vector length must be positive")
    if length < 4:
        return GaSchedule(population_size=8, mutation_rate=1 / 8)
    if length <= 16:
        return GaSchedule(population_size=16, mutation_rate=1 / 16)
    return GaSchedule(population_size=16, mutation_rate=1 / length)


#: §III-D / §V defaults for the sequence-generation GA.
SEQUENCE_POPULATION_SIZE = 32
SEQUENCE_MUTATION_RATE = 1 / 64
DEFAULT_GENERATIONS = 8

#: Circuits the paper runs with reduced progress limits and sequence
#: lengths because of their very large sequential depth (§V).
DEEP_CIRCUITS = ("s5378", "s35932")


@dataclass(frozen=True)
class TestGenConfig:
    """All knobs of one GATEST run.

    Defaults reproduce the paper's main configuration (Table 2):
    tournament selection without replacement, uniform crossover, binary
    coding, nonoverlapping populations, no fault sampling, progress limit
    of 4x the sequential depth and sequence lengths of 1x/2x/4x the
    sequential depth.
    """

    __test__ = False  # "Test" prefix confuses pytest collection otherwise

    seed: int = 0
    selection: str = "tournament"
    crossover: str = "uniform"
    coding: str = "binary"
    generations: int = DEFAULT_GENERATIONS
    generation_gap: float = 1.0

    #: Multiplier on population size when overlapping generations are used
    #: (the paper scales N up as G shrinks; see Table 7 reproduction).
    population_scale: float = 1.0

    seq_population_size: int = SEQUENCE_POPULATION_SIZE
    seq_mutation_rate: float = SEQUENCE_MUTATION_RATE

    #: Progress limit for vector generation, as a multiple of sequential
    #: depth ("a small multiple of the sequential depth", §III).
    vector_progress_multiplier: float = 4.0
    #: Sequence lengths to try, as multiples of sequential depth (§III).
    seq_length_multipliers: Tuple[float, ...] = (1.0, 2.0, 4.0)
    #: Consecutive failed GA attempts before abandoning a sequence length.
    seq_fail_limit: int = 4

    #: Fault sample for fitness evaluation: ``None`` (full list), an int
    #: (fixed size, Table 6) or a float in (0, 1) (fraction).
    fault_sample: Optional[object] = None

    #: Whether phase 3 adds the activity term (costs an extra pass; the
    #: paper always uses it — disabling is for the ablation bench).
    use_activity_fitness: bool = True

    #: Hard cap on total vectors committed (safety net for the test
    #: suite; the paper has no such cap).
    max_vectors: Optional[int] = None

    #: Bit-slots per fault-simulation word group.
    word_width: int = 64

    #: Fault model: "stuck-at" (the paper's model) or "transition"
    #: (conclusion's "other fault models" extension — slow-to-rise/fall
    #: under the conditional stuck-at approximation).
    fault_model: str = "stuck-at"

    #: Island-model GA (conclusion's "parallel implementations"
    #: extension): number of islands per GA run (1 = the paper's plain
    #: GA) and generations between ring migrations.
    n_islands: int = 1
    migration_interval: int = 2

    #: Worker processes for fault-sharded candidate evaluation
    #: (``gatest run --eval-jobs``); 1 keeps the serial path exactly.
    eval_jobs: int = 1
    #: Chromosome evaluation cache: ``None`` enables it exactly when
    #: ``eval_jobs > 1``; force with True/False.  Results are identical
    #: either way (docs/PERFORMANCE.md).
    eval_cache: Optional[bool] = None

    #: Simulation kernel backend: "interp" (reference interpreter),
    #: "codegen" (generated straight-line Python, the default),
    #: "numpy" (vectorized plane kernel, falls back to the interpreter
    #: when numpy is unavailable) or ``None`` (auto: ``REPRO_SIM_KERNEL``
    #: env, else codegen).  Results are bit-identical either way
    #: (docs/KERNELS.md).
    sim_kernel: Optional[str] = None

    #: Self-healing pool policy for sharded evaluation: per-shard-pass
    #: timeout in seconds and pool-respawn retry count before degrading
    #: to the serial path (``None`` = environment/defaults; see
    #: docs/ROBUSTNESS.md).  Never affects results, only availability.
    eval_task_timeout: Optional[float] = None
    eval_retries: Optional[int] = None

    #: Execution-only knobs: settings that change how a run executes but
    #: provably not what it produces — excluded from :meth:`digest`, so
    #: a checkpointed run may be resumed with, say, a different
    #: ``eval_jobs`` and still finish bit-identically.
    _EXECUTION_ONLY = (
        "eval_jobs", "eval_cache", "sim_kernel",
        "eval_task_timeout", "eval_retries",
    )

    def __post_init__(self) -> None:
        if self.eval_jobs < 1:
            raise ValueError("eval_jobs must be >= 1")
        if self.n_islands < 1:
            raise ValueError("n_islands must be >= 1")
        if self.sim_kernel not in (None, "interp", "codegen", "numpy", "c"):
            raise ValueError(
                f"unknown simulation kernel {self.sim_kernel!r}; "
                "choose 'interp', 'codegen', 'numpy' or 'c'"
            )
        if self.fault_model not in ("stuck-at", "transition"):
            raise ValueError(
                f"unknown fault model {self.fault_model!r}; "
                "choose 'stuck-at' or 'transition'"
            )
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.seq_fail_limit < 1:
            raise ValueError("seq_fail_limit must be >= 1")
        if not 0.0 < self.generation_gap <= 1.0:
            raise ValueError("generation gap must be in (0, 1]")
        if self.population_scale <= 0:
            raise ValueError("population_scale must be positive")
        if self.eval_task_timeout is not None and self.eval_task_timeout <= 0:
            raise ValueError("eval_task_timeout must be positive (or None)")
        if self.eval_retries is not None and self.eval_retries < 0:
            raise ValueError("eval_retries must be >= 0 (or None)")

    def digest(self) -> str:
        """Hash of every result-affecting knob (run-checkpoint guard).

        Execution-only knobs (``_EXECUTION_ONLY``) are excluded: they
        are contractually bit-identical in outcome, so a run may resume
        under different parallelism, kernel or resilience settings.
        """
        items = sorted(
            (f.name, repr(getattr(self, f.name)))
            for f in fields(self)
            if f.name not in self._EXECUTION_ONLY
        )
        return hashlib.sha256(repr(items).encode()).hexdigest()

    @property
    def eval_cache_enabled(self) -> bool:
        """The resolved cache setting (auto: on iff ``eval_jobs > 1``)."""
        if self.eval_cache is None:
            return self.eval_jobs > 1
        return self.eval_cache

    def for_circuit(self, circuit_name: str) -> "TestGenConfig":
        """Apply the paper's per-circuit overrides (deep circuits)."""
        base = circuit_name.split("@", 1)[0]  # scaled profiles keep the name
        if base in DEEP_CIRCUITS:
            return replace(
                self,
                vector_progress_multiplier=1.0,
                seq_length_multipliers=(0.25, 0.5, 1.0),
            )
        return self

    def vector_ga_schedule(self, n_pi: int) -> GaSchedule:
        """Table 1 schedule, with the population scaled for Table 7 runs."""
        schedule = ga_params_for_vector_length(n_pi)
        if self.population_scale != 1.0:
            schedule = GaSchedule(
                population_size=max(
                    2, round(schedule.population_size * self.population_scale)
                ),
                mutation_rate=schedule.mutation_rate,
            )
        return schedule

    def sequence_ga_schedule(self) -> GaSchedule:
        """Sequence-phase GA schedule (§III-D), population-scaled."""
        schedule = GaSchedule(
            population_size=self.seq_population_size,
            mutation_rate=self.seq_mutation_rate,
        )
        if self.population_scale != 1.0:
            schedule = GaSchedule(
                population_size=max(
                    2, round(schedule.population_size * self.population_scale)
                ),
                mutation_rate=schedule.mutation_rate,
            )
        return schedule

    def progress_limit(self, seq_depth: int) -> int:
        """Noncontributing-vector limit before switching to sequences."""
        return max(1, round(self.vector_progress_multiplier * max(1, seq_depth)))

    def sequence_lengths(self, seq_depth: int) -> Tuple[int, ...]:
        """Concrete sequence lengths for a circuit, shortest first."""
        depth = max(1, seq_depth)
        lengths = []
        for multiplier in self.seq_length_multipliers:
            length = max(1, round(multiplier * depth))
            if length not in lengths:
                lengths.append(length)
        return tuple(lengths)
