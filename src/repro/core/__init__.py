"""GATEST core: the paper's contribution (config, fitness, phases, generator)."""

from .checkpoint import (
    RUN_FORMAT_VERSION,
    CheckpointError,
    circuit_fingerprint,
    fault_list_digest,
    load_checkpoint,
    load_run_checkpoint,
    restore_sim_run_state,
    run_checkpoint_is_preempted,
    save_checkpoint,
    save_run_checkpoint,
    sim_run_state,
)
from .compaction import CompactionResult, TestSetCompactor, compact_test_set
from .config import (
    DEEP_CIRCUITS,
    GaSchedule,
    TestGenConfig,
    ga_params_for_vector_length,
)
from .fitness import (
    FitnessContext,
    Phase,
    fitness_for_phase,
    phase1_fitness,
    phase2_fitness,
    phase3_fitness,
    phase4_fitness,
)
from .generator import (
    GaTestGenerator,
    RunPreempted,
    generate_tests,
    make_fault_simulator,
)
from .hybrid import HybridAtpg, HybridResult, run_hybrid
from .phases import PhaseTracker
from .results import StageEvent, TestGenResult

__all__ = [
    "CheckpointError",
    "RUN_FORMAT_VERSION",
    "circuit_fingerprint",
    "fault_list_digest",
    "load_checkpoint",
    "load_run_checkpoint",
    "restore_sim_run_state",
    "run_checkpoint_is_preempted",
    "RunPreempted",
    "save_checkpoint",
    "save_run_checkpoint",
    "sim_run_state",
    "CompactionResult",
    "DEEP_CIRCUITS",
    "FitnessContext",
    "TestSetCompactor",
    "compact_test_set",
    "GaSchedule",
    "GaTestGenerator",
    "HybridAtpg",
    "HybridResult",
    "run_hybrid",
    "Phase",
    "PhaseTracker",
    "StageEvent",
    "TestGenConfig",
    "TestGenResult",
    "fitness_for_phase",
    "ga_params_for_vector_length",
    "generate_tests",
    "make_fault_simulator",
    "phase1_fitness",
    "phase2_fitness",
    "phase3_fitness",
    "phase4_fitness",
]
