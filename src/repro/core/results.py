"""Result records produced by the GATEST generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..faults.model import Fault
from .fitness import Phase


@dataclass(frozen=True)
class StageEvent:
    """One entry of the generation trace (reproduces Figures 1 and 2).

    ``kind`` is ``"vector"`` or ``"sequence"``.  For vectors, ``phase``
    is the phase the vector was evolved under and ``frames`` is 1.  For
    sequence attempts, ``frames`` is the attempted sequence length and
    ``committed`` records whether the sequence improved coverage and was
    added to the test set.
    """

    kind: str
    phase: Phase
    frames: int
    detected: int
    committed: bool


@dataclass
class TestGenResult:
    """Everything a GATEST run produced.

    ``test_sequence`` is the full stream of committed vectors in
    application order (the paper's "Vec" column is its length);
    ``detected`` counts collapsed faults detected ("Det" column).
    """

    __test__ = False  # "Test" prefix confuses pytest collection otherwise

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    elapsed_seconds: float
    ga_evaluations: int
    ga_runs: int
    phase_transitions: List[Tuple[int, Phase]]
    trace: List[StageEvent] = field(default_factory=list)
    detections: List[Tuple[Fault, int]] = field(default_factory=list)

    @property
    def vectors(self) -> int:
        """Test-set length (the paper's Vec column)."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the collapsed fault list."""
        if self.total_faults == 0:
            return 0.0
        return self.detected / self.total_faults

    def summary(self) -> str:
        """One paper-style row: detections, vectors, time."""
        return (
            f"{self.circuit_name}: det {self.detected}/{self.total_faults} "
            f"({100 * self.fault_coverage:.1f}%), vec {self.vectors}, "
            f"{self.elapsed_seconds:.1f}s, {self.ga_evaluations} evaluations"
        )
