"""Phase state machine for individual-test-vector generation (Figure 2).

The tracker starts in phase 1 (initialize flip-flops).  Once every
flip-flop holds a definite value it moves to phase 2 (maximize
detections).  A vector that detects nothing sends it to phase 3, which
adds the activity reward and counts successive noncontributing vectors;
any detecting vector returns it to phase 2 and resets the count.  When
the noncontributing count exceeds the progress limit, vector generation
ends and the generator proceeds to test sequences (phase 4).

Circuits whose flip-flops cannot all be initialized (under three-valued
simulation) would wedge phase 1 forever, so the tracker also abandons
phase 1 after ``progress_limit`` consecutive vectors with no improvement
in the number of flip-flops set — a practical detail the paper does not
spell out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .fitness import Phase


@dataclass
class PhaseTracker:
    """Mutable Figure-2 state; one per GATEST run."""

    progress_limit: int
    phase: Phase = Phase.INITIALIZATION
    noncontributing: int = 0
    _best_ffs_set: int = 0
    _stagnant_init_vectors: int = 0
    #: (vector index, phase entered) transitions, for the Figure 2 trace.
    transitions: List[Tuple[int, Phase]] = field(default_factory=list)
    _vectors_seen: int = 0

    def __post_init__(self) -> None:
        if self.progress_limit < 1:
            raise ValueError("progress limit must be >= 1")
        self.transitions.append((0, self.phase))

    # ------------------------------------------------------------------

    def _enter(self, phase: Phase) -> None:
        if phase is not self.phase:
            self.phase = phase
            self.transitions.append((self._vectors_seen, phase))

    def record_vector(self, detected: int, ffs_set: int, all_ffs_set: bool) -> None:
        """Update state after one committed test vector.

        ``detected`` is the number of faults the vector newly detected,
        ``ffs_set``/``all_ffs_set`` describe the good-machine state after
        the vector.
        """
        self._vectors_seen += 1
        if self.phase is Phase.INITIALIZATION:
            if all_ffs_set:
                self._enter(Phase.DETECTION)
                return
            if ffs_set > self._best_ffs_set:
                self._best_ffs_set = ffs_set
                self._stagnant_init_vectors = 0
            else:
                self._stagnant_init_vectors += 1
                if self._stagnant_init_vectors >= self.progress_limit:
                    # Give up on full initialization (see module docstring).
                    self._enter(Phase.DETECTION)
            return
        if detected > 0:
            self.noncontributing = 0
            self._enter(Phase.DETECTION)
        else:
            self.noncontributing += 1
            self._enter(Phase.ACTIVITY)

    @property
    def vectors_exhausted(self) -> bool:
        """True when the progress limit is hit: switch to sequences."""
        return self.noncontributing >= self.progress_limit

    def enter_sequences(self) -> None:
        """Record the switch to test-sequence generation (phase 4)."""
        self._enter(Phase.SEQUENCES)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe rendering of the full tracker state (run checkpoints)."""
        return {
            "phase": self.phase.name,
            "noncontributing": self.noncontributing,
            "best_ffs_set": self._best_ffs_set,
            "stagnant_init_vectors": self._stagnant_init_vectors,
            "vectors_seen": self._vectors_seen,
            "transitions": [
                [index, phase.name] for index, phase in self.transitions
            ],
        }

    @classmethod
    def from_state(cls, state: dict, progress_limit: int) -> "PhaseTracker":
        """Rebuild a tracker exactly as :meth:`state_dict` captured it."""
        tracker = cls(progress_limit=progress_limit)
        tracker.phase = Phase[state["phase"]]
        tracker.noncontributing = state["noncontributing"]
        tracker._best_ffs_set = state["best_ffs_set"]
        tracker._stagnant_init_vectors = state["stagnant_init_vectors"]
        tracker._vectors_seen = state["vectors_seen"]
        tracker.transitions = [
            (index, Phase[name]) for index, name in state["transitions"]
        ]
        return tracker
