"""Crash-safe file writes: tmp + fsync + rename.

Every artifact the project persists (test-vector files, JSONL traces,
benchmark records, run checkpoints) goes through this one helper, so an
interrupt — SIGKILL, OOM, power loss — can never leave a torn,
half-written file behind: readers see either the complete previous
contents or the complete new contents, nothing in between.

The recipe is the standard POSIX one: write to a temporary file in the
*same directory* (``os.replace`` is only atomic within one filesystem),
flush and ``fsync`` the file so the data is durable before the rename,
then ``os.replace`` onto the destination.  The directory entry is also
fsynced on a best-effort basis so the rename itself survives a crash.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_open(path: PathLike, encoding: str = "utf-8") -> Iterator[IO[str]]:
    """Open a text stream that atomically replaces ``path`` on success.

    The stream writes to ``<path>.tmp.<pid>`` in the destination's
    directory.  On a clean exit the temporary is fsynced and renamed
    over ``path``; on any exception it is removed and ``path`` is left
    untouched.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    fh = open(tmp, "w", encoding=encoding)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, target)
        _fsync_dir(target.parent)
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry to disk (best effort; not all platforms
    allow opening directories)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open(path, encoding=encoding) as fh:
        fh.write(text)


def atomic_write_json(path: PathLike, obj, **dumps_kwargs) -> None:
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    with atomic_open(path) as fh:
        json.dump(obj, fh, **dumps_kwargs)
        fh.write("\n")
