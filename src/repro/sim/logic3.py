"""Three-valued (0/1/X) good-machine simulation, pattern-parallel.

:class:`PatternSimulator` simulates the fault-free circuit for many
candidate tests at once: slot *i* of every bit-plane word carries
candidate *i*.  All slots start from one broadcast flip-flop state (the
circuit state the test generator has reached) and diverge as their own
vectors are applied.  This evaluates a whole GA population's phase-1
fitness data in a single pass over the compiled program per time frame.

Flip-flop state *between* simulator invocations lives in
:class:`GoodState` — plain scalars (0/1/X per flip-flop) so it can be
stored, copied and restored cheaply (the paper's §IV modification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..circuit.gates import X
from ..circuit.netlist import Circuit
from .codegen import kernel_for
from .compile import CompiledCircuit, compile_circuit

Vector = Sequence[int]  # one scalar 0/1/X per primary input


@dataclass
class GoodState:
    """Fault-free circuit state: one scalar 0/1/X per flip-flop."""

    ff_values: List[int]

    @classmethod
    def unknown(cls, num_ffs: int) -> "GoodState":
        """The power-up state: every flip-flop unknown."""
        return cls([X] * num_ffs)

    def copy(self) -> "GoodState":
        """Independent copy of the state."""
        return GoodState(list(self.ff_values))

    @property
    def num_set(self) -> int:
        """Number of flip-flops holding a definite value."""
        return sum(1 for v in self.ff_values if v != X)

    @property
    def all_set(self) -> bool:
        """True when every flip-flop is initialized."""
        return self.num_set == len(self.ff_values)


@dataclass
class FrameStats:
    """Per-slot observations from one simulated time frame."""

    ffs_set: List[int]        # flip-flops definite in the *next* state
    ffs_changed: List[int]    # definite-to-definite toggles this frame
    events: List[int]         # node values changed vs the previous frame


def _broadcast(value: int, mask: int) -> tuple:
    """Scalar 0/1/X -> (v1, v0) word pair across all slots."""
    if value == 1:
        return (mask, 0)
    if value == 0:
        return (0, mask)
    return (0, 0)


class PatternSimulator:
    """Pattern-parallel three-valued simulator for the fault-free machine.

    Typical use::

        sim = PatternSimulator(compiled, n_slots=len(population))
        sim.begin(state)
        stats = sim.step([candidate.vector_for_slot(s) for s in range(...)])
        best_state = sim.extract_state(best_slot)
    """

    def __init__(
        self,
        compiled: Union[CompiledCircuit, Circuit],
        n_slots: int = 1,
        collector=None,
        kernel: Optional[str] = None,
    ) -> None:
        if not isinstance(compiled, CompiledCircuit):
            compiled = compile_circuit(compiled)
        if n_slots < 1:
            raise ValueError("need at least one slot")
        from ..telemetry.collector import get_collector

        self.collector = collector if collector is not None else get_collector()
        self._kernel = kernel_for(compiled, kernel, collector=self.collector)
        self.kernel_name = self._kernel.name
        self.compiled = compiled
        self.n_slots = n_slots
        self.mask = (1 << n_slots) - 1
        n = compiled.num_nodes
        self.v1: List[int] = [0] * n
        self.v0: List[int] = [0] * n
        # Packed present-state planes, one word pair per flip-flop.
        self.ff1: List[int] = [0] * compiled.num_ffs
        self.ff0: List[int] = [0] * compiled.num_ffs
        self._began = False

    # ------------------------------------------------------------------

    def begin(self, state: Optional[GoodState] = None) -> None:
        """Broadcast one flip-flop state into every slot and reset nodes."""
        compiled = self.compiled
        if state is None:
            state = GoodState.unknown(compiled.num_ffs)
        if len(state.ff_values) != compiled.num_ffs:
            raise ValueError(
                f"state has {len(state.ff_values)} flip-flops, "
                f"circuit has {compiled.num_ffs}"
            )
        for k, value in enumerate(state.ff_values):
            self.ff1[k], self.ff0[k] = _broadcast(value, self.mask)
        n = compiled.num_nodes
        self.v1 = [0] * n
        self.v0 = [0] * n
        self._began = True

    def step(self, vectors: Sequence[Vector], count_events: bool = True) -> FrameStats:
        """Clock the circuit one time frame.

        ``vectors[s]`` is the primary-input vector for slot *s* (scalars
        0/1/X, one per PI).  Returns per-slot statistics; flip-flop state
        advances to the next state.
        """
        if not self._began:
            raise RuntimeError("call begin() before step()")
        compiled = self.compiled
        n_slots = self.n_slots
        if len(vectors) != n_slots:
            raise ValueError(f"expected {n_slots} vectors, got {len(vectors)}")
        v1, v0 = self.v1, self.v0
        old_v1 = list(v1) if count_events else None
        old_v0 = list(v0) if count_events else None

        # Load primary inputs (transpose slot-major vectors to bit planes).
        for j, pi in enumerate(compiled.pi_ids):
            w1 = 0
            w0 = 0
            bit = 1
            for s in range(n_slots):
                value = vectors[s][j]
                if value == 1:
                    w1 |= bit
                elif value == 0:
                    w0 |= bit
                bit <<= 1
            v1[pi], v0[pi] = w1, w0

        # Load flip-flop present state.
        prev_ff1 = list(self.ff1)
        prev_ff0 = list(self.ff0)
        for k, ff in enumerate(compiled.ff_ids):
            v1[ff], v0[ff] = self.ff1[k], self.ff0[k]

        self._kernel.eval(v1, v0, self.mask)

        # Capture next state from the D-input nodes.
        set_counts = [0] * n_slots
        changed_counts = [0] * n_slots
        for k, d_node in enumerate(compiled.ff_d_ids):
            n1, n0 = v1[d_node], v0[d_node]
            self.ff1[k], self.ff0[k] = n1, n0
            known = n1 | n0
            toggled = (n1 & prev_ff0[k]) | (n0 & prev_ff1[k])
            if known:
                for s in range(n_slots):
                    if (known >> s) & 1:
                        set_counts[s] += 1
            if toggled:
                for s in range(n_slots):
                    if (toggled >> s) & 1:
                        changed_counts[s] += 1

        events = [0] * n_slots
        if count_events:
            for node in range(compiled.num_nodes):
                diff = (v1[node] ^ old_v1[node]) | (v0[node] ^ old_v0[node])
                if diff:
                    for s in range(n_slots):
                        if (diff >> s) & 1:
                            events[s] += 1
        collector = self.collector
        if collector.enabled:
            collector.inc("sim.pattern.steps")
            collector.inc("sim.pattern.slot_frames", n_slots)
            if count_events:
                collector.inc("sim.pattern.events", sum(events))
        return FrameStats(ffs_set=set_counts, ffs_changed=changed_counts, events=events)

    # ------------------------------------------------------------------

    def extract_state(self, slot: int) -> GoodState:
        """Extract the present flip-flop state of one slot as scalars."""
        bit = 1 << slot
        values = []
        for k in range(self.compiled.num_ffs):
            if self.ff1[k] & bit:
                values.append(1)
            elif self.ff0[k] & bit:
                values.append(0)
            else:
                values.append(X)
        return GoodState(values)

    def po_values(self, slot: int) -> List[int]:
        """Primary-output scalars of one slot after the latest step."""
        bit = 1 << slot
        out = []
        for po in self.compiled.po_ids:
            if self.v1[po] & bit:
                out.append(1)
            elif self.v0[po] & bit:
                out.append(0)
            else:
                out.append(X)
        return out

    def node_value(self, slot: int, node_id: int) -> int:
        """Scalar value of an arbitrary node in one slot."""
        bit = 1 << slot
        if self.v1[node_id] & bit:
            return 1
        if self.v0[node_id] & bit:
            return 0
        return X


class SerialSimulator(PatternSimulator):
    """Single-slot convenience wrapper with a scalar API.

    Used wherever clarity matters more than throughput: applying the
    chosen test to advance the committed circuit state, reference checks
    in tests, and the examples.
    """

    def __init__(self, compiled: Union[CompiledCircuit, Circuit]) -> None:
        super().__init__(compiled, n_slots=1)

    def apply(self, vector: Vector, state: Optional[GoodState] = None) -> List[int]:
        """Apply one vector (optionally from a fresh state); return POs."""
        if state is not None or not self._began:
            self.begin(state)
        self.step([vector])
        return self.po_values(0)

    def run_sequence(self, vectors: Sequence[Vector], state: Optional[GoodState] = None) -> List[List[int]]:
        """Apply a sequence from ``state`` (default power-up); return PO trace."""
        self.begin(state)
        trace = []
        for vector in vectors:
            self.step([vector])
            trace.append(self.po_values(0))
        return trace

    @property
    def state(self) -> GoodState:
        """Current flip-flop state of the single slot."""
        return self.extract_state(0)
