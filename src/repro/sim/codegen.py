"""Codegen simulation kernels: each circuit compiled to straight-line Python.

The interpreter loops in :mod:`repro.sim.compile` pay per-gate dispatch
on every pass: tuple unpacking, opcode branching and an inner fanin loop
per gate per frame.  PROOFS and the compiled-simulation line of work it
builds on (see PAPERS.md) get their speed from translating the levelized
netlist into straight-line code evaluated without any dispatch.  This
module does the same for the bit-plane programs of
:class:`~repro.sim.compile.CompiledCircuit`:

* the **good-machine kernel** is a generated function with the same
  contract as :func:`~repro.sim.compile.eval_program` — one pair of
  bitwise expressions per gate in levelized order, fanin loops unrolled
  and the ``invert`` flag folded into the expression, node planes
  register-allocated into Python locals and spilled back into the
  ``v1``/``v0`` lists with a single bulk list assignment per plane;
* the **injected kernel** is *parameterized*: it reads per-run
  ``out_force``/``pin_force`` words from dense per-node tables, so one
  compiled function serves every injection signature — fault groups
  never trigger a recompile.  Unforced gates (the common case) pay one
  table load and one branch on top of the straight-line expressions;
  forced gates take a generated branch that applies the output and
  per-pin force words inline, replicating the interpreter's forced
  branch bit for bit.

Generated kernels are **bit-identical** to the interpreter under the
bit-plane contract (``v1[i] & v0[i] == 0`` and both planes subsets of
``mask`` — what every caller in this repo maintains): the only algebraic
liberty taken is dropping ``mask &`` where the operands are already
subsets of ``mask``.

Kernels are built once per circuit per process and held in a small
keyed cache (good-machine, injected and wide-word batch passes all
share the two generated functions); building is metered with the
``codegen.compile.seconds`` / ``codegen.kernels.built`` counters.  Any
failure to generate, compile or ``exec`` a kernel falls back to the
interpreter automatically (``codegen.fallbacks``), so ``codegen`` is a
safe default everywhere.

Backend selection: :func:`resolve_kernel_name` resolves an explicit
``"interp"``/``"codegen"``/``"numpy"``/``"c"`` request, else the
``REPRO_SIM_KERNEL`` environment variable, else :data:`DEFAULT_KERNEL`
(``"codegen"``).  The ``numpy`` backend (:mod:`repro.sim.npkernel`)
layers a vectorized wide-group runner on top of the generated kernels
and falls back to the interpreter when numpy is unusable; the ``c``
backend (:mod:`repro.sim.ckernel`) compiles the same straight-line
evaluation to native code at runtime and falls back to the interpreter
when no C compiler or cached artifact is available.  See
docs/KERNELS.md for the kernel-author contract, and
docs/ARCHITECTURE.md ("Simulation kernels") / docs/PERFORMANCE.md for
the measured speedups.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from .compile import (
    OP_AND,
    OP_COPY,
    OP_OR,
    OP_XOR,
    CompiledCircuit,
    eval_program,
    eval_program_injected,
)

#: The default kernel backend (overridable via ``REPRO_SIM_KERNEL``).
DEFAULT_KERNEL = "codegen"

#: Recognized backend names.
KERNEL_NAMES = ("interp", "codegen", "numpy", "c")

#: Environment variable consulted when no explicit backend is requested.
KERNEL_ENV = "REPRO_SIM_KERNEL"


def resolve_kernel_name(name: Optional[str] = None) -> str:
    """Resolve a kernel request to a concrete backend name.

    Order: explicit ``name`` > ``REPRO_SIM_KERNEL`` environment variable
    > :data:`DEFAULT_KERNEL`.  ``None``/``""``/``"auto"`` mean "no
    explicit request".  Unknown names raise ``ValueError``.
    """
    if name in KERNEL_NAMES:
        return name  # type: ignore[return-value]
    if name not in (None, "", "auto"):
        raise ValueError(
            f"unknown simulation kernel {name!r}; choose one of {KERNEL_NAMES}"
        )
    env = os.environ.get(KERNEL_ENV, "").strip()
    if env in KERNEL_NAMES:
        return env
    if env:
        raise ValueError(
            f"unknown simulation kernel {env!r} in ${KERNEL_ENV}; "
            f"choose one of {KERNEL_NAMES}"
        )
    return DEFAULT_KERNEL


class SimKernel:
    """One circuit's evaluation backend: three bound callables.

    * ``eval(v1, v0, mask)`` — the good-machine pass; same contract as
      :func:`~repro.sim.compile.eval_program` with the program bound.
    * ``make_injection(out_force, pin_force)`` — prepare one fault
      group's injection tables in whatever form ``eval_injection``
      wants.  Build it once per group (or batch) pass, outside the
      frame loop.
    * ``eval_injection(v1, v0, mask, injection)`` — the injected pass;
      same contract as :func:`~repro.sim.compile.eval_program_injected`
      with the program bound and the force dicts pre-digested.

    Backends with vectorized wide-group runners (``numpy``) additionally
    bind the optional hooks (``None`` on the bigint-only backends):

    * ``run_group(sim, group, trace, count_faulty_events, inj)`` — a
      drop-in fused replacement for one
      :meth:`~repro.faults.simulator.FaultSimulator._run_group` call,
      bit-identical by contract (docs/KERNELS.md);
    * ``run_batch`` — reserved for a fused population pass;
    * ``group_width`` — the widest fault group the backend wants the
      simulator to build (the simulator still keeps at least
      ``eval_jobs`` groups so fault sharding fans out).

    ``name`` is the backend actually running (after any fallback);
    ``requested`` is what the caller asked for.
    """

    __slots__ = (
        "name", "requested", "eval", "make_injection", "eval_injection",
        "run_group", "run_batch", "group_width",
    )

    def __init__(
        self,
        name: str,
        requested: str,
        eval_fn: Callable[[List[int], List[int], int], None],
        make_injection: Callable[[Dict, Dict], object],
        eval_injection: Callable[[List[int], List[int], int, object], None],
        run_group: Optional[Callable] = None,
        run_batch: Optional[Callable] = None,
        group_width: Optional[int] = None,
    ) -> None:
        self.name = name
        self.requested = requested
        self.eval = eval_fn
        self.make_injection = make_injection
        self.eval_injection = eval_injection
        self.run_group = run_group
        self.run_batch = run_batch
        self.group_width = group_width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimKernel(name={self.name!r}, requested={self.requested!r})"


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------


def _gate_exprs(opcode: int, ones: List[str], zeros: List[str]) -> Tuple[List[str], str, str]:
    """Pre-invert (v1, v0) expressions for one gate over named locals.

    ``ones``/``zeros`` are the per-fanin 1-plane/0-plane local names.
    Returns ``(setup_lines, expr1, expr0)``; ``setup_lines`` holds the
    pairwise-fold temporaries a multi-input XOR needs (its plane
    expressions reference each other, so nesting would duplicate
    subexpressions exponentially).
    """
    if opcode == OP_AND:
        return [], " & ".join(ones), " | ".join(zeros)
    if opcode == OP_OR:
        return [], " | ".join(ones), " & ".join(zeros)
    if opcode == OP_COPY:
        return [], ones[0], zeros[0]
    # OP_XOR: fold pairwise exactly like the interpreter.
    x1, x0 = ones[0], zeros[0]
    setup: List[str] = []
    for y1, y0 in zip(ones[1:-1], zeros[1:-1]):
        setup.append(
            f"_t1, _t0 = ({x1} & {y0}) | ({x0} & {y1}), "
            f"({x1} & {y1}) | ({x0} & {y0})"
        )
        x1, x0 = "_t1", "_t0"
    y1, y0 = ones[-1], zeros[-1]
    return (
        setup,
        f"({x1} & {y0}) | ({x0} & {y1})",
        f"({x1} & {y1}) | ({x0} & {y0})",
    )


def generate_source(compiled: CompiledCircuit, injected: bool) -> str:
    """Generate the straight-line kernel source for one circuit.

    With ``injected=False`` the function is ``_kernel(v1, v0, M)``;
    with ``injected=True`` it is ``_kernel_injected(v1, v0, M, _FX)``
    where ``_FX`` is one dense per-node table (``None`` for unforced
    gates — the overwhelmingly common case, costing one load and one
    branch — or the combined ``(pins, f1, f0)`` entry built by
    :func:`make_force_tables`).  Forced gates apply the output and
    per-pin force words inline.
    """
    n = compiled.num_nodes
    written = {instr[0] for instr in compiled.program}
    lines: List[str] = []
    if injected:
        lines.append("def _kernel_injected(v1, v0, M, _FX):")
    else:
        lines.append("def _kernel(v1, v0, M):")
    # Register allocation: load every node the program does not write
    # (primary inputs, flip-flop outputs, isolated nodes) into locals so
    # the final spill can rebuild both planes in full.
    for i in range(n):
        if i not in written:
            lines.append(f"    a{i} = v1[{i}]; b{i} = v0[{i}]")
    for out, opcode, invert, fanins in compiled.program:
        ones = [f"a{f}" for f in fanins]
        zeros = [f"b{f}" for f in fanins]
        setup, e1, e0 = _gate_exprs(opcode, ones, zeros)
        if invert:
            e1, e0 = e0, e1
        if not injected:
            for stmt in setup:
                lines.append(f"    {stmt}")
            lines.append(f"    a{out} = {e1}")
            lines.append(f"    b{out} = {e0}")
            continue
        lines.append(f"    _e = _FX[{out}]")
        lines.append("    if _e is None:")
        for stmt in setup:
            lines.append(f"        {stmt}")
        lines.append(f"        a{out} = {e1}")
        lines.append(f"        b{out} = {e0}")
        lines.append("    else:")
        lines.append("        _p, _f1, _f0 = _e")
        lines.append("        if _p is None:")
        for stmt in setup:
            lines.append(f"            {stmt}")
        lines.append(f"            a{out} = (({e1}) | _f1) & ~_f0")
        lines.append(f"            b{out} = (({e0}) & ~_f1) | _f0")
        lines.append("        else:")
        # Pin-forced gate, fully inline: per-fanin force application
        # (the exact combined form of the interpreter's ``_force``)
        # into fresh locals, then the same gate expressions over them.
        forced_ones = []
        forced_zeros = []
        for pin, (one, zero) in enumerate(zip(ones, zeros)):
            lines.append(f"            _q = _p[{pin}]")
            lines.append("            if _q is None:")
            lines.append(f"                _i{pin} = {one}; _j{pin} = {zero}")
            lines.append("            else:")
            lines.append("                _q1, _q0 = _q")
            lines.append(
                f"                _i{pin} = ({one} | _q1) & ~_q0; "
                f"_j{pin} = ({zero} & ~_q1) | _q0"
            )
            forced_ones.append(f"_i{pin}")
            forced_zeros.append(f"_j{pin}")
        fsetup, fe1, fe0 = _gate_exprs(opcode, forced_ones, forced_zeros)
        if invert:
            fe1, fe0 = fe0, fe1
        for stmt in fsetup:
            lines.append(f"            {stmt}")
        lines.append(f"            a{out} = (({fe1}) | _f1) & ~_f0")
        lines.append(f"            b{out} = (({fe0}) & ~_f1) | _f0")
    spill1 = ", ".join(f"a{i}" for i in range(n))
    spill0 = ", ".join(f"b{i}" for i in range(n))
    lines.append(f"    v1[:] = [{spill1}]")
    lines.append(f"    v0[:] = [{spill0}]")
    lines.append("")
    return "\n".join(lines)


def make_force_tables(
    num_nodes: int, out_force: Dict, pin_force: Dict, arity: Optional[Dict[int, int]] = None
) -> List:
    """Digest the interpreter's force dicts into one dense per-node table.

    Each forced node's row is ``(pins, f1, f0)``: ``pins`` is a
    per-fanin list of ``None`` / ``(f1, f0)`` force pairs (``None`` in
    the row when only the output is forced — the generated kernel then
    skips the per-pin probes), and ``f1``/``f0`` are the output-force
    words (0 when only pins are forced).  Unforced nodes hold ``None``.
    ``arity`` maps gate node id to fanin count (sizes the pin lists so
    the kernel can index them directly).
    """
    fx: List = [None] * num_nodes
    for node, (f1, f0) in out_force.items():
        fx[node] = (None, f1, f0)
    for node, entries in pin_force.items():
        width = arity.get(node) if arity is not None else None
        if width is None:
            width = max(pin for pin, _f1, _f0 in entries) + 1
        pins: List = [None] * width
        for pin, f1, f0 in entries:
            pins[pin] = (f1, f0)
        prev = fx[node]
        if prev is None:
            fx[node] = (pins, 0, 0)
        else:
            fx[node] = (pins, prev[1], prev[2])
    return fx


# ----------------------------------------------------------------------
# Build + cache
# ----------------------------------------------------------------------

#: Kernel cache: ``id(compiled) -> (weakref, {"good": fn, "injected": fn})``.
#: Keyed by identity (``CompiledCircuit`` holds an unhashable ``Circuit``)
#: and validated against the weakref so a recycled id can never alias; the
#: weakref callback evicts entries when a circuit is collected.
_CACHE: Dict[int, Tuple["weakref.ref", Dict[str, Callable]]] = {}


def clear_kernel_cache() -> None:
    """Drop every cached generated kernel and backend plan (tests /
    memory pressure).  On-disk C artifacts survive — they are keyed by
    circuit digest, not identity."""
    _CACHE.clear()
    from . import ckernel, npkernel

    npkernel.clear_plan_cache()
    ckernel.clear_plan_cache()


def _build_kernels(compiled: CompiledCircuit, collector) -> Dict[str, Callable]:
    """Generate, compile and ``exec`` both kernel functions for a circuit."""
    t0 = time.perf_counter()
    label = compiled.circuit.name or "circuit"
    namespace: Dict[str, object] = {}
    good_src = generate_source(compiled, injected=False)
    exec(compile(good_src, f"<codegen:{label}:good>", "exec"), namespace)
    injected_src = generate_source(compiled, injected=True)
    exec(compile(injected_src, f"<codegen:{label}:injected>", "exec"), namespace)
    fns = {
        "good": namespace["_kernel"],
        "injected": namespace["_kernel_injected"],
        "good_source": good_src,
        "injected_source": injected_src,
    }
    if collector.enabled:
        collector.inc("codegen.compile.seconds", time.perf_counter() - t0)
        collector.inc("codegen.kernels.built", 2)
    return fns  # type: ignore[return-value]


def _kernels_for(compiled: CompiledCircuit, collector) -> Dict[str, Callable]:
    """The cached generated kernels for one compiled circuit."""
    key = id(compiled)
    entry = _CACHE.get(key)
    if entry is not None and entry[0]() is compiled:
        return entry[1]
    fns = _build_kernels(compiled, collector)
    ref = weakref.ref(compiled, lambda _r, _k=key: _CACHE.pop(_k, None))
    _CACHE[key] = (ref, fns)
    return fns


def _interp_kernel(compiled: CompiledCircuit, requested: str) -> SimKernel:
    """The reference interpreter wrapped in the kernel interface."""
    program = compiled.program

    def make_injection(out_force: Dict, pin_force: Dict):
        return (out_force, pin_force)

    def eval_injection(v1, v0, mask, injection):
        out_force, pin_force = injection
        eval_program_injected(program, v1, v0, mask, out_force, pin_force)

    return SimKernel(
        name="interp",
        requested=requested,
        eval_fn=partial(eval_program, program),
        make_injection=make_injection,
        eval_injection=eval_injection,
    )


def _fallback_kernel(
    compiled: CompiledCircuit, requested: str, exc: Exception, collector
) -> SimKernel:
    """Warn (naming the requested backend and the exception class), count
    ``<requested>.fallbacks``, and return the interpreter kernel."""
    if collector.enabled:
        collector.inc(f"{requested}.fallbacks")
    warnings.warn(
        f"{requested} kernel build failed for "
        f"{compiled.circuit.name or 'circuit'!r} "
        f"({type(exc).__name__}: {exc}); falling back to the interpreter",
        RuntimeWarning,
        stacklevel=3,
    )
    return _interp_kernel(compiled, requested)


def kernel_for(
    compiled: CompiledCircuit,
    name: Optional[str] = None,
    collector=None,
) -> SimKernel:
    """Resolve and build the simulation kernel for one circuit.

    ``name`` follows :func:`resolve_kernel_name`.  A ``codegen``,
    ``numpy`` or ``c`` request that fails to build (pathological
    circuit, interpreter limit, numpy absent or too old, no C compiler
    and no cached artifact, …) falls back to the interpreter with a
    warning naming the requested backend and the
    ``<requested>.fallbacks`` counter — never an exception.
    """
    if collector is None:
        from ..telemetry.collector import get_collector

        collector = get_collector()
    requested = resolve_kernel_name(name)
    if requested == "interp":
        return _interp_kernel(compiled, requested)
    try:
        fns = _kernels_for(compiled, collector)
        good = fns["good"]
        injected = fns["injected"]
    except Exception as exc:  # automatic interpreter fallback
        return _fallback_kernel(compiled, requested, exc, collector)
    if requested == "numpy":
        from . import npkernel

        try:
            return npkernel.build(compiled, requested, fns, collector)
        except Exception as exc:  # numpy absent/too old/build failure
            return _fallback_kernel(compiled, requested, exc, collector)
    if requested == "c":
        from . import ckernel

        try:
            return ckernel.build(compiled, requested, fns, collector)
        except Exception as exc:  # no compiler/cached artifact, cc error
            return _fallback_kernel(compiled, requested, exc, collector)
    num_nodes = compiled.num_nodes
    arity = {instr[0]: len(instr[3]) for instr in compiled.program}

    def make_injection(out_force: Dict, pin_force: Dict):
        return make_force_tables(num_nodes, out_force, pin_force, arity)

    def eval_injection(v1, v0, mask, injection):
        injected(v1, v0, mask, injection)

    return SimKernel(
        name="codegen",
        requested=requested,
        eval_fn=good,
        make_injection=make_injection,
        eval_injection=eval_injection,
    )


def kernel_source(compiled: CompiledCircuit, variant: str = "good") -> str:
    """The generated source of a cached kernel (introspection/tests)."""
    from ..telemetry.collector import get_collector

    fns = _kernels_for(compiled, get_collector())
    return fns[f"{variant}_source"]  # type: ignore[return-value]
