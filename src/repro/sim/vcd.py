"""VCD (Value Change Dump, IEEE 1364) waveform writer.

Dumps the fault-free simulation of a vector sequence so any standard
waveform viewer (GTKWave etc.) can inspect what a generated test set
actually does to a circuit — indispensable when debugging why a fault
escapes.  One VCD time unit corresponds to one clock cycle (time frame).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

from ..circuit.gates import X
from ..circuit.netlist import Circuit
from .logic3 import GoodState, SerialSimulator, Vector

_VALUE_CHAR = {0: "0", 1: "1", X: "x"}

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


def dump_vcd(
    circuit: Circuit,
    vectors: Sequence[Vector],
    path: Union[str, Path, TextIO],
    state: Optional[GoodState] = None,
    signals: Optional[Sequence[str]] = None,
) -> None:
    """Simulate ``vectors`` and write the node waveforms as VCD.

    ``signals`` restricts the dump to named nodes (default: all nodes).
    ``state`` is the starting flip-flop state (default: power-up X).
    """
    if signals is None:
        node_ids = list(range(circuit.num_nodes))
    else:
        node_ids = [circuit.id_of(name) for name in signals]
    idents = {node: _identifier(i) for i, node in enumerate(node_ids)}

    own_handle = not hasattr(path, "write")
    handle: TextIO = open(path, "w") if own_handle else path  # type: ignore[arg-type]
    try:
        handle.write("$date reproduced-gatest $end\n")
        handle.write("$version repro VCD writer $end\n")
        handle.write("$timescale 1 ns $end\n")
        handle.write(f"$scope module {circuit.name} $end\n")
        for node in node_ids:
            handle.write(
                f"$var wire 1 {idents[node]} {circuit.node_names[node]} $end\n"
            )
        handle.write("$upscope $end\n$enddefinitions $end\n")

        sim = SerialSimulator(circuit)
        sim.begin(state)
        previous = {node: None for node in node_ids}
        handle.write("$dumpvars\n")
        for node in node_ids:
            handle.write(f"x{idents[node]}\n")
        handle.write("$end\n")
        for t, vector in enumerate(vectors):
            sim.step([vector])
            handle.write(f"#{t}\n")
            for node in node_ids:
                value = sim.node_value(0, node)
                if value != previous[node]:
                    handle.write(f"{_VALUE_CHAR[value]}{idents[node]}\n")
                    previous[node] = value
        handle.write(f"#{len(vectors)}\n")
    finally:
        if own_handle:
            handle.close()
