"""Compiled C simulation kernel: per-circuit native code via cffi/ctypes.

The ``numpy`` backend removed the per-gate Python work but still pays
one ufunc dispatch per levelized rank per frame plus gather traffic.
This backend removes the per-*frame* Python work too: the whole
:meth:`~repro.faults.simulator.FaultSimulator._run_group` frame loop —
primary-input loads, present-state loads, the levelized straight-line
gate evaluation over ``uint64`` planes (``invert`` folded at
generation time, exactly like the codegen backend), detection reads,
next-state capture and the phase-3 faulty-event count — is emitted as
one C function per compiled circuit and compiled at runtime.  One
native call then evaluates a whole wide fault group across every time
frame of a candidate.

Parameterization mirrors :func:`repro.sim.codegen.generate_source`:
the generated function reads per-run force words from **dense
per-node tables** (an output-force plane pair per node, a pin-force
plane pair per gate operand slot, a D-pin pair per flip-flop), so one
compiled function serves every injection signature — fault groups
never trigger a recompile.  Unforced gates (the common case) pay one
flag-byte load and one branch on top of the straight-line expressions.

Toolchain and artifact cache
----------------------------

The C source is compiled with the system compiler (``cc``/``gcc``/
``clang`` on ``PATH``, overridable with ``REPRO_CKERNEL_CC``) into a
plain shared library, loaded through **cffi** (ABI mode) when cffi is
importable and through **ctypes** otherwise — the artifact is an
ordinary ``.so`` either way.  Artifacts are cached on disk
(``REPRO_CKERNEL_CACHE``, default ``~/.cache/repro/ckernel``) keyed by
the circuit digest and :data:`CKERNEL_VERSION`, so the service's warm
registry, repeat CLI runs and pool workers skip the compile entirely
(``c.cache.hits`` / ``c.cache.misses``); bumping the version changes
every key, invalidating stale artifacts.  Pool workers additionally
accept the parent's compiled-library path via
:func:`preload_artifact` (shipped through ``init_worker``) and
recompile locally when the shipped path is unusable.

Bigint entry points (``eval`` / ``eval_injection``) delegate to the
generated codegen functions — bit-identical by the codegen contract
and faster for the narrow words the good machine and sub-64-slot
groups use (docs/KERNELS.md sanctions exactly this).  :func:`build`
raises when no compiler is available and the artifact is not cached;
``kernel_for`` then falls back to the interpreter with a
``c.fallbacks`` counter — requesting ``c`` is always safe.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import time
import weakref
from typing import Dict, List, Optional, Tuple

from .compile import OP_AND, OP_COPY, OP_OR, OP_XOR, CompiledCircuit

#: Generated-code/ABI version: part of every on-disk cache key, so
#: bumping it invalidates every stale compiled artifact at once.
CKERNEL_VERSION = 1

#: Widest fused fault group the simulator should build for this kernel
#: (same cap as the numpy backend: one group per candidate evaluation
#: on full-size circuits, subject to the eval_jobs floor).
WIDE_GROUP_CAP = 4096

#: Environment overrides.
CC_ENV = "REPRO_CKERNEL_CC"
CACHE_ENV = "REPRO_CKERNEL_CACHE"

#: Worker-side registry of artifacts shipped by the parent process:
#: ``digest -> path``.  See :func:`preload_artifact`.
_PRELOADED: Dict[str, str] = {}


def _find_cc() -> Optional[str]:
    """The C compiler to use, or ``None``.

    ``REPRO_CKERNEL_CC`` (when set) is authoritative — it is *not*
    backed up by the ``PATH`` search, so pointing it at a nonexistent
    command is how tests and CI simulate a compiler-less host.  Probed
    freshly on every call (no negative caching), so environments that
    appear mid-process are picked up.
    """
    override = os.environ.get(CC_ENV)
    if override is not None and override.strip():
        cand = override.strip()
        if os.sep in cand:
            return cand if os.access(cand, os.X_OK) else None
        return shutil.which(cand)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def available() -> bool:
    """Whether this process can *compile* a C kernel (cached artifacts
    load fine without a compiler; ``build`` tries the cache first)."""
    return _find_cc() is not None


def cache_dir() -> str:
    """The on-disk artifact cache directory (not created here)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "ckernel"
    )


# ----------------------------------------------------------------------
# C source generation
# ----------------------------------------------------------------------

_PROLOGUE = """\
#include <stdint.h>
typedef uint64_t u64;
typedef unsigned char u8;
typedef long long i64;
#if defined(__GNUC__) || defined(__clang__)
#define POPC(x) ((i64)__builtin_popcountll(x))
#else
static i64 POPC(u64 x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    return (i64)((x * 0x0101010101010101ULL) >> 56);
}
#endif
"""

#: The one exported symbol.  Buffer layouts (all little-endian uint64
#: words unless noted):
#:   FF1/FF0  (nff, W) in/out faulty flip-flop planes
#:   M        (W,) live-slot mask
#:   GPI/GPO/GNS/GN  per-frame good-machine bytes: [1-bits | 0-bits]
#:   FXF      per-node force flags (bit0 output force, bit1 pin force)
#:   OF1/OF0  (num_nodes, W) dense output-force planes
#:   PFLAG/PF1/PF0   per-operand-slot pin forces (see plan.op_base)
#:   DFLAG/DF1/DF0   per-flip-flop D-pin forces
#:   DET      (frames, W) out, zeroed by caller
#:   PROP     (frames,) out, int64 propagation popcounts
#: Returns the summed faulty-event count (0 unless GN is non-NULL).
_SIGNATURE = (
    "long long ck_run_group("
    "unsigned long long *FF1, unsigned long long *FF0, "
    "const unsigned long long *M, long long W, long long F, "
    "const unsigned char *GPI, const unsigned char *GPO, "
    "const unsigned char *GNS, const unsigned char *GN, "
    "const unsigned char *FXF, "
    "const unsigned long long *OF1, const unsigned long long *OF0, "
    "const unsigned char *PFLAG, "
    "const unsigned long long *PF1, const unsigned long long *PF0, "
    "const unsigned char *DFLAG, "
    "const unsigned long long *DF1, const unsigned long long *DF0, "
    "unsigned long long *DET, long long *PROP)"
)


def _c_gate_exprs(opcode: int, ones: List[str], zeros: List[str],
                  tmp: str) -> Tuple[List[str], str, str]:
    """Pre-invert (v1, v0) C expressions for one gate over named locals.

    Mirrors :func:`repro.sim.codegen._gate_exprs`, including the XOR
    left-to-right pairwise fold (``tmp`` prefixes the fold temporaries
    so nested scopes never collide).
    """
    if opcode == OP_AND:
        return [], " & ".join(ones), " | ".join(zeros)
    if opcode == OP_OR:
        return [], " | ".join(ones), " & ".join(zeros)
    if opcode == OP_COPY:
        return [], ones[0], zeros[0]
    x1, x0 = ones[0], zeros[0]
    setup: List[str] = []
    for s, (y1, y0) in enumerate(zip(ones[1:-1], zeros[1:-1])):
        t1, t0 = f"{tmp}{s}_1", f"{tmp}{s}_0"
        setup.append(
            f"u64 {t1} = ({x1} & {y0}) | ({x0} & {y1}); "
            f"u64 {t0} = ({x1} & {y1}) | ({x0} & {y0});"
        )
        x1, x0 = t1, t0
    y1, y0 = ones[-1], zeros[-1]
    return (
        setup,
        f"({x1} & {y0}) | ({x0} & {y1})",
        f"({x1} & {y1}) | ({x0} & {y0})",
    )


def generate_c_source(compiled: CompiledCircuit) -> str:
    """The complete C translation unit for one circuit's group runner."""
    n = compiled.num_nodes
    written = {instr[0] for instr in compiled.program}
    pi_ids = list(compiled.pi_ids)
    po_ids = list(compiled.po_ids)
    ff_ids = list(compiled.ff_ids)
    ffd_ids = list(compiled.ff_d_ids)
    pi_index = {node: j for j, node in enumerate(pi_ids)}
    ff_index = {node: k for k, node in enumerate(ff_ids)}
    npi, npo, nff = len(pi_ids), len(po_ids), len(ffd_ids)

    L: List[str] = [
        f"/* repro ckernel v{CKERNEL_VERSION}: "
        f"{compiled.circuit.name or 'circuit'} "
        f"({n} nodes, {len(compiled.program)} gates) */",
        _PROLOGUE,
        _SIGNATURE + " {",
        "    i64 events = 0;",
        "    for (i64 t = 0; t < F; ++t) {",
        f"        const u8 *gpi1 = GPI + t * {2 * npi}; "
        f"const u8 *gpi0 = gpi1 + {npi};",
        f"        const u8 *gpo1 = GPO + t * {2 * npo}; "
        f"const u8 *gpo0 = gpo1 + {npo};",
        f"        const u8 *gns1 = GNS + t * {2 * nff}; "
        f"const u8 *gns0 = gns1 + {nff};",
        f"        const u8 *gn1 = GN ? GN + t * {2 * n} : 0; "
        f"const u8 *gn0 = gn1 ? gn1 + {n} : 0;",
        "        u64 *det = DET + t * W;",
        "        i64 prop = 0;",
        "        for (i64 i = 0; i < W; ++i) {",
        "            const u64 m = M[i];",
    ]
    body = "            "

    def out_force(node: int, a: str, b: str) -> List[str]:
        return [
            body + f"if (FXF[{node}] & 1) {{ "
            f"const u64 q1 = OF1[(i64){node} * W + i], "
            f"q0 = OF0[(i64){node} * W + i]; "
            f"{a} = ({a} | q1) & ~q0; {b} = ({b} & ~q1) | q0; }}"
        ]

    # Loads: every node the program does not write.  Primary inputs are
    # good-value broadcasts, flip-flops read the captured planes,
    # anything else (isolated nodes) is X; output forces (PI stems and
    # stuck-Q faults, pre-merged into OF by the packer) apply at load,
    # so every reader — gates, detection, capture — sees them.
    for node in range(n):
        if node in written:
            continue
        if node in pi_index:
            j = pi_index[node]
            L.append(body + f"u64 a{node} = ((u64)0 - (u64)gpi1[{j}]) & m; "
                            f"u64 b{node} = ((u64)0 - (u64)gpi0[{j}]) & m;")
            L.extend(out_force(node, f"a{node}", f"b{node}"))
        elif node in ff_index:
            k = ff_index[node]
            L.append(body + f"u64 a{node} = FF1[(i64){k} * W + i]; "
                            f"u64 b{node} = FF0[(i64){k} * W + i];")
            L.extend(out_force(node, f"a{node}", f"b{node}"))
        else:
            L.append(body + f"u64 a{node} = 0; u64 b{node} = 0;")

    # Gates, straight-line in (levelized) program order.  The unforced
    # branch is the pure expression; the forced branch folds per-pin
    # forces into fresh operand locals, then the output force — the
    # exact combined form of the interpreter's forced path.
    op_base = 0
    for out, opcode, invert, fanins in compiled.program:
        ones = [f"a{f}" for f in fanins]
        zeros = [f"b{f}" for f in fanins]
        setup, e1, e0 = _c_gate_exprs(opcode, ones, zeros, f"t{out}_")
        if invert:
            e1, e0 = e0, e1
        L.append(body + f"u64 a{out}, b{out};")
        L.append(body + f"if (!FXF[{out}]) {{")
        for stmt in setup:
            L.append(body + "    " + stmt)
        L.append(body + f"    a{out} = {e1}; b{out} = {e0};")
        L.append(body + "} else {")
        fones, fzeros = [], []
        for pin, (one, zero) in enumerate(zip(ones, zeros)):
            slot = op_base + pin
            L.append(body + f"    u64 p{out}_{pin}a = {one}, "
                            f"p{out}_{pin}b = {zero};")
            L.append(body + f"    if (PFLAG[{slot}]) {{ "
                     f"const u64 q1 = PF1[(i64){slot} * W + i], "
                     f"q0 = PF0[(i64){slot} * W + i]; "
                     f"p{out}_{pin}a = (p{out}_{pin}a | q1) & ~q0; "
                     f"p{out}_{pin}b = (p{out}_{pin}b & ~q1) | q0; }}")
            fones.append(f"p{out}_{pin}a")
            fzeros.append(f"p{out}_{pin}b")
        fsetup, fe1, fe0 = _c_gate_exprs(opcode, fones, fzeros, f"u{out}_")
        if invert:
            fe1, fe0 = fe0, fe1
        for stmt in fsetup:
            L.append(body + "    " + stmt)
        L.append(body + f"    a{out} = {fe1}; b{out} = {fe0};")
        for ln in out_force(out, f"a{out}", f"b{out}"):
            L.append(body + "    " + ln[len(body):])
        L.append(body + "}")
        op_base += len(fanins)

    # Phase-3 faulty events: per-node XOR against the broadcast good
    # value, popcounted.  Only when the caller passes good node planes.
    L.append(body + "if (gn1) {")
    for node in range(n):
        L.append(body + f"    events += POPC((a{node} ^ "
                 f"(((u64)0 - (u64)gn1[{node}]) & m)) | "
                 f"(b{node} ^ (((u64)0 - (u64)gn0[{node}]) & m)));")
    L.append(body + "}")

    # Detection: where the good output is definite, any definite-and-
    # different faulty bit detects (good planes are disjoint, so the
    # two masked reads reproduce the interpreter's if/elif).
    L.append(body + "u64 fd = 0;")
    for j, po in enumerate(po_ids):
        L.append(body + f"fd |= ((u64)0 - (u64)gpo1[{j}]) & b{po};")
        L.append(body + f"fd |= ((u64)0 - (u64)gpo0[{j}]) & a{po};")
    L.append(body + "det[i] = fd;")

    # Capture: D-pin forces fold in, the planes persist for the next
    # frame, and definite divergence from the good next state counts
    # toward propagation.
    L.append(body + "u64 pw = 0;")
    for k, d in enumerate(ffd_ids):
        L.append(body + f"u64 c{k}_1 = a{d}, c{k}_0 = b{d};")
        L.append(body + f"if (DFLAG[{k}]) {{ "
                 f"const u64 q1 = DF1[(i64){k} * W + i], "
                 f"q0 = DF0[(i64){k} * W + i]; "
                 f"c{k}_1 = (c{k}_1 | q1) & ~q0; "
                 f"c{k}_0 = (c{k}_0 & ~q1) | q0; }}")
        L.append(body + f"FF1[(i64){k} * W + i] = c{k}_1; "
                 f"FF0[(i64){k} * W + i] = c{k}_0;")
        L.append(body + f"pw |= ((u64)0 - (u64)gns1[{k}]) & c{k}_0;")
        L.append(body + f"pw |= ((u64)0 - (u64)gns0[{k}]) & c{k}_1;")
    L.append(body + "prop += POPC(pw);")
    L.append("        }")
    L.append("        PROP[t] = prop;")
    L.append("    }")
    L.append("    return events;")
    L.append("}")
    return "\n".join(L) + "\n"


# ----------------------------------------------------------------------
# Compile, cache, load
# ----------------------------------------------------------------------


def source_digest(source: str) -> str:
    """Cache key: hash of the generated source + kernel version."""
    text = f"ckernel-v{CKERNEL_VERSION}\n{source}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


def artifact_path(digest: str) -> str:
    return os.path.join(cache_dir(),
                        f"ck-v{CKERNEL_VERSION}-{digest}.so")


def _compile_so(source: str, digest: str, collector) -> str:
    """Compile the source into the cache dir; returns the ``.so`` path."""
    cc = _find_cc()
    if cc is None:
        raise RuntimeError(
            f"no C compiler found (searched cc/gcc/clang on PATH; "
            f"set ${CC_ENV} to override)"
        )
    cdir = cache_dir()
    os.makedirs(cdir, exist_ok=True)
    so_path = artifact_path(digest)
    c_path = so_path[:-3] + ".c"
    tmp = f"{so_path}.tmp.{os.getpid()}"
    t0 = time.perf_counter()
    try:
        with open(c_path, "w", encoding="utf-8") as fh:
            fh.write(source)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, c_path],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"C kernel compile failed ({cc}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    if collector.enabled:
        collector.inc("c.compile.seconds", time.perf_counter() - t0)
        collector.inc("c.kernels.built")
    return so_path


class _LoadedLib:
    """One loaded artifact: cffi ABI mode preferred, ctypes fallback.

    ``call`` takes the raw buffers (bytes for const inputs, bytearray
    for in/out) and returns the faulty-event count.
    """

    __slots__ = ("path", "via", "_call")

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            import cffi

            ffi = cffi.FFI()
            ffi.cdef(_SIGNATURE + ";")
            lib = ffi.dlopen(path)
            fn = lib.ck_run_group
            fb = ffi.from_buffer
            null = ffi.NULL

            def call(ff1, ff0, m, w, frames, gpi, gpo, gns, gn,
                     fxf, of1, of0, pflag, pf1, pf0, dflag, df1, df0,
                     det, prop):
                return fn(
                    fb("unsigned long long[]", ff1),
                    fb("unsigned long long[]", ff0),
                    fb("unsigned long long[]", m), w, frames,
                    fb("unsigned char[]", gpi), fb("unsigned char[]", gpo),
                    fb("unsigned char[]", gns),
                    null if gn is None else fb("unsigned char[]", gn),
                    fb("unsigned char[]", fxf),
                    fb("unsigned long long[]", of1),
                    fb("unsigned long long[]", of0),
                    fb("unsigned char[]", pflag),
                    fb("unsigned long long[]", pf1),
                    fb("unsigned long long[]", pf0),
                    fb("unsigned char[]", dflag),
                    fb("unsigned long long[]", df1),
                    fb("unsigned long long[]", df0),
                    fb("unsigned long long[]", det),
                    fb("long long[]", prop),
                )

            self.via = "cffi"
        except ImportError:
            import ctypes

            lib = ctypes.CDLL(path)
            fn = lib.ck_run_group
            fn.restype = ctypes.c_longlong
            c_longlong = ctypes.c_longlong
            c_char = ctypes.c_char

            def mut(buf):
                return (c_char * len(buf)).from_buffer(buf)

            def call(ff1, ff0, m, w, frames, gpi, gpo, gns, gn,
                     fxf, of1, of0, pflag, pf1, pf0, dflag, df1, df0,
                     det, prop):
                return fn(
                    mut(ff1), mut(ff0), m, c_longlong(w), c_longlong(frames),
                    gpi, gpo, gns, gn, fxf, of1, of0,
                    pflag, pf1, pf0, dflag, df1, df0,
                    mut(det), mut(prop),
                )

            self.via = "ctypes"
        self._call = call

    def call(self, *args):
        return self._call(*args)


def preload_artifact(digest: str, path: str) -> None:
    """Register a parent-shipped compiled artifact (pool workers).

    The worker's next :func:`build` for the matching circuit loads
    ``path`` directly; an unusable path just falls through to the disk
    cache / local recompile.
    """
    _PRELOADED[digest] = path


def shipping_payload(compiled: CompiledCircuit) -> Optional[Tuple[str, str]]:
    """``(digest, artifact path)`` for an already-built circuit kernel,
    for :func:`repro.parallel.worker.init_worker` to ship to workers."""
    entry = _PLAN_CACHE.get(id(compiled))
    if entry is not None and entry[0]() is compiled:
        plan = entry[1]
        return plan.digest, plan.lib.path
    return None


def _load_or_compile(source: str, digest: str, collector) -> _LoadedLib:
    """Resolve the compiled artifact: shipped path, disk cache, compile."""
    shipped = _PRELOADED.get(digest)
    if shipped:
        try:
            lib = _LoadedLib(shipped)
            if collector.enabled:
                collector.inc("c.cache.hits")
            return lib
        except OSError:
            pass  # recompile-in-worker fallback
    so_path = artifact_path(digest)
    if os.path.exists(so_path):
        try:
            lib = _LoadedLib(so_path)
            if collector.enabled:
                collector.inc("c.cache.hits")
            return lib
        except OSError:
            pass  # stale/corrupt artifact: recompile over it
    if collector.enabled:
        collector.inc("c.cache.misses")
    return _LoadedLib(_compile_so(source, digest, collector))


# ----------------------------------------------------------------------
# Plan: per-circuit compiled function + marshaling metadata
# ----------------------------------------------------------------------


class _Plan:
    """Everything derived from one compiled circuit."""

    __slots__ = (
        "num_nodes", "pi_ids", "po_ids", "ff_ids", "ffd_ids",
        "written", "pi_set", "ff_set", "op_base", "total_ops", "arity",
        "digest", "lib", "_scratch",
    )


def _build_plan(compiled: CompiledCircuit, collector) -> _Plan:
    plan = _Plan()
    plan.num_nodes = compiled.num_nodes
    plan.pi_ids = list(compiled.pi_ids)
    plan.po_ids = list(compiled.po_ids)
    plan.ff_ids = list(compiled.ff_ids)
    plan.ffd_ids = list(compiled.ff_d_ids)
    plan.written = {instr[0] for instr in compiled.program}
    plan.pi_set = set(plan.pi_ids)
    plan.ff_set = set(plan.ff_ids)
    plan.op_base = {}
    base = 0
    plan.arity = {}
    for out, _opcode, _invert, fanins in compiled.program:
        plan.op_base[out] = base
        plan.arity[out] = len(fanins)
        base += len(fanins)
    plan.total_ops = base
    source = generate_c_source(compiled)
    plan.digest = source_digest(source)
    plan.lib = _load_or_compile(source, plan.digest, collector)
    plan._scratch = {}
    return plan


#: Plan cache: ``id(compiled) -> (weakref, plan)`` — same identity +
#: weakref-validation scheme as the codegen kernel cache.
_PLAN_CACHE: Dict[int, Tuple["weakref.ref", _Plan]] = {}


def clear_plan_cache() -> None:
    """Drop every cached C kernel plan (the on-disk artifacts stay)."""
    _PLAN_CACHE.clear()


def _plan_for(compiled: CompiledCircuit, collector) -> _Plan:
    key = id(compiled)
    entry = _PLAN_CACHE.get(key)
    if entry is not None and entry[0]() is compiled:
        return entry[1]
    plan = _build_plan(compiled, collector)
    ref = weakref.ref(compiled, lambda _r, _k=key: _PLAN_CACHE.pop(_k, None))
    _PLAN_CACHE[key] = (ref, plan)
    return plan


# ----------------------------------------------------------------------
# Injection packing (dense per-node force buffers)
# ----------------------------------------------------------------------


class _CInjection:
    """This kernel's ``make_injection`` product.

    ``tables`` is the dense per-node force table the generated codegen
    kernel consumes (bigint paths keep codegen speed); the packed C
    buffers are built lazily per word count and cached here — the
    simulator memoizes injections per committed-state epoch.
    """

    __slots__ = ("tables", "_packed")

    def __init__(self, tables) -> None:
        self.tables = tables
        self._packed: Dict[Tuple[int, int], tuple] = {}

    def packed(self, plan: _Plan, ff_out_forces, ff_pin_forces, w: int):
        key = (id(plan), w)
        p = self._packed.get(key)
        if p is None:
            p = _pack_injection(plan, self.tables,
                                ff_out_forces, ff_pin_forces, w)
            if len(self._packed) >= 8:
                self._packed.clear()
            self._packed[key] = p
        return p


def _pack_injection(plan: _Plan, tables, ff_out_forces, ff_pin_forces,
                    w: int) -> tuple:
    """Dense C buffers for one (injection, word count).

    Output forces land on every node the generated code *loads or
    writes* (program gates, primary inputs, flip-flop Q stems —
    applied at load, so all readers see them); forces on isolated
    nodes are dropped, exactly as the interpreter drops them.
    """
    nb = w * 8
    n = plan.num_nodes
    nff = len(plan.ffd_ids)
    fxf = bytearray(n)
    of1 = bytearray(n * nb)
    of0 = bytearray(n * nb)
    pflag = bytearray(max(plan.total_ops, 1))
    pf1 = bytearray(max(plan.total_ops, 1) * nb)
    pf0 = bytearray(max(plan.total_ops, 1) * nb)
    dflag = bytearray(max(nff, 1))
    df1 = bytearray(max(nff, 1) * nb)
    df0 = bytearray(max(nff, 1) * nb)

    def put(buf, idx, word):
        buf[idx * nb:(idx + 1) * nb] = word.to_bytes(nb, "little")

    for node, entry in enumerate(tables):
        if entry is None:
            continue
        pins, f1, f0 = entry
        if (f1 or f0) and (node in plan.written or node in plan.pi_set):
            fxf[node] |= 1
            put(of1, node, f1)
            put(of0, node, f0)
        if pins is not None and node in plan.op_base:
            base = plan.op_base[node]
            any_pin = False
            for pin, pf in enumerate(pins):
                if pf is None:
                    continue
                p1, p0 = pf
                if p1 or p0:
                    any_pin = True
                    pflag[base + pin] = 1
                    put(pf1, base + pin, p1)
                    put(pf0, base + pin, p0)
            if any_pin:
                fxf[node] |= 2
    for k, (f1, f0) in ff_out_forces.items():
        node = plan.ff_ids[k]
        off = node * nb
        p1 = int.from_bytes(of1[off:off + nb], "little") | f1
        p0 = int.from_bytes(of0[off:off + nb], "little") | f0
        fxf[node] |= 1
        put(of1, node, p1)
        put(of0, node, p0)
    for k, (f1, f0) in ff_pin_forces.items():
        dflag[k] = 1
        put(df1, k, f1)
        put(df0, k, f0)

    return (bytes(fxf), bytes(of1), bytes(of0), bytes(pflag),
            bytes(pf1), bytes(pf0), bytes(dflag), bytes(df1), bytes(df0))


def _pack_trace(plan: _Plan, trace) -> Tuple[bytes, bytes, bytes]:
    """Per-frame good-machine selector bytes: PI loads, PO detection
    values, next-state capture values (layout: [1-bits | 0-bits])."""
    pi_ids, po_ids = plan.pi_ids, plan.po_ids
    gpi = bytearray()
    gpo = bytearray()
    gns = bytearray()
    for f, (g1, g0) in enumerate(trace.node_planes):
        gpi.extend(g1[p] for p in pi_ids)
        gpi.extend(g0[p] for p in pi_ids)
        gpo.extend(g1[p] for p in po_ids)
        gpo.extend(g0[p] for p in po_ids)
        nxt = trace.ff_states[f]
        gns.extend(1 if v == 1 else 0 for v in nxt)
        gns.extend(1 if v == 0 else 0 for v in nxt)
    return bytes(gpi) or b"\0", bytes(gpo) or b"\0", bytes(gns) or b"\0"


def _pack_trace_nodes(plan: _Plan, trace) -> bytes:
    """All-node good planes per frame, for the faulty-event count."""
    gn = bytearray()
    for g1, g0 in trace.node_planes:
        gn.extend(g1)
        gn.extend(g0)
    return bytes(gn) or b"\0"


# ----------------------------------------------------------------------
# Fused group runner
# ----------------------------------------------------------------------


def _run_group_c(plan: _Plan, collector, sim, group, trace,
                 count_faulty_events: bool, inj):
    """Drop-in replacement for ``FaultSimulator._run_group`` on one wide
    group: one native call per candidate covering every frame;
    bit-identical 7-tuple result (docs/KERNELS.md)."""
    n_slots = len(group)
    w = (n_slots + 63) >> 6
    nb = w * 8
    mask = (1 << n_slots) - 1
    nff = len(plan.ffd_ids)
    _pi_forces, ff_out_forces, ff_pin_forces, injection = inj
    packed = injection.packed(plan, ff_out_forces, ff_pin_forces, w)
    frames = len(trace.node_planes)

    # Good-trace selector bytes: packed once per candidate, shared by
    # every group of that evaluation.
    tp = getattr(trace, "_ck_pack", None)
    if tp is None or tp[0] != id(plan):
        gpi, gpo, gns = _pack_trace(plan, trace)
        tp = [id(plan), gpi, gpo, gns, None]
        trace._ck_pack = tp
    gn = None
    if count_faulty_events:
        if tp[4] is None:
            tp[4] = _pack_trace_nodes(plan, trace)
        gn = tp[4]

    # Faulty present-state planes: committed good state broadcast, then
    # per-fault divergences.  Divergences only change on commit, so the
    # packed base is cached per (simulator, state epoch, group).
    cached = plan._scratch.get("ff_base")
    if (cached is not None and cached[0] is sim
            and cached[1] == sim.state_epoch and cached[2] is group
            and cached[3] == w):
        base1, base0 = cached[4], cached[5]
    else:
        ff1 = [0] * nff
        ff0 = [0] * nff
        for k in range(nff):
            value = sim.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot, fault_id in enumerate(group):
            div = sim.divergence.get(fault_id)
            if not div:
                continue
            bit = 1 << slot
            nbit = ~bit
            for k, value in div.items():
                ff1[k] &= nbit
                ff0[k] &= nbit
                if value == 1:
                    ff1[k] |= bit
                elif value == 0:
                    ff0[k] |= bit
        base1 = b"".join(x.to_bytes(nb, "little") for x in ff1) or bytes(8)
        base0 = b"".join(x.to_bytes(nb, "little") for x in ff0) or bytes(8)
        plan._scratch["ff_base"] = (sim, sim.state_epoch, group, w,
                                    base1, base0)

    ff1buf = bytearray(base1)
    ff0buf = bytearray(base0)
    det = bytearray(max(frames * nb, 8))
    prop = bytearray(max(frames * 8, 8))
    mbytes = mask.to_bytes(nb, "little")

    faulty_events = int(plan.lib.call(
        ff1buf, ff0buf, mbytes, w, frames,
        tp[1], tp[2], tp[3], gn, *packed, det, prop,
    ))

    # Detection bookkeeping, deferred: in the common no-detection case
    # this is one byte scan for the whole candidate.
    det_word = 0
    det_frame: Dict[int, int] = {}
    if frames and any(det[:frames * nb]):
        for frame in range(frames):
            fw = int.from_bytes(det[frame * nb:(frame + 1) * nb], "little")
            new = fw & ~det_word
            while new:
                low = new & -new
                det_frame[low.bit_length() - 1] = frame
                new ^= low
            det_word |= fw
    prop_per_frame = list(memoryview(prop)[:frames * 8].cast("q"))

    if collector.enabled:
        collector.inc("c.group.passes")
        collector.inc("c.group.slot_frames", n_slots * frames)
    prop_final = prop_per_frame[-1] if prop_per_frame else 0
    final_ff1 = [int.from_bytes(ff1buf[k * nb:(k + 1) * nb], "little")
                 for k in range(nff)]
    final_ff0 = [int.from_bytes(ff0buf[k * nb:(k + 1) * nb], "little")
                 for k in range(nff)]
    return (det_word, det_frame, prop_final, prop_per_frame, faulty_events,
            final_ff1, final_ff0)


# ----------------------------------------------------------------------
# Kernel assembly (called by repro.sim.codegen.kernel_for)
# ----------------------------------------------------------------------


def build(compiled: CompiledCircuit, requested: str, fns, collector):
    """Assemble the C :class:`~repro.sim.codegen.SimKernel`.

    ``fns`` are the already-built codegen functions: the good-machine
    and bigint injected passes delegate to them (bit-identical by the
    codegen contract, and faster for narrow words), while wide fault
    groups take the compiled native runner.  Raises when the artifact
    can neither be loaded nor compiled — the caller falls back to the
    interpreter.
    """
    from .codegen import SimKernel, make_force_tables

    plan = _plan_for(compiled, collector)
    num_nodes = compiled.num_nodes
    arity = plan.arity
    good = fns["good"]
    injected = fns["injected"]

    def make_injection(out_force: Dict, pin_force: Dict) -> _CInjection:
        return _CInjection(
            make_force_tables(num_nodes, out_force, pin_force, arity)
        )

    def eval_injection(v1, v0, mask, injection: _CInjection) -> None:
        injected(v1, v0, mask, injection.tables)

    def run_group(sim, group, trace, count_faulty_events, inj):
        return _run_group_c(plan, collector, sim, group, trace,
                            count_faulty_events, inj)

    return SimKernel(
        name="c",
        requested=requested,
        eval_fn=good,
        make_injection=make_injection,
        eval_injection=eval_injection,
        run_group=run_group,
        group_width=WIDE_GROUP_CAP,
    )
