"""Simulation substrate: compiled word-parallel and event-driven simulators.

Word-parallel simulation bottoms out in one of four bit-identical kernel
backends behind :func:`kernel_for` — ``interp`` (reference interpreter),
``codegen`` (generated straight-line Python, the default), ``numpy``
(vectorized plane kernel) and ``c`` (compiled C via cffi/ctypes) — see
docs/KERNELS.md.
"""

from .codegen import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    SimKernel,
    kernel_for,
    kernel_source,
    resolve_kernel_name,
)
from .compile import CompiledCircuit, compile_circuit, eval_program, eval_program_injected
from .events import EventFrameResult, EventSimulator
from .logic3 import FrameStats, GoodState, PatternSimulator, SerialSimulator, Vector
from .vcd import dump_vcd

__all__ = [
    "CompiledCircuit",
    "DEFAULT_KERNEL",
    "EventFrameResult",
    "EventSimulator",
    "FrameStats",
    "GoodState",
    "KERNEL_NAMES",
    "PatternSimulator",
    "SerialSimulator",
    "SimKernel",
    "Vector",
    "dump_vcd",
    "compile_circuit",
    "eval_program",
    "eval_program_injected",
    "kernel_for",
    "kernel_source",
    "resolve_kernel_name",
]
