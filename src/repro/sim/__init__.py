"""Simulation substrate: compiled word-parallel and event-driven simulators."""

from .compile import CompiledCircuit, compile_circuit, eval_program, eval_program_injected
from .events import EventFrameResult, EventSimulator
from .logic3 import FrameStats, GoodState, PatternSimulator, SerialSimulator, Vector
from .vcd import dump_vcd

__all__ = [
    "CompiledCircuit",
    "EventFrameResult",
    "EventSimulator",
    "FrameStats",
    "GoodState",
    "PatternSimulator",
    "SerialSimulator",
    "Vector",
    "dump_vcd",
    "compile_circuit",
    "eval_program",
    "eval_program_injected",
]
