"""Event-driven scalar three-valued simulator.

This is the *reference* simulator: simple enough to be obviously correct,
used by the test suite to cross-check the compiled word-parallel path,
and by anything that wants true event counts (gate evaluations triggered
by value changes, the quantity PROOFS tracks and the paper's phase-3
fitness uses as "circuit activity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit.gates import GateType, X, eval_gate_scalar
from ..circuit.netlist import Circuit
from .logic3 import GoodState, Vector


@dataclass
class EventFrameResult:
    """Observations from one event-driven time frame."""

    po_values: List[int]
    events: int              # gate evaluations scheduled by value changes
    changed_nodes: int       # nodes whose settled value differs from last frame


class EventSimulator:
    """Event-driven simulation of the fault-free machine, one slot.

    Values settle within a frame by propagating changes level by level
    (the circuit is acyclic between flip-flops, so each gate is evaluated
    at most once per frame when events arrive in level order).
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.values: List[int] = [X] * circuit.num_nodes
        self.ff_next: List[int] = [X] * circuit.num_dffs
        self._level_buckets: List[List[int]] = [
            [] for _ in range(circuit.max_level() + 1)
        ]
        self.total_events = 0

    def reset(self, state: Optional[GoodState] = None) -> None:
        """Reset to power-up (or a given flip-flop state)."""
        circuit = self.circuit
        self.values = [X] * circuit.num_nodes
        if state is None:
            state = GoodState.unknown(circuit.num_dffs)
        for k, ff in enumerate(circuit.dffs):
            self.values[ff] = state.ff_values[k]
        # The "captured" next state starts equal to the present state so
        # the first step() needn't special-case the clock edge.
        self.ff_next = [state.ff_values[k] for k in range(circuit.num_dffs)]
        self.total_events = 0

    def step(self, vector: Vector) -> EventFrameResult:
        """Clock one frame with ``vector`` on the primary inputs."""
        circuit = self.circuit
        if len(vector) != circuit.num_inputs:
            raise ValueError(
                f"vector has {len(vector)} bits, circuit has {circuit.num_inputs} PIs"
            )
        old_values = list(self.values)
        events = 0

        # Schedule initial events: changed PIs and updated FF outputs.
        scheduled = [False] * circuit.num_nodes
        for bucket in self._level_buckets:
            bucket.clear()

        def schedule_fanout(node_id: int) -> None:
            for succ in circuit.fanouts[node_id]:
                if circuit.node_types[succ].is_combinational and not scheduled[succ]:
                    scheduled[succ] = True
                    self._level_buckets[circuit.levels[succ]].append(succ)

        for j, pi in enumerate(circuit.inputs):
            if self.values[pi] != vector[j]:
                self.values[pi] = vector[j]
                schedule_fanout(pi)
        # Clock edge: FF present state <- captured next state.
        for k, ff in enumerate(circuit.dffs):
            if self.values[ff] != self.ff_next[k]:
                self.values[ff] = self.ff_next[k]
                schedule_fanout(ff)

        # Propagate in level order.
        for level_bucket in self._level_buckets:
            for node_id in level_bucket:
                scheduled[node_id] = False
                events += 1
                new_value = eval_gate_scalar(
                    self.circuit.node_types[node_id],
                    (self.values[f] for f in circuit.fanins[node_id]),
                )
                if new_value != self.values[node_id]:
                    self.values[node_id] = new_value
                    schedule_fanout(node_id)

        # Capture next state at the D inputs.
        for k, ff in enumerate(circuit.dffs):
            self.ff_next[k] = self.values[circuit.fanins[ff][0]]

        self.total_events += events
        changed = sum(
            1 for node_id in range(circuit.num_nodes)
            if self.values[node_id] != old_values[node_id]
        )
        return EventFrameResult(
            po_values=[self.values[po] for po in circuit.outputs],
            events=events,
            changed_nodes=changed,
        )

    def run_sequence(self, vectors: Sequence[Vector], state: Optional[GoodState] = None) -> List[List[int]]:
        """Reset and apply a sequence; return the PO trace."""
        self.reset(state)
        trace = []
        for vector in vectors:
            trace.append(self.step(vector).po_values)
        return trace

    @property
    def state(self) -> GoodState:
        """The flip-flop state the *next* step() will clock in.

        Matches :attr:`SerialSimulator.state` semantics so the two
        simulators can be cross-checked frame by frame.
        """
        return GoodState(list(self.ff_next))
