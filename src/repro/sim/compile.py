"""Compilation of a netlist into a flat word-parallel evaluation program.

Simulation is the hot path of the whole reproduction (DESIGN.md §6), so
instead of dispatching on :class:`~repro.circuit.gates.GateType` per gate
per frame, a circuit is compiled once into a list of small tuples
``(out_id, opcode, invert, fanin_ids)`` in levelized order.  The
evaluators in :mod:`repro.sim.logic3` and
:mod:`repro.faults.simulator` then run a tight loop over that program
using two bit-plane lists ``v1``/``v0`` (see :mod:`repro.circuit.gates`
for the encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

# Opcodes for the compiled program.
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_COPY = 3  # BUFF / NOT (invert flag distinguishes them)

_OPCODE_OF = {
    GateType.AND: (OP_AND, False),
    GateType.NAND: (OP_AND, True),
    GateType.OR: (OP_OR, False),
    GateType.NOR: (OP_OR, True),
    GateType.XOR: (OP_XOR, False),
    GateType.XNOR: (OP_XOR, True),
    GateType.BUFF: (OP_COPY, False),
    GateType.NOT: (OP_COPY, True),
}

Instruction = Tuple[int, int, bool, Tuple[int, ...]]


@dataclass(frozen=True)
class CompiledCircuit:
    """A circuit plus its flat evaluation program and index tables."""

    circuit: Circuit
    program: Tuple[Instruction, ...]
    pi_ids: Tuple[int, ...]
    po_ids: Tuple[int, ...]
    ff_ids: Tuple[int, ...]
    ff_d_ids: Tuple[int, ...]  # node driving each DFF's D input
    num_nodes: int

    @property
    def num_pis(self) -> int:
        """Primary input count."""
        return len(self.pi_ids)

    @property
    def num_pos(self) -> int:
        """Primary output count."""
        return len(self.po_ids)

    @property
    def num_ffs(self) -> int:
        """Flip-flop count."""
        return len(self.ff_ids)


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile a finalized circuit into its evaluation program."""
    program: List[Instruction] = []
    for node_id in circuit.topo_order:
        gate_type = circuit.node_types[node_id]
        opcode, invert = _OPCODE_OF[gate_type]
        program.append((node_id, opcode, invert, circuit.fanins[node_id]))
    return CompiledCircuit(
        circuit=circuit,
        program=tuple(program),
        pi_ids=tuple(circuit.inputs),
        po_ids=tuple(circuit.outputs),
        ff_ids=tuple(circuit.dffs),
        ff_d_ids=tuple(circuit.fanins[ff][0] for ff in circuit.dffs),
        num_nodes=circuit.num_nodes,
    )


def eval_program(
    program: Tuple[Instruction, ...],
    v1: List[int],
    v0: List[int],
    mask: int,
) -> None:
    """Evaluate the compiled program in place over the bit planes.

    ``v1[i]``/``v0[i]`` must hold the PI and FF (present state) values on
    entry; on exit every combinational node's planes are filled in.
    ``mask`` is the all-slots-active word.
    """
    for out, opcode, invert, fanins in program:
        if opcode == OP_AND:
            a1 = mask
            a0 = 0
            for f in fanins:
                a0 |= v0[f]
                a1 &= v1[f]
        elif opcode == OP_OR:
            a1 = 0
            a0 = mask
            for f in fanins:
                a1 |= v1[f]
                a0 &= v0[f]
        elif opcode == OP_XOR:
            f = fanins[0]
            a1, a0 = v1[f], v0[f]
            for f in fanins[1:]:
                b1, b0 = v1[f], v0[f]
                a1, a0 = (a1 & b0) | (a0 & b1), (a1 & b1) | (a0 & b0)
        else:  # OP_COPY
            f = fanins[0]
            a1, a0 = v1[f], v0[f]
        if invert:
            v1[out], v0[out] = a0, a1
        else:
            v1[out], v0[out] = a1, a0


def _force(b1: int, b0: int, f1: int, f0: int) -> Tuple[int, int]:
    """Overwrite slots of a (v1, v0) pair with stuck values."""
    if f1:
        b1 |= f1
        b0 &= ~f1
    if f0:
        b0 |= f0
        b1 &= ~f0
    return b1, b0


def eval_program_injected(
    program: Tuple[Instruction, ...],
    v1: List[int],
    v0: List[int],
    mask: int,
    out_force: dict,
    pin_force: dict,
) -> None:
    """Evaluate with per-slot stuck-at injection (the fault-group path).

    ``out_force[node] -> (force1_word, force0_word)`` forces slots of a
    node's *output*; ``pin_force[gate] -> [(pin, force1, force0), ...]``
    forces specific fanin pins of a gate.  Forcing wins over the computed
    value; the fault grouper guarantees at most one fault per slot, so
    the forced-to-1 and forced-to-0 slot sets are disjoint.  Gates
    without injections take a fast path identical to
    :func:`eval_program`.
    """
    for out, opcode, invert, fanins in program:
        pins = pin_force.get(out)
        if pins is None:
            # Fast path: no pin faults on this gate.
            if opcode == OP_AND:
                a1 = mask
                a0 = 0
                for f in fanins:
                    a0 |= v0[f]
                    a1 &= v1[f]
            elif opcode == OP_OR:
                a1 = 0
                a0 = mask
                for f in fanins:
                    a1 |= v1[f]
                    a0 &= v0[f]
            elif opcode == OP_XOR:
                f = fanins[0]
                a1, a0 = v1[f], v0[f]
                for f in fanins[1:]:
                    b1, b0 = v1[f], v0[f]
                    a1, a0 = (a1 & b0) | (a0 & b1), (a1 & b1) | (a0 & b0)
            else:  # OP_COPY
                f = fanins[0]
                a1, a0 = v1[f], v0[f]
        else:
            forced = {pin: (f1, f0) for pin, f1, f0 in pins}
            values = []
            for pin, f in enumerate(fanins):
                b1, b0 = v1[f], v0[f]
                if pin in forced:
                    b1, b0 = _force(b1, b0, *forced[pin])
                values.append((b1, b0))
            if opcode == OP_AND:
                a1 = mask
                a0 = 0
                for b1, b0 in values:
                    a0 |= b0
                    a1 &= b1
            elif opcode == OP_OR:
                a1 = 0
                a0 = mask
                for b1, b0 in values:
                    a1 |= b1
                    a0 &= b0
            elif opcode == OP_XOR:
                a1, a0 = values[0]
                for b1, b0 in values[1:]:
                    a1, a0 = (a1 & b0) | (a0 & b1), (a1 & b1) | (a0 & b0)
            else:  # OP_COPY
                a1, a0 = values[0]
        if invert:
            a1, a0 = a0, a1
        if out in out_force:
            a1, a0 = _force(a1, a0, *out_force[out])
        v1[out], v0[out] = a1, a0
