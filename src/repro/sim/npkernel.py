"""Vectorized numpy simulation kernel: whole levelized ranks per ufunc call.

The ``codegen`` backend removed per-gate *dispatch* but still executes
one Python bytecode expression per gate per frame.  This backend removes
the per-gate Python work too: node bit planes are packed into one
contiguous ``uint64`` array and every levelized rank of the circuit is
evaluated with three vectorized ufunc calls, so the per-frame cost
scales with the number of *ranks* (circuit depth), not the number of
gates.  See docs/KERNELS.md for the full kernel-author contract this
module implements.

Data layout
-----------

All faulty-machine state for one fused fault group lives in one
``uint64`` array ``V`` of shape ``(rows, w)`` where ``w = ceil(slots /
64)`` words cover the group's bit slots and each node owns two rows
(its 1-plane ``v1`` and 0-plane ``v0``).  Rows are *permuted* so that
every class of row the per-frame driver touches is contiguous:

    [PI v1][PI v0][FF v1][FF v0][floating v1/v0][MASK][ZERO]
    [rank 1: AND-side results | OR-side results | XOR results]
    [rank 2: ...] ...

``plan.row1[node]`` / ``plan.row0[node]`` map a node id to its two
rows.  Primary-input and present-state loads are then single slice
assignments, and — the point of the permutation — each rank's results
are written *in place* into contiguous ``V`` views: no scatter pass
and no result buffer.

Each rank's AND/OR/COPY gates merge into one gather via plane-swap
duality (an OR over ``(v1, v0)`` is an AND over ``(v0, v1)``; the
``invert`` flag just swaps which result row is registered as the
node's ``v1``).  Gates are padded to the rank's widest arity ``k``
with identity operands so the gathered block reshapes to ``(k, g,
w)`` columns and the whole rank reduces with ``k - 1`` plain in-place
ufunc folds per side; ranks wider than :data:`FOLD_MAX_ARITY` fall
back to ``ufunc.reduceat`` over an unpadded gather.  XOR gates use a
four-product gather layout (``[a1|a0]`` accumulator seed plus one
``[c0|c1|c1|c0]`` block per fold step, pads appended *after* the real
operands so the interpreter's left-to-right pairwise fold is
reproduced exactly): each step is one stacked AND against the
broadcast accumulator and one paired OR, regardless of gate count.

Injection: read-time force folding
----------------------------------

The bigint paths apply a fault's output force when the faulty node is
*written*.  Doing that here would cost extra passes per rank, so ``V``
instead always holds **unforced** values and forces are folded into
every place a node is *read*:

* gate operands — per-rank dense force pairs applied to the gathered
  operand block with two in-place ufunc calls (``(G | A) & ~B``); the
  per-pin force of the reading gate and the output force of the read
  node merge into a single pair because the fault grouper gives every
  fault its own bit slot (force words of different faults are disjoint);
* primary-output detection reads — per-PO patched reads;
* flip-flop capture — a dense ``(num_ffs, w)`` fixup merging the D-pin
  force with the D-source node's output force;
* the phase-3 faulty-event count — a lazy dense ``(N, w)`` fixup.

This reproduces the interpreter bit for bit (asserted by the tier-1
equivalence suite) while keeping unforced ranks at three ufunc calls.

Caching and fallback
--------------------

Plans are built once per circuit per process (``numpy.plan.*``
counters) and cached like the codegen kernels; packed per-group force
arrays are cached on the injection object, which the simulator already
memoizes per committed-state epoch.  :func:`build` raises when numpy
is missing or too old (``bitwise_count`` requires numpy >= 2.0) and
``kernel_for`` then falls back to the interpreter with a
``numpy.fallbacks`` counter — requesting ``numpy`` is always safe.
The probe imports numpy freshly on every call (no negative caching),
so environments that appear mid-process are picked up.
"""

from __future__ import annotations

import time
import weakref
from typing import Dict, List, Tuple

from .compile import OP_OR, OP_XOR, CompiledCircuit

#: Widest fused fault group :class:`~repro.faults.FaultSimulator` will
#: build when this kernel is active (slots; multiple groups above it).
WIDE_GROUP_CAP = 4096


def _numpy():
    """Import numpy and gate on the APIs this kernel needs.

    Raises ``ImportError`` when numpy is absent or lacks
    ``bitwise_count`` (added in numpy 2.0).  Deliberately re-imports on
    every call instead of caching a failure, so tests can shadow the
    module and freshly-installed environments are picked up.
    """
    import numpy as np

    if not hasattr(np, "bitwise_count"):
        raise ImportError("numpy >= 2.0 (with bitwise_count) is required")
    return np


def available() -> bool:
    """Whether the numpy backend can run in this process."""
    try:
        _numpy()
    except Exception:
        return False
    return True


# ----------------------------------------------------------------------
# Plan: per-circuit rank schedule over permuted rows
# ----------------------------------------------------------------------


#: AO ranks whose widest gate has at most this many fanins use the
#: padded column-fold evaluation; wider ranks fall back to ``reduceat``
#: (far more per-segment overhead, but call count independent of arity).
FOLD_MAX_ARITY = 8


class _AOGroup:
    """One rank's merged AND/OR/COPY gates.

    Every gate is padded to the rank's widest arity ``k`` with identity
    operands (MASK on the AND-reduced side, ZERO on the OR side), so
    ``gather`` holds ``2*g*k`` source rows — ``g*k`` AND-side operands
    (gate-major), then their OR-side mirrors — and the reduction is
    ``k - 1`` plain ufunc folds per side over the gathered columns.
    ``starts`` serves the ``reduceat`` fallback for ranks wider than
    :data:`FOLD_MAX_ARITY` (there the gather is unpadded and ``P`` is
    the real operand count).  ``base``/``g`` locate the rank's
    contiguous result rows in ``V``; ``ops`` keeps ``(out, fanins, sel,
    swap, pos)`` per gate for the injection packer.
    """

    __slots__ = ("gather", "starts", "base", "P", "g", "k", "ops")


class _XorGroup:
    """One rank's XOR gates, padded to a common arity ``k`` with
    identity operands (``v1=0, v0=mask``, appended after the real
    operands so the interpreter's left-to-right pairwise fold is
    reproduced exactly).  The gather uses a 4-product layout: a
    ``[a1 | a0]`` accumulator seed, then per fold step a
    ``[c0 | c1 | c1 | c0]`` block (gate-major within each), so each
    step is ONE stacked AND against the broadcast accumulator plus ONE
    paired OR — ``P`` is the full gather length ``2g + 4g(k-1)``.
    """

    __slots__ = ("gather", "base", "P", "k", "g", "ops")


class _Plan:
    """Everything derived from one compiled circuit (width-independent)."""

    __slots__ = (
        "num_nodes", "rows", "mask_row", "zero_row", "ranks",
        "written", "pi_set", "pi_ids", "po_ids", "ff_ids", "ffd_ids",
        "row1", "row0", "node_rows1", "node_rows0",
        "pi1", "pi0", "ff1", "ff0", "float_lo", "float_hi",
        "po_read_rows", "ffd_rows_all",
        "_scratch",
    )


def _build_plan(np, compiled: CompiledCircuit, collector) -> _Plan:
    t0 = time.perf_counter()
    intp = np.intp
    n = compiled.num_nodes
    rank_of = [0] * n
    by_rank: Dict[int, list] = {}
    for out, opcode, invert, fanins in compiled.program:
        r = 1 + max(rank_of[f] for f in fanins)
        rank_of[out] = r
        by_rank.setdefault(r, []).append((out, opcode, invert, fanins))

    plan = _Plan()
    plan.num_nodes = n
    plan.written = {instr[0] for instr in compiled.program}
    plan.pi_set = set(compiled.pi_ids)
    plan.pi_ids = list(compiled.pi_ids)
    plan.po_ids = list(compiled.po_ids)
    plan.ff_ids = list(compiled.ff_ids)
    plan.ffd_ids = list(compiled.ff_d_ids)
    ff_set = set(compiled.ff_ids)

    # Row permutation: static blocks first, then one contiguous result
    # block per rank so reduceat can write into V views directly.
    row1 = [-1] * n
    row0 = [-1] * n
    pos = 0
    plan.pi1 = pos
    for node in plan.pi_ids:
        row1[node] = pos
        pos += 1
    plan.pi0 = pos
    for node in plan.pi_ids:
        row0[node] = pos
        pos += 1
    plan.ff1 = pos
    for node in plan.ff_ids:
        row1[node] = pos
        pos += 1
    plan.ff0 = pos
    for node in plan.ff_ids:
        row0[node] = pos
        pos += 1
    plan.float_lo = pos
    for node in range(n):
        if (node not in plan.written and node not in plan.pi_set
                and node not in ff_set):
            row1[node] = pos
            row0[node] = pos + 1
            pos += 2
    plan.float_hi = pos
    plan.mask_row = pos
    plan.zero_row = pos + 1
    pos += 2

    plan.ranks = []
    for r in range(1, (max(by_rank) if by_rank else 0) + 1):
        gates = by_rank.get(r, [])
        ao_gates = [g for g in gates if g[1] != OP_XOR]
        xor_gates = [g for g in gates if g[1] == OP_XOR]
        ao = None
        if ao_gates:
            g = len(ao_gates)
            k = max(len(gt[3]) for gt in ao_gates)
            fold = k <= FOLD_MAX_ARITY
            base = pos
            ops = []
            p = 0
            starts: List[int] = []
            for j, (out, opcode, invert, fanins) in enumerate(ao_gates):
                # Plane-swap duality: an OR gate is an AND gate reading
                # the 0-planes; ``invert`` swaps which result row is
                # registered as the node's 1-plane.
                sel = 1 if opcode == OP_OR else 0
                swap = sel ^ (1 if invert else 0)
                starts.append(p)
                ops.append((out, tuple(fanins), sel, swap, j * k if fold else p))
                p += len(fanins)
                if swap:
                    row0[out] = base + j
                    row1[out] = base + g + j
                else:
                    row1[out] = base + j
                    row0[out] = base + g + j
            ao = _AOGroup()
            ao.P = g * k if fold else p
            ao.g = g
            ao.k = k if fold else 0
            ao.base = base
            ao.starts = None if fold else np.asarray(starts, dtype=intp)
            ao.ops = ops
            pos += 2 * g
        xo = None
        if xor_gates:
            g = len(xor_gates)
            k = max(len(gt[3]) for gt in xor_gates)
            base = pos
            ops = []
            for j, (out, opcode, invert, fanins) in enumerate(xor_gates):
                swap = 1 if invert else 0
                ops.append((out, tuple(fanins), 0, swap, j))
                if swap:
                    row0[out] = base + j
                    row1[out] = base + g + j
                else:
                    row1[out] = base + j
                    row0[out] = base + g + j
            xo = _XorGroup()
            xo.g = g
            xo.k = k
            xo.P = 2 * g + 4 * g * (k - 1)
            xo.base = base
            xo.ops = ops
            pos += 2 * g
        plan.ranks.append((ao, xo))
    plan.rows = pos

    # Gather indices (need the complete row map, so second pass).
    for ao, xo in plan.ranks:
        if ao is not None:
            gather1: List[int] = []
            gather0: List[int] = []
            for _out, fanins, sel, _swap, _pos in ao.ops:
                for f in fanins:
                    a, b = (row1[f], row0[f]) if sel == 0 else (row0[f], row1[f])
                    gather1.append(a)
                    gather0.append(b)
                if ao.k:
                    # Identity pads: all-ones on the AND-reduced side,
                    # all-zeros on the OR side.
                    npad = ao.k - len(fanins)
                    gather1.extend([plan.mask_row] * npad)
                    gather0.extend([plan.zero_row] * npad)
            ao.gather = np.asarray(gather1 + gather0, dtype=intp)
        if xo is not None:
            # 4-product layout: first the accumulator seed [a1 | a0],
            # then per fold step s a block [c0 | c1 | c1 | c0] so one
            # stacked AND against the broadcast accumulator yields all
            # four products of the 3-valued XOR and one paired OR
            # reduces them (identity pads: v1=0, v0=mask, appended
            # after the real operands to reproduce the interpreter's
            # left-to-right pairwise fold).
            idx: List[int] = [row1[fanins[0]]
                              for _o, fanins, _s, _w, _p in xo.ops]
            idx += [row0[fanins[0]] for _o, fanins, _s, _w, _p in xo.ops]
            for s in range(1, xo.k):
                r1s = []
                r0s = []
                for _out, fanins, _sel, _swap, _pos in xo.ops:
                    if s < len(fanins):
                        r1s.append(row1[fanins[s]])
                        r0s.append(row0[fanins[s]])
                    else:
                        r1s.append(plan.zero_row)
                        r0s.append(plan.mask_row)
                idx += r0s + r1s + r1s + r0s
            xo.gather = np.asarray(idx, dtype=intp)

    plan.row1 = row1
    plan.row0 = row0
    plan.node_rows1 = np.asarray(row1, dtype=intp)
    plan.node_rows0 = np.asarray(row0, dtype=intp)
    # Detection reads the 0-plane where the good value is 1 and the
    # 1-plane where it is 0: first half of po_read_rows is every PO's
    # 0-plane row, second half the 1-plane row, selected per frame by a
    # good-value multiplier.  Capture gathers every flip-flop D-source
    # 1-plane then 0-plane in one take.
    plan.po_read_rows = np.asarray(
        [row0[po] for po in plan.po_ids] + [row1[po] for po in plan.po_ids],
        dtype=intp,
    )
    plan.ffd_rows_all = np.asarray(
        [row1[d] for d in plan.ffd_ids] + [row0[d] for d in plan.ffd_ids],
        dtype=intp,
    )
    plan._scratch = {}
    if collector.enabled:
        collector.inc("numpy.plan.built")
        collector.inc("numpy.plan.build.seconds", time.perf_counter() - t0)
        collector.inc("numpy.plan.ranks", len(plan.ranks))
    return plan


#: Plan cache: ``id(compiled) -> (weakref, plan)`` — same identity +
#: weakref-validation scheme as the codegen kernel cache.
_PLAN_CACHE: Dict[int, Tuple["weakref.ref", _Plan]] = {}


def clear_plan_cache() -> None:
    """Drop every cached numpy plan (tests / memory pressure)."""
    _PLAN_CACHE.clear()


def _plan_for(np, compiled: CompiledCircuit, collector) -> _Plan:
    key = id(compiled)
    entry = _PLAN_CACHE.get(key)
    if entry is not None and entry[0]() is compiled:
        return entry[1]
    plan = _build_plan(np, compiled, collector)
    ref = weakref.ref(compiled, lambda _r, _k=key: _PLAN_CACHE.pop(_k, None))
    _PLAN_CACHE[key] = (ref, plan)
    return plan


def _compile_pass(np, plan: _Plan, V):
    """Generate the per-frame combinational pass as straight-line code.

    The rank loop is fully unrolled into an ``exec``-compiled closure
    (the same trick the codegen backend uses for bigints): every
    gather index array, operand buffer, pre-sliced column view and
    result view is bound once as a closure constant, and every ufunc
    call uses the positional ``out`` form, so per frame nothing runs
    but the C calls themselves plus one branch per rank for the
    injection's force pairs.  Returns ``_npass(RF)`` where ``RF`` is
    ``_Packed.rank_forces``.
    """
    u64 = np.uint64
    names: List[str] = []
    vals: List[object] = []

    def const(val, stem: str) -> str:
        name = f"{stem}{len(names)}"
        names.append(name)
        vals.append(val)
        return name

    lines: List[str] = []
    need_reduceat = False
    for ri, (ao, xo) in enumerate(plan.ranks):
        if ao is None and xo is None:
            continue
        # One gather and one force pair cover the rank's AO block and
        # XOR block together: G = [AO ones | AO zeros | XOR ones |
        # XOR zeros].  Offsets here must match _pack_injection.
        Pa = 2 * ao.P if ao is not None else 0
        Px = xo.P if xo is not None else 0
        parts = [grp.gather for grp in (ao, xo) if grp is not None]
        gather = parts[0] if len(parts) == 1 else np.concatenate(parts)
        G = np.empty((Pa + Px, V.shape[1]), dtype=u64)
        gn = const(gather, "g")
        Gn = const(G, "G")
        lines.append(f"take({gn}, 0, {Gn}, 'clip')")
        lines.append(f"rf = RF[{ri}]")
        lines.append("if rf is not None:")
        lines.append(f"    bor({Gn}, rf[0], {Gn})")
        lines.append(f"    band({Gn}, rf[1], {Gn})")
        if ao is not None:
            g = ao.g
            o1 = const(V[ao.base:ao.base + g], "o")
            o0 = const(V[ao.base + g:ao.base + 2 * g], "o")
            if ao.k:
                C1 = G[:ao.P].reshape(g, ao.k, -1)
                C0 = G[ao.P:Pa].reshape(g, ao.k, -1)
                c1 = [const(C1[:, j], "c") for j in range(ao.k)]
                c0 = [const(C0[:, j], "c") for j in range(ao.k)]
                if ao.k == 1:
                    # P == g, so [ones | zeros] is one contiguous copy.
                    lines.append(f"copyto("
                                 f"{const(V[ao.base:ao.base + 2 * g], 'o')}, "
                                 f"{const(G[:2 * g], 'c')})")
                else:
                    lines.append(f"band({c1[0]}, {c1[1]}, {o1})")
                    lines.append(f"bor({c0[0]}, {c0[1]}, {o0})")
                    for j in range(2, ao.k):
                        lines.append(f"band({o1}, {c1[j]}, {o1})")
                        lines.append(f"bor({o0}, {c0[j]}, {o0})")
            else:
                need_reduceat = True
                sn = const(ao.starts, "s")
                h1 = const(G[:ao.P], "h")
                h0 = const(G[ao.P:Pa], "h")
                lines.append(f"band_reduceat({h1}, {sn}, 0, None, {o1})")
                lines.append(f"bor_reduceat({h0}, {sn}, 0, None, {o0})")
        if xo is not None:
            g = xo.g
            k = xo.k
            w_ = V.shape[1]
            out2 = const(V[xo.base:xo.base + 2 * g], "o")
            if k == 1:
                lines.append(f"copyto({out2}, "
                             f"{const(G[Pa:Pa + 2 * g], 'x')})")
            else:
                # 4-product pairwise fold, two calls per step: AND the
                # broadcast accumulator [x1, x0] against the gathered
                # step block [c0, c1 | c1, c0], then one paired OR:
                #   r1 = (x1&c0)|(x0&c1),  r0 = (x1&c1)|(x0&c0)
                OUT = const(
                    V[xo.base:xo.base + 2 * g].reshape(2, g, w_), "o")
                A2 = G[Pa:Pa + 2 * g].reshape(2, g, w_)
                a4 = const(np.broadcast_to(A2, (2, 2, g, w_)), "x")
                U = np.empty((2, 2, g, w_), dtype=u64)
                un = const(U, "u")
                u0 = const(U[:, 0], "u")
                u1 = const(U[:, 1], "u")
                R = np.empty((2, g, w_), dtype=u64)
                rn = const(R, "t")
                r4 = const(np.broadcast_to(R, (2, 2, g, w_)), "t")
                state = a4
                for s in range(1, k):
                    b = Pa + 2 * g + (s - 1) * 4 * g
                    c4 = const(G[b:b + 4 * g].reshape(2, 2, g, w_), "x")
                    lines.append(f"band({state}, {c4}, {un})")
                    lines.append(f"bor({u0}, {u1}, "
                                 f"{OUT if s == k - 1 else rn})")
                    state = r4

    body = "\n".join("        " + ln for ln in lines) or "        pass"
    pre = ""
    if need_reduceat:
        pre = ("    band_reduceat = band.reduceat\n"
               "    bor_reduceat = bor.reduceat\n")
    src = (
        "def _make(C, band, bor, copyto, take):\n"
        + pre
        + "    (" + ", ".join(names) + ("," if names else "") + ") = C\n"
        "    def _npass(RF):\n"
        + body + "\n"
        "    return _npass\n"
    )
    ns: dict = {}
    exec(compile(src, "<npkernel-pass>", "exec"), ns)
    return ns["_make"](tuple(vals), np.bitwise_and, np.bitwise_or,
                       np.copyto, V.take)


def _scratch_for(np, plan: _Plan, w: int) -> dict:
    """Reusable per-(plan, word-count) state: the ``V`` plane array,
    static block views, detection buffers and the compiled per-frame
    pass (see :func:`_compile_pass`)."""
    sc = plan._scratch.get(w)
    if sc is None:
        u64 = np.uint64
        V = np.zeros((plan.rows, w), dtype=u64)
        npi = len(plan.pi_ids)
        nff = len(plan.ff_ids)
        npo = len(plan.po_ids)
        sc = {
            "V": V,
            "npass": _compile_pass(np, plan, V),
            "det": np.zeros(w, dtype=u64),
            # The PI 1/0-plane blocks are adjacent by construction, as
            # are the FF blocks, so loads are single slice writes.
            "pi_all": V[plan.pi1:plan.pi1 + 2 * npi],
            "ff_all": V[plan.ff1:plan.ff1 + 2 * nff],
            # Combined detection+capture read: one gather serves both.
            "rc_rows": np.concatenate([plan.po_read_rows,
                                       plan.ffd_rows_all]),
            "RC": np.empty((2 * npo + 2 * nff, w), dtype=u64),
            "RCP": np.empty((2 * npo + 2 * nff, w), dtype=u64),
        }
        if len(plan._scratch) >= 4:
            plan._scratch.clear()
        plan._scratch[w] = sc
    return sc


# ----------------------------------------------------------------------
# Bigint <-> uint64-word packing
# ----------------------------------------------------------------------


def _pack_word(np, x: int, w: int):
    """One bigint as a writable little-endian ``(w,)`` uint64 row."""
    return np.frombuffer(int(x).to_bytes(w * 8, "little"),
                         dtype="<u8").astype(np.uint64)


def _pack_rows(np, values, w: int):
    """A list of bigints as a ``(len(values), w)`` uint64 array."""
    if not values:
        return np.zeros((0, w), dtype=np.uint64)
    buf = b"".join(int(x).to_bytes(w * 8, "little") for x in values)
    return np.frombuffer(buf, dtype="<u8").reshape(len(values), w).astype(
        np.uint64
    )


def _unpack_word(arr) -> int:
    """One ``(w,)`` uint64 row back to a bigint."""
    return int.from_bytes(arr.astype("<u8", copy=False).tobytes(), "little")


def _unpack_rows(arr) -> List[int]:
    """A ``(rows, w)`` uint64 array back to a list of bigints."""
    data = arr.astype("<u8", copy=False).tobytes()
    nb = arr.shape[-1] * 8
    return [int.from_bytes(data[i * nb:(i + 1) * nb], "little")
            for i in range(arr.shape[0])]


# ----------------------------------------------------------------------
# Injection packing (read-time force folding)
# ----------------------------------------------------------------------


class _Injection:
    """This kernel's ``make_injection`` product.

    ``tables`` is the dense per-node force table the generated codegen
    kernel consumes (so ``eval_injection`` and every bigint path keep
    codegen speed); the packed per-rank force arrays for the fused
    runner are built lazily per word count and cached here — the
    simulator memoizes injections per committed-state epoch, so the
    packing cost is paid once per epoch, not per evaluate.
    """

    __slots__ = ("tables", "_packed")

    def __init__(self, tables) -> None:
        self.tables = tables
        self._packed: Dict[Tuple[int, int], "_Packed"] = {}

    def packed(self, np, plan: _Plan, ff_out_forces, ff_pin_forces, w: int):
        key = (id(plan), w)
        p = self._packed.get(key)
        if p is None:
            p = _pack_injection(np, plan, self.tables,
                                ff_out_forces, ff_pin_forces, w)
            if len(self._packed) >= 8:
                self._packed.clear()
            self._packed[key] = p
        return p


class _Packed:
    """Packed read-site force arrays for one (injection, word count).

    ``rc_fix`` is one ``(A, N)`` pair shaped to the driver's combined
    detection+capture read buffer, applied as ``(raw | A) & N`` in two
    in-place calls (``None`` when the injection forces no PO or
    flip-flop D path).
    """

    __slots__ = ("rank_forces", "rc_fix", "eff", "w", "_event")

    def __init__(self, rank_forces, rc_fix, eff, w) -> None:
        self.rank_forces = rank_forces  # aligned with plan.ranks
        self.rc_fix = rc_fix
        self.eff = eff
        self.w = w
        self._event = None

    def event_fix(self, np, n: int):
        """Dense ``(N, w)`` node-value fixup for faulty-event counting."""
        if not self.eff:
            return None
        if self._event is None:
            u64 = np.uint64
            E1 = np.zeros((n, self.w), dtype=u64)
            E0 = np.zeros((n, self.w), dtype=u64)
            for node, (f1, f0) in self.eff.items():
                if f1:
                    E1[node] = _pack_word(np, f1, self.w)
                if f0:
                    E0[node] = _pack_word(np, f0, self.w)
            self._event = (E1, E0, ~E1, ~E0)
        return self._event


def _pack_injection(np, plan: _Plan, tables, ff_out_forces, ff_pin_forces,
                    w: int) -> _Packed:
    u64 = np.uint64

    def pw(x):
        return _pack_word(np, x, w)

    # Effective *output* forces as seen by readers: program-written
    # gates and primary inputs from the dense table, flip-flop Q stems
    # from their own dict.  Output forces on nodes the program never
    # writes and never loads (isolated nodes) are dropped, exactly as
    # the interpreter drops them.
    eff: Dict[int, Tuple[int, int]] = {}
    for node, entry in enumerate(tables):
        if entry is None:
            continue
        _pins, f1, f0 = entry
        if (f1 or f0) and (node in plan.written or node in plan.pi_set):
            eff[node] = (f1, f0)
    for k, (f1, f0) in ff_out_forces.items():
        node = plan.ff_ids[k]
        p1, p0 = eff.get(node, (0, 0))
        eff[node] = (p1 | f1, p0 | f0)

    # Per-rank operand forces: the reading gate's pin force merged with
    # the read node's output force (disjoint slots, so OR merges them),
    # laid out to match the group's gathered operand block so they are
    # applied with two in-place calls (``(G | A) & ~B``).
    rank_forces = []
    for ao, xo in plan.ranks:
        # Combined layout must mirror _compile_pass:
        # [AO ones | AO zeros | XOR 4-product blocks].
        Pa = 2 * ao.P if ao is not None else 0
        total = Pa + (xo.P if xo is not None else 0)
        A = B = None
        for grp, off in ((ao, 0), (xo, Pa)):
            if grp is None:
                continue
            xg = grp.g if grp is xo else 0
            for out, fanins, sel, _swap, pos in grp.ops:
                entry = tables[out]
                pins = entry[0] if entry is not None else None
                for pin, f in enumerate(fanins):
                    of = eff.get(f)
                    pf = pins[pin] if pins is not None else None
                    if of is None and pf is None:
                        continue
                    m1 = (of[0] if of else 0) | (pf[0] if pf else 0)
                    m0 = (of[1] if of else 0) | (pf[1] if pf else 0)
                    if A is None:
                        A = np.zeros((total, w), dtype=u64)
                        B = np.zeros((total, w), dtype=u64)
                    # A 1-plane read under force (m1, m0) becomes
                    # (v | m1) & ~m0; a 0-plane read swaps the pair.
                    # AO gathers plane ``sel`` in its first half;
                    # XOR positions follow the 4-product layout (the
                    # step blocks duplicate each operand read).
                    if grp is ao:
                        a1, b1 = (m1, m0) if sel == 0 else (m0, m1)
                        ps = [off + pos + pin]
                        qs = [off + grp.P + pos + pin]
                    elif pin == 0:
                        ps = [off + pos]
                        qs = [off + xg + pos]
                    else:
                        b = off + 2 * xg + (pin - 1) * 4 * xg
                        ps = [b + xg + pos, b + 2 * xg + pos]
                        qs = [b + pos, b + 3 * xg + pos]
                    if grp is xo:
                        a1, b1 = m1, m0
                    for p in ps:
                        A[p] = pw(a1)
                        B[p] = pw(b1)
                    for q in qs:
                        A[q] = pw(b1)
                        B[q] = pw(a1)
        rank_forces.append(None if A is None else (A, ~B))

    # Patched detection + capture reads, shaped like the driver's one
    # combined read buffer [PO 0-plane | PO 1-plane | FF-D 1-plane |
    # FF-D 0-plane]: a 0-plane read under force (f1, f0) becomes
    # (v0 | f0) & ~f1, and the D-pin force merges with the D-source
    # node's output force (disjoint fault slots, so plain OR).
    npo = len(plan.po_ids)
    n_ffs = len(plan.ffd_ids)
    rc_fix = None
    if (ff_pin_forces or any(po in eff for po in plan.po_ids)
            or any(d in eff for d in plan.ffd_ids)):
        nread = 2 * npo + 2 * n_ffs
        A = np.zeros((nread, w), dtype=u64)
        N = ~np.zeros((nread, w), dtype=u64)
        for i, po in enumerate(plan.po_ids):
            fo = eff.get(po)
            if fo is None:
                continue
            F1 = pw(fo[0])
            F0 = pw(fo[1])
            A[i] = F0
            N[i] = ~F1
            A[npo + i] = F1
            N[npo + i] = ~F0
        base = 2 * npo
        for k, d in enumerate(plan.ffd_ids):
            m1, m0 = eff.get(d, (0, 0))
            pf = ff_pin_forces.get(k)
            if pf is not None:
                m1 |= pf[0]
                m0 |= pf[1]
            if m1:
                A[base + k] = pw(m1)
                N[base + n_ffs + k] = ~A[base + k]
            if m0:
                A[base + n_ffs + k] = pw(m0)
                N[base + k] = ~A[base + n_ffs + k]
        rc_fix = (A, N)

    return _Packed(rank_forces, rc_fix, eff, w)


# ----------------------------------------------------------------------
# Fused group runner
# ----------------------------------------------------------------------


def _run_group_fused(np, plan: _Plan, collector, sim, group, trace,
                     count_faulty_events: bool, inj):
    """Drop-in replacement for ``FaultSimulator._run_group`` on one wide
    group: same arguments past ``sim``, bit-identical 7-tuple result."""
    n = plan.num_nodes
    n_ffs = len(plan.ff_ids)
    n_slots = len(group)
    w = (n_slots + 63) >> 6
    mask = (1 << n_slots) - 1
    _pi_forces, ff_out_forces, ff_pin_forces, injection = inj
    packed = injection.packed(np, plan, ff_out_forces, ff_pin_forces, w)
    rank_forces = packed.rank_forces
    sc = _scratch_for(np, plan, w)
    V = sc["V"]
    npass = sc["npass"]
    maskwords = _pack_word(np, mask, w)
    V[plan.mask_row] = maskwords
    V[plan.zero_row] = 0
    if plan.float_hi > plan.float_lo:
        V[plan.float_lo:plan.float_hi] = 0

    # Faulty present-state planes: committed good state broadcast to
    # every slot, then per-fault divergences (bigint init, bulk-packed).
    # Divergences only change on commit, so the packed planes are
    # cached per (simulator, state epoch, group).
    cached = sc.get("ff_base")
    if (cached is not None and cached[0] is sim
            and cached[1] == sim.state_epoch and cached[2] is group):
        Fall = cached[3]
    else:
        ff1 = [0] * n_ffs
        ff0 = [0] * n_ffs
        for k in range(n_ffs):
            value = sim.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot, fault_id in enumerate(group):
            div = sim.divergence.get(fault_id)
            if not div:
                continue
            bit = 1 << slot
            nbit = ~bit
            for k, value in div.items():
                ff1[k] &= nbit
                ff0[k] &= nbit
                if value == 1:
                    ff1[k] |= bit
                elif value == 0:
                    ff0[k] |= bit
        Fall = _pack_rows(np, ff1 + ff0, w)
        sc["ff_base"] = (sim, sim.state_epoch, group, Fall)

    u64 = np.uint64
    det_frame: Dict[int, int] = {}
    faulty_events = 0
    pi_ids = plan.pi_ids
    po_ids = plan.po_ids
    npo = len(po_ids)
    vpi_all = sc["pi_all"]
    vff_all = sc["ff_all"]
    rc_rows = sc["rc_rows"]
    RC = sc["RC"]
    RCP = sc["RCP"]
    rc_fix = packed.rc_fix
    take = V.take
    copyto = np.copyto
    band = np.bitwise_and
    bor = np.bitwise_or
    bor_reduce = np.bitwise_or.reduce
    mul = np.multiply
    asarray = np.asarray

    # Per-frame good-machine selects, hoisted out of the loop: PI loads
    # ([1-plane | 0-plane] good bits) and the combined detection/
    # propagation select rows.  A PO's 0-plane read counts where the
    # good output is 1 and vice versa; a captured 1-plane bit is a
    # state divergence where the good next state is 0 and vice versa.
    frames = len(trace.node_planes)
    PV = asarray([[g1[p] for p in pi_ids] + [g0[p] for p in pi_ids]
                  for g1, g0 in trace.node_planes], dtype=u64)
    SEL = asarray(
        [[g1[po] for po in po_ids] + [g0[po] for po in po_ids]
         + [1 if v == 0 else 0 for v in trace.ff_states[f]]
         + [1 if v == 1 else 0 for v in trace.ff_states[f]]
         for f, (g1, g0) in enumerate(trace.node_planes)], dtype=u64)
    FD = np.empty((frames, w), dtype=u64)
    PB = np.empty((frames, w), dtype=u64)
    SRC = Fall

    for frame, (g1, g0) in enumerate(trace.node_planes):
        # Primary inputs: good bits broadcast (PI stem forces are folded
        # into the read sites, so nothing more to apply here).
        mul(PV[frame][:, None], maskwords, vpi_all)
        # Present state: raw captured planes (Q stem forces folded too).
        copyto(vff_all, SRC)

        npass(rank_forces)

        if count_faulty_events:
            E = packed.event_fix(np, n)
            EV1 = take(plan.node_rows1, 0)
            EV0 = take(plan.node_rows0, 0)
            if E is not None:
                EV1 = (EV1 | E[0]) & E[3]
                EV0 = (EV0 | E[1]) & E[2]
            gb1 = asarray(g1, dtype=u64)[:, None] * maskwords
            gb0 = asarray(g0, dtype=u64)[:, None] * maskwords
            diff = (EV1 ^ gb1) | (EV0 ^ gb0)
            faulty_events += int(np.bitwise_count(diff).sum())

        # One combined gather covers detection reads and next-state
        # capture: RC = [PO 0-plane | PO 1-plane | D 1-plane | D 0-pl].
        take(rc_rows, 0, RC, "clip")
        if rc_fix is not None:
            bor(RC, rc_fix[0], RC)
            band(RC, rc_fix[1], RC)
        mul(RC, SEL[frame][:, None], RCP)
        bor_reduce(RCP[:2 * npo], 0, None, FD[frame])
        bor_reduce(RCP[2 * npo:], 0, None, PB[frame])
        SRC = RC[2 * npo:]

    # Detection bookkeeping, deferred: in the common no-new-detection
    # case this is one reduce + one any() for the whole candidate.
    det = sc["det"]
    det_word = 0
    if frames:
        bor_reduce(FD, 0, None, det)
        if det.any():
            for frame in range(frames):
                fw = _unpack_word(FD[frame])
                x = fw & ~det_word
                while x:
                    low = x & -x
                    det_frame[low.bit_length() - 1] = frame
                    x ^= low
                det_word |= fw
        prop_per_frame = [int(c) for c in
                          np.bitwise_count(PB).sum(axis=1)]
    else:
        prop_per_frame = []

    if collector.enabled:
        collector.inc("numpy.group.passes")
        collector.inc("numpy.group.slot_frames", n_slots * frames)
    prop_final = prop_per_frame[-1] if prop_per_frame else 0
    return (det_word, det_frame, prop_final, prop_per_frame, faulty_events,
            _unpack_rows(SRC[:n_ffs]), _unpack_rows(SRC[n_ffs:]))


# ----------------------------------------------------------------------
# Fused population (batch) runner
# ----------------------------------------------------------------------


def _run_batch_fused(np, plan: _Plan, collector, sim, candidates, sample,
                     count_faulty_events: bool):
    """Drop-in replacement for ``FaultSimulator._evaluate_batch_serial``:
    the whole candidate population scored against the packed plane array
    in one fused pass per frame, bit-identical results.

    Same slot layout as the bigint mega-word pass: candidate ``c`` owns
    the block ``[c*S, (c+1)*S)`` over the ``S`` sampled faults, so the
    replicated injection words and divergence planes are byte-for-byte
    the packed forms of the serial path's bigints.  The good machines
    stay on the bigint :class:`~repro.faults.simulator.PatternParallelGood`
    (one slot per candidate — far below the array break-even), and their
    per-candidate selector bits are expanded into block masks feeding
    the same combined detection+capture gather as the group runner.
    """
    from ..faults.simulator import CandidateEval, PatternParallelGood

    u64 = np.uint64
    n = plan.num_nodes
    n_ffs = len(plan.ff_ids)
    n_cand = len(candidates)
    S = len(sample)
    frames = len(candidates[0])
    width = n_cand * S
    w = (width + 63) >> 6
    mask = (1 << width) - 1
    block_mask = (1 << S) - 1
    block_of = [block_mask << (c * S) for c in range(n_cand)]
    rep = 0
    for c in range(n_cand):
        rep |= 1 << (c * S)

    good = PatternParallelGood(
        sim.compiled, sim.good_state, candidates,
        count_events=count_faulty_events, kernel=sim._kernel,
    )

    # Replicated injection + packed present-state base, cached per
    # committed epoch (another GA generation's population at the same
    # state and sample reuses them without repacking).
    ckey = (sim, sim.state_epoch, tuple(sample), n_cand)
    cached = plan._scratch.get("batch")
    if cached is not None and cached[0] == ckey:
        packed, Fall = cached[1], cached[2]
    else:
        def replicate(word: int) -> int:
            return word * rep

        (out_force_s, pin_force_s, _pi_forces_s,
         ff_out_forces_s, ff_pin_forces_s) = sim._injection_tables(sample)
        out_force = {node: (replicate(f1), replicate(f0))
                     for node, (f1, f0) in out_force_s.items()}
        pin_force = {
            gate: [(pin, replicate(f1), replicate(f0))
                   for pin, f1, f0 in entries]
            for gate, entries in pin_force_s.items()
        }
        ff_out_forces = {k: (replicate(f1), replicate(f0))
                         for k, (f1, f0) in ff_out_forces_s.items()}
        ff_pin_forces = {k: (replicate(f1), replicate(f0))
                         for k, (f1, f0) in ff_pin_forces_s.items()}
        injection = sim._kernel.make_injection(out_force, pin_force)
        packed = injection.packed(np, plan, ff_out_forces, ff_pin_forces, w)

        ff1 = [0] * n_ffs
        ff0 = [0] * n_ffs
        for k in range(n_ffs):
            value = sim.good_state.ff_values[k]
            ff1[k] = mask if value == 1 else 0
            ff0[k] = mask if value == 0 else 0
        for slot_in_block, fault_id in enumerate(sample):
            div = sim.divergence.get(fault_id)
            if not div:
                continue
            slot_word = rep << slot_in_block  # this fault in every block
            nword = ~slot_word
            for k, value in div.items():
                ff1[k] &= nword
                ff0[k] &= nword
                if value == 1:
                    ff1[k] |= slot_word
                elif value == 0:
                    ff0[k] |= slot_word
        Fall = _pack_rows(np, ff1 + ff0, w)
        plan._scratch["batch"] = (ckey, packed, Fall)

    sc = _scratch_for(np, plan, w)
    V = sc["V"]
    npass = sc["npass"]
    maskwords = _pack_word(np, mask, w)
    V[plan.mask_row] = maskwords
    V[plan.zero_row] = 0
    if plan.float_hi > plan.float_lo:
        V[plan.float_lo:plan.float_hi] = 0

    pi_ids = plan.pi_ids
    po_ids = plan.po_ids
    npo = len(po_ids)
    vpi_all = sc["pi_all"]
    vff_all = sc["ff_all"]
    rc_rows = sc["rc_rows"]
    RC = sc["RC"]
    RCP = sc["RCP"]
    rc_fix = packed.rc_fix
    take = V.take
    copyto = np.copyto
    band = np.bitwise_and
    bor = np.bitwise_or
    bor_reduce = np.bitwise_or.reduce
    BLK = _pack_rows(np, block_of, w)

    def expand(bits: int) -> int:
        """Spread an n_cand-bit selector into full candidate blocks."""
        word = 0
        while bits:
            low = bits & -bits
            word |= block_of[low.bit_length() - 1]
            bits ^= low
        return word

    prop_sum = [0] * n_cand
    prop_final = [0] * n_cand
    faulty_events = [0] * n_cand
    DET = np.zeros(w, dtype=u64)
    FD = np.empty(w, dtype=u64)
    PB = np.empty(w, dtype=u64)
    SRC = Fall

    for frame in range(frames):
        g1, g0 = good.step(frame)
        # Primary inputs: each candidate's good PI bits are its own
        # vector bits, expanded into its block (PI stem forces are
        # folded into the read sites, as in the group runner).
        copyto(vpi_all, _pack_rows(
            np,
            [expand(g1[pi]) for pi in pi_ids]
            + [expand(g0[pi]) for pi in pi_ids], w))
        copyto(vff_all, SRC)

        npass(packed.rank_forces)

        if count_faulty_events:
            E = packed.event_fix(np, n)
            EV1 = take(plan.node_rows1, 0)
            EV0 = take(plan.node_rows0, 0)
            if E is not None:
                EV1 = (EV1 | E[0]) & E[3]
                EV0 = (EV0 | E[1]) & E[2]
            GB1 = _pack_rows(np, [expand(g1[i]) for i in range(n)], w)
            GB0 = _pack_rows(np, [expand(g0[i]) for i in range(n)], w)
            diff = (EV1 ^ GB1) | (EV0 ^ GB0)
            cnt = np.bitwise_count(diff[None, :, :] & BLK[:, None, :]).sum(
                axis=(1, 2))
            for c in range(n_cand):
                faulty_events[c] += int(cnt[c])

        # Combined detection + capture gather, exactly as the group
        # runner — the per-frame select masks are per-candidate blocks
        # instead of whole-word multipliers.
        take(rc_rows, 0, RC, "clip")
        if rc_fix is not None:
            bor(RC, rc_fix[0], RC)
            band(RC, rc_fix[1], RC)
        good_next = good.next_state_scalars()
        gb1 = [0] * n_ffs
        gb0 = [0] * n_ffs
        for c in range(n_cand):
            row = good_next[c]
            blk = block_of[c]
            for k in range(n_ffs):
                value = row[k]
                if value == 1:
                    gb1[k] |= blk
                elif value == 0:
                    gb0[k] |= blk
        selb = ([expand(g1[po]) for po in po_ids]
                + [expand(g0[po]) for po in po_ids]
                + gb0 + gb1)
        band(RC, _pack_rows(np, selb, w), RCP)
        bor_reduce(RCP[:2 * npo], 0, None, FD)
        bor(DET, FD, DET)
        bor_reduce(RCP[2 * npo:], 0, None, PB)
        cnt = np.bitwise_count(PB[None, :] & BLK).sum(axis=1)
        for c in range(n_cand):
            count = int(cnt[c])
            prop_sum[c] += count
            if frame == frames - 1:
                prop_final[c] = count
        SRC = RC[2 * npo:]

    detected = np.bitwise_count(DET[None, :] & BLK).sum(axis=1)

    sim_collector = sim.collector
    if sim_collector.enabled:
        sim_collector.inc("sim.batch.calls")
        sim_collector.inc("sim.batch.candidates", n_cand)
        sim_collector.inc("sim.batch.frames", frames)
        sim_collector.inc("sim.batch.faults", S)
        sim_collector.inc("sim.batch.slot_frames", width * frames)
        if count_faulty_events:
            sim_collector.inc("sim.good_events", sum(good.events))
            sim_collector.inc("sim.faulty_events", sum(faulty_events))
    if collector.enabled:
        collector.inc("numpy.batch.passes")
        collector.inc("numpy.batch.slot_frames", width * frames)

    return [
        CandidateEval(
            frames=frames,
            detected=int(detected[c]),
            prop_final=prop_final[c],
            prop_sum=prop_sum[c],
            faulty_events=faulty_events[c],
            good_events=good.events[c],
            ffs_set=good.ffs_set[c],
            ffs_changed=good.ffs_changed[c],
            num_faults_simulated=S,
            num_ffs=n_ffs,
        )
        for c in range(n_cand)
    ]


# ----------------------------------------------------------------------
# Kernel assembly (called by repro.sim.codegen.kernel_for)
# ----------------------------------------------------------------------


def build(compiled: CompiledCircuit, requested: str, fns, collector):
    """Assemble the numpy :class:`~repro.sim.codegen.SimKernel`.

    ``fns`` are the already-built codegen functions: the good-machine
    and bigint injected passes delegate to them (bit-identical by the
    codegen contract, and faster than numpy for narrow words), while
    wide fault groups take the fused vectorized runner.  Raises when
    numpy is unusable — the caller falls back to the interpreter.
    """
    np = _numpy()
    from .codegen import SimKernel, make_force_tables

    plan = _plan_for(np, compiled, collector)
    num_nodes = compiled.num_nodes
    arity = {instr[0]: len(instr[3]) for instr in compiled.program}
    good = fns["good"]
    injected = fns["injected"]

    def make_injection(out_force: Dict, pin_force: Dict) -> _Injection:
        return _Injection(
            make_force_tables(num_nodes, out_force, pin_force, arity)
        )

    def eval_injection(v1, v0, mask, injection: _Injection) -> None:
        injected(v1, v0, mask, injection.tables)

    def run_group(sim, group, trace, count_faulty_events, inj):
        return _run_group_fused(np, plan, collector, sim, group, trace,
                                count_faulty_events, inj)

    def run_batch(sim, candidates, sample, count_faulty_events):
        return _run_batch_fused(np, plan, collector, sim, candidates,
                                sample, count_faulty_events)

    return SimKernel(
        name="numpy",
        requested=requested,
        eval_fn=good,
        make_injection=make_injection,
        eval_injection=eval_injection,
        run_group=run_group,
        run_batch=run_batch,
        group_width=WIDE_GROUP_CAP,
    )
