"""Fault-sharded parallel candidate evaluation and the evaluation cache.

The GA hot loop spends nearly all of its time fault-simulating candidate
tests (paper §IV; DESIGN.md §6).  This package speeds that loop up along
two independent axes, both without changing any result bit:

* :class:`~repro.parallel.evaluator.ParallelEvaluator` — splits the
  active fault list into the same ``word_width`` groups the serial
  simulator uses, shards contiguous runs of groups across a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`, and merges the
  per-shard :class:`~repro.faults.simulator.CandidateEval` observables
  by summation.  Shards are disjoint fault subsets, so the merge is
  exact and parallel results are bit-identical to serial ones.
* :class:`~repro.parallel.cache.EvalCache` — memoizes candidate scores
  keyed by ``(chromosome bits, state epoch)``.  Duplicate individuals
  (common within a GA population and across overlapping generations,
  Table 7) skip fault simulation entirely; every state-changing
  simulator operation bumps the epoch, so a stale hit is impossible.

Entry points: :class:`FaultSimulator` grows ``eval_jobs`` / ``eval_cache``
constructor knobs, :class:`~repro.core.config.TestGenConfig` carries the
same knobs into a GATEST run, and the CLI exposes ``gatest run
--eval-jobs N``.  See docs/ARCHITECTURE.md for where this sits in the
stack and docs/PERFORMANCE.md for tuning guidance and measured numbers.
"""

from .cache import EvalCache, eval_key
from .evaluator import ParallelEvaluator
from .resilience import ChaosConfig, RetryPolicy
from .sharding import plan_shards
from .shutdown import close_quietly, reap_pool

__all__ = [
    "ChaosConfig",
    "EvalCache",
    "ParallelEvaluator",
    "RetryPolicy",
    "close_quietly",
    "eval_key",
    "plan_shards",
    "reap_pool",
]
