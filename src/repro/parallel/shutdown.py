"""Shared process-pool teardown used by every pool owner in the stack.

Three layers own worker pools — the sharded candidate evaluator
(:mod:`repro.parallel.evaluator`), the harness's fault-isolated seed
pools (:mod:`repro.harness.runner`) and the resident simulators of the
job service (:mod:`repro.service`) — and all of them need the same
teardown on the unhappy path: a worker that died or hung never answers
a graceful ``shutdown()``, so the pool must be cancelled, its processes
terminated outright, and the corpses reaped.  That sequence used to be
duplicated per owner (``_kill_pool`` in the evaluator, a near-identical
``_kill_seed_pool`` in the runner, and the CLI's ``finally`` mirroring
the generator's); it lives here once now.

:func:`reap_pool` is the hard teardown.  :func:`close_quietly` is the
idempotent happy-path counterpart for anything exposing ``close()``
(a :class:`~repro.faults.simulator.FaultSimulator`, a generator, an
evaluator) where teardown must never raise over an in-flight exception.
"""

from __future__ import annotations

from typing import Optional

#: Seconds to wait for each terminated worker before abandoning it.
JOIN_TIMEOUT = 5.0


def reap_pool(pool, join_timeout: float = JOIN_TIMEOUT) -> None:
    """Hard-stop a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Cancels queued work, terminates every worker process, then joins
    them with a bounded timeout.  Safe on ``None``, on an already
    shut-down pool, and on a pool whose workers are wedged — a clean
    ``shutdown(wait=True)`` would block forever on a hung worker, which
    is exactly when this gets called.  Never raises.
    """
    if pool is None:
        return
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for proc in processes:
        try:
            proc.join(timeout=join_timeout)
        except Exception:  # pragma: no cover - defensive
            pass


def close_quietly(closable: Optional[object]) -> None:
    """Call ``closable.close()``, swallowing every exception.

    The shutdown path runs inside ``finally`` blocks where a teardown
    error must not mask the real one; ``close()`` implementations in
    this stack are idempotent, so calling through here repeatedly is
    always safe.
    """
    if closable is None:
        return
    close = getattr(closable, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:  # pragma: no cover - defensive
        pass
