"""Candidate evaluation cache keyed by chromosome bits and state epoch.

GA populations are full of duplicate individuals: uniform crossover of
near-converged parents often reproduces a parent bit-for-bit, mutation
rates are of order 1/L, and overlapping populations (Table 7) carry
survivors from generation to generation.  Scoring a candidate is a full
fault-simulation pass, yet its result is a pure function of

* the candidate's decoded vectors (its chromosome bits),
* the simulator's committed state, and
* the fault sample plus the activity-counting flag.

:class:`EvalCache` memoizes on exactly that.  Committed state is
summarized by the simulator's ``state_epoch`` — a counter bumped by
every state-changing operation (``commit`` / ``restore`` / ``reset``) —
so the cache can never return a score computed against stale state.
Epochs only move forward, which means entries from older epochs are
unreachable; the cache therefore keeps entries for the current epoch
only and drops everything on an epoch change.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..faults.simulator import CandidateEval
from ..sim.logic3 import Vector

#: Default bound on live entries (one epoch's worth of distinct
#: candidates; a GA run on a 16-PI circuit has at most 2^16 of them).
DEFAULT_MAX_ENTRIES = 65536

Key = Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], bool]


def eval_key(
    vectors: Sequence[Vector],
    sample: Sequence[int],
    count_faulty_events: bool,
) -> Key:
    """Exact (collision-free) cache key for one candidate evaluation."""
    return (
        tuple(tuple(v) for v in vectors),
        tuple(sample),
        bool(count_faulty_events),
    )


class EvalCache:
    """Epoch-scoped memo of :class:`CandidateEval` results.

    ``get``/``put`` take the simulator's current ``state_epoch``; a
    lookup under a new epoch invalidates every stored entry first.
    Hit/miss totals accumulate across epochs (they feed the
    ``parallel.cache.hits`` / ``parallel.cache.misses`` telemetry
    counters and the PERFORMANCE.md tuning guide).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._epoch: Optional[int] = None
        self._entries: Dict[Key, CandidateEval] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_epoch(self, epoch: int) -> None:
        if epoch != self._epoch:
            self._entries.clear()
            self._epoch = epoch

    def get(self, epoch: int, key: Key) -> Optional[CandidateEval]:
        """The memoized result for ``key`` at ``epoch``, or ``None``.

        Counts a hit or a miss; callers that merely probe should not use
        this method.
        """
        self._sync_epoch(epoch)
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, epoch: int, key: Key, result: CandidateEval) -> None:
        """Store one result (evicting the oldest entry when full)."""
        self._sync_epoch(epoch)
        if len(self._entries) >= self.max_entries and key not in self._entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = result

    def clear(self) -> None:
        """Drop all entries (hit/miss totals are kept)."""
        self._entries.clear()
        self._epoch = None
