"""Contiguous sharding of fault word-groups across evaluation workers.

The serial simulator chunks the sampled fault list into groups of
``word_width`` slots (:meth:`FaultSimulator._make_groups`) and simulates
one group per pass.  A *shard* is a contiguous run of those groups: the
unit of work shipped to one pool worker.  Keeping the serial grouping
intact — sharding only ever concatenates whole groups — is what makes
the parallel path bit-identical to the serial one: every (fault, slot)
packing is exactly the packing the serial pass would have used.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def plan_shards(n_groups: int, jobs: int) -> List[Tuple[int, int]]:
    """Split ``n_groups`` word-groups into at most ``jobs`` contiguous shards.

    Returns ``(start, stop)`` half-open index ranges, in order, covering
    ``range(n_groups)`` exactly once.  Shard sizes differ by at most one
    group (the first ``n_groups % jobs`` shards get the extra), so
    worker loads stay balanced.  Fewer than ``jobs`` shards are returned
    when there are fewer groups than workers.

    >>> plan_shards(5, 2)
    [(0, 3), (3, 5)]
    >>> plan_shards(2, 4)
    [(0, 1), (1, 2)]
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if n_groups < 0:
        raise ValueError("n_groups must be >= 0")
    if n_groups == 0:
        return []
    n_shards = min(jobs, n_groups)
    base, extra = divmod(n_groups, n_shards)
    shards: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        shards.append((start, stop))
        start = stop
    return shards


def shard_groups(
    groups: Sequence[Sequence[int]], jobs: int
) -> List[List[List[int]]]:
    """Apply :func:`plan_shards` to an actual group list.

    Returns one list of groups per shard; concatenating the shards in
    order recovers ``groups`` exactly.
    """
    return [
        [list(g) for g in groups[start:stop]]
        for start, stop in plan_shards(len(groups), jobs)
    ]
