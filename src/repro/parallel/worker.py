"""Process-pool worker side of the fault-sharded evaluator.

Workers are initialized once per pool with the pickled
:class:`CompiledCircuit`, fault list and ``word_width``; each builds a
private :class:`FaultSimulator` and keeps it for the life of the pool.
Per-task payloads then carry only what changes per scoring pass: the
committed flip-flop state, the divergence maps of the shard's own
faults, the candidate vectors, and the shard's slice of the fault
sample.  The worker replays the serial wide-word batch pass
(``_evaluate_batch_serial``) over its sub-sample — the exact code the
serial batch path runs — so a shard's partial observables are
bit-identical to the serial pass restricted to the same faults, and the
parent's per-candidate summation merge is exact (the sub-samples are
disjoint).

For robustness testing, workers honor the ``REPRO_CHAOS`` environment
variable (``crash:<p>,hang:<p>,seed:<n>``, see
:mod:`repro.parallel.resilience`): before running a task they may kill
themselves abruptly (like an OOM kill) or stall (like a wedged worker),
deterministically keyed on the task's parent-assigned sequence number.
The parent's self-healing retry loop is what turns those injected
failures back into correct results.

Everything here must stay module-level and import-safe: it is resolved
by name inside pool worker processes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit
from ..sim.logic3 import GoodState, Vector
from .resilience import ChaosConfig, inject_chaos

#: The worker-resident simulator (one per pool process).
_SIM: Optional[FaultSimulator] = None

#: Chaos injection config (parsed from ``REPRO_CHAOS`` at pool init).
_CHAOS: Optional[ChaosConfig] = None

#: One shard task: (ff_values, divergence, candidates, sub_sample,
#: count_faulty_events).
ShardTask = Tuple[
    List[int],
    Dict[int, Dict[int, int]],
    List[List[Vector]],
    List[int],
    bool,
]

#: Per-candidate partial observables: (detected, prop_final, prop_sum,
#: faulty_events, good_events, ffs_set, ffs_changed).  The first four
#: are per-fault sums over the shard's sub-sample (disjoint across
#: shards, merged by summation); the last three come from the good
#: machine and are identical in every shard.
CandidateRow = Tuple[int, int, int, int, int, int, int]

#: One shard result: (per-candidate rows, worker wall seconds).
ShardResult = Tuple[List[CandidateRow], float]


def init_worker(
    compiled: CompiledCircuit,
    faults,
    word_width: int,
    kernel: Optional[str] = None,
    kernel_artifact: Optional[Tuple[str, str]] = None,
) -> None:
    """Pool initializer: build this process's resident simulator.

    ``kernel`` is the parent simulator's *resolved* backend name, so
    every worker compiles the same kernel and sharded results stay
    bit-identical to the parent's serial pass.  ``kernel_artifact`` is
    the parent's compiled C library ``(digest, path)`` when the C
    backend is active: the worker registers it and loads it directly
    instead of recompiling; an unusable path (deleted cache dir,
    different mount) just falls through to the worker's own disk cache
    or a local recompile — same generated source, same results.
    """
    global _SIM, _CHAOS
    if kernel_artifact is not None:
        from ..sim import ckernel

        ckernel.preload_artifact(*kernel_artifact)
    _SIM = FaultSimulator(
        compiled, faults=faults, word_width=word_width, kernel=kernel
    )
    _CHAOS = ChaosConfig.from_env()


def _maybe_inject_chaos(task_seq: int) -> None:
    """Kill or stall this worker if the chaos config says so.

    Delegates to the shared :func:`~repro.parallel.resilience.inject_chaos`
    (one injection semantics for every worker family).
    """
    inject_chaos(_CHAOS, task_seq)


def run_batch_shard(task: ShardTask, task_seq: int = 0) -> ShardResult:
    """Score every candidate against one shard of the fault sample.

    The resident simulator's mutable state is overwritten from the task
    payload before the wide-word pass runs, so a worker serves any shard
    of any population at any epoch without re-synchronization
    bookkeeping.
    """
    if _SIM is None:  # pragma: no cover - defensive; initializer always ran
        raise RuntimeError("worker used before init_worker")
    _maybe_inject_chaos(task_seq)
    t0 = time.perf_counter()
    ff_values, divergence, candidates, sub_sample, count_events = task
    _SIM.good_state = GoodState(list(ff_values))
    _SIM.divergence = divergence
    evals = _SIM._evaluate_batch_serial(
        candidates, sample=sub_sample, count_faulty_events=count_events
    )
    rows: List[CandidateRow] = [
        (e.detected, e.prop_final, e.prop_sum, e.faulty_events,
         e.good_events, e.ffs_set, e.ffs_changed)
        for e in evals
    ]
    return rows, time.perf_counter() - t0


def shard_payload(
    sim: FaultSimulator,
    candidates: Sequence[Sequence[Vector]],
    sub_sample: Sequence[int],
    count_faulty_events: bool,
) -> ShardTask:
    """Build one worker task from the parent simulator's state.

    Only the divergence maps of the shard's own faults are shipped —
    a shard never reads any other fault's state.
    """
    divergence = {
        fault_id: dict(sim.divergence[fault_id])
        for fault_id in sub_sample
        if fault_id in sim.divergence
    }
    return (
        list(sim.good_state.ff_values),
        divergence,
        list(candidates),
        list(sub_sample),
        count_faulty_events,
    )
