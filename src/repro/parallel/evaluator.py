"""Fault-sharded, cache-fronted candidate evaluation.

:class:`ParallelEvaluator` wraps one :class:`FaultSimulator` and serves
its ``evaluate`` / ``evaluate_batch`` calls through two layers:

1. the :class:`~repro.parallel.cache.EvalCache` — duplicate candidates
   (within a population, across generations, across GA runs at the same
   committed state) return their memoized :class:`CandidateEval`
   without touching the simulator;
2. fault-sharded scoring — cache misses are split along the fault axis:
   the sampled fault list's ``word_width`` groups are sharded
   contiguously (:func:`~repro.parallel.sharding.plan_shards`) across a
   persistent :class:`~concurrent.futures.ProcessPoolExecutor`, each
   worker scores *every* miss against its sub-sample with the serial
   wide-word batch pass, and the disjoint per-shard observables are
   merged by summation — an *exact* merge, so parallel scores are
   bit-identical to serial ones.

Sharding along the fault axis (rather than the candidate axis) keeps
the wide-word packing of ``_evaluate_batch_serial`` intact inside every
worker: a population of misses still rides one bit-plane word per
worker, and the shard fan-out multiplies on top of that packing instead
of replacing it.  For the same reason, single-candidate misses that
cannot usefully shard are scored with a one-candidate wide pass — on
circuits with a few hundred active faults that alone is measurably
faster than the grouped ``evaluate`` loop, at bit-identical results.

The evaluator degrades gracefully: with ``jobs=1``, a single usable
CPU, a fault sample too small to shard, a simulator subclass whose
injection a pool worker cannot replay (``_shardable = False``), or a
pool that fails to start, scoring falls back to an in-process pass —
results are identical either way, only the wall clock changes.

The pool path is additionally *self-healing* (docs/ROBUSTNESS.md): a
sharded pass that loses a worker (``BrokenProcessPool``), exceeds the
per-pass task timeout (a hung worker), or fails in any other way is
retried after killing and respawning the pool, with exponential backoff
between attempts (:class:`~repro.parallel.resilience.RetryPolicy`).
When the retries are exhausted the evaluator permanently degrades to
the in-process serial pass for the rest of the run — the serial path is
the reference implementation, so every recovery route produces
bit-identical results.  Telemetry counters (``parallel.*``, see
docs/TELEMETRY.md) meter cache traffic, shard fan-out, worker wall
time, retries, pool restarts and degradation.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import List, Optional, Sequence

from ..faults.simulator import CandidateEval, FaultSimulator
from ..sim.logic3 import Vector
from ..telemetry.collector import NullCollector, get_collector
from .cache import DEFAULT_MAX_ENTRIES, EvalCache, eval_key
from .resilience import RetryPolicy
from .sharding import plan_shards
from .shutdown import reap_pool
from .worker import init_worker, run_batch_shard, shard_payload


def _usable_cpus() -> int:
    """CPUs this process may run on (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class ParallelEvaluator:
    """Sharded + memoized scoring front-end for one fault simulator.

    ``jobs`` is the worker-process count (1 disables sharding, keeping
    only the cache); ``cache=False`` disables memoization, keeping only
    sharding.  The pool is created lazily on the first sharded score and
    survives across calls — worker processes hold the compiled circuit
    and fault list for the lifetime of the evaluator, so the per-call
    cost is only the candidate payload.  Use as a context manager or
    call :meth:`close` to release the pool.

    On a host with a single usable CPU the fan-out cannot beat the
    in-process wide pass (the shards serialize and the task payloads
    are pure overhead), so sharding is skipped and misses are scored
    in-process; ``force_shard=True`` — or the environment variable
    ``REPRO_EVAL_FORCE_SHARD=1`` — overrides the heuristic, which the
    determinism suite and benchmarks use to exercise the pool path on
    single-core CI machines.
    """

    def __init__(
        self,
        sim: FaultSimulator,
        jobs: int = 1,
        cache: bool = True,
        max_cache_entries: int = DEFAULT_MAX_ENTRIES,
        collector: Optional[NullCollector] = None,
        force_shard: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.sim = sim
        self.jobs = jobs
        self.cache: Optional[EvalCache] = (
            EvalCache(max_cache_entries) if cache else None
        )
        self.collector = collector if collector is not None else get_collector()
        self.force_shard = (
            force_shard
            or os.environ.get("REPRO_EVAL_FORCE_SHARD", "") == "1"
        )
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._cpus = _usable_cpus()
        self._pool = None
        self._pool_broken = False
        #: Monotonic task sequence number — gives every submitted shard
        #: task (including retries) a distinct, deterministic identity,
        #: which the chaos hook keys its failure decisions on.
        self._task_seq = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _get_pool(self):
        """The persistent worker pool (created on first use)."""
        if self._pool is None and not self._pool_broken:
            try:
                from concurrent.futures import ProcessPoolExecutor

                kernel_artifact = None
                if self.sim.kernel_name == "c":
                    # Ship the parent's compiled C library so workers
                    # dlopen it instead of recompiling (they still fall
                    # back to their own cache/compile if it is unusable).
                    from ..sim import ckernel

                    kernel_artifact = ckernel.shipping_payload(
                        self.sim.compiled
                    )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=init_worker,
                    initargs=(
                        self.sim.compiled,
                        list(self.sim.faults),
                        self.sim.word_width,
                        self.sim.kernel_name,
                        kernel_artifact,
                    ),
                )
            except OSError:
                # No process support in this environment (e.g. a locked-
                # down sandbox): score serially from here on.
                self._pool_broken = True
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down hard: cancel queued work, terminate workers.

        Used when the pool is known or suspected broken (a worker died
        or hung); a clean ``shutdown`` would block forever on a wedged
        worker, so :func:`~repro.parallel.shutdown.reap_pool` terminates
        the worker processes outright.
        """
        pool, self._pool = self._pool, None
        reap_pool(pool)

    def _restart_pool(self) -> None:
        """Kill the (suspect) pool; the next ``_get_pool`` respawns it."""
        self._kill_pool()
        if self.collector.enabled:
            self.collector.inc("parallel.pool.restarts")

    def close(self) -> None:
        """Shut down the worker pool (scoring stays usable: the pool is
        recreated on demand, and the cache is unaffected).

        Queued-but-unstarted tasks are cancelled so an interrupt cannot
        strand worker processes behind a backlog.
        """
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _can_shard(self, n_groups: int) -> bool:
        return (
            self.jobs > 1
            and n_groups > 1
            and (self.force_shard or self._cpus > 1)
            and getattr(self.sim, "_shardable", False)
            and not self._pool_broken
        )

    def _shard_batch(
        self,
        candidates: Sequence[Sequence[Vector]],
        sample: List[int],
        groups: List[List[int]],
        count_faulty_events: bool,
    ) -> Optional[List[CandidateEval]]:
        """Score candidates via sample-sharded worker wide passes.

        The fault sample is split into contiguous runs of whole
        ``word_width`` groups (the serial grouping order, so shard
        boundaries never split a group); each worker scores the full
        candidate list against its sub-sample with the wide-word batch
        pass.  Per-fault observables are summed across the disjoint
        shards; good-machine observables are taken from the first shard
        (they do not depend on the sample).

        Self-healing: a pass that loses a worker, times out, or fails
        for any other reason kills and respawns the pool and retries
        (with exponential backoff) up to ``retry.max_retries`` times;
        exhausting the retries permanently degrades this evaluator to
        the serial path.  Returns ``None`` when the pool cannot be
        created or the pass could not be completed — the caller's serial
        fallback is the reference implementation, so every path yields
        bit-identical results.
        """
        sim = self.sim
        policy = self.retry
        collector = self.collector
        shards = [
            [fault_id for group in groups[start:stop] for fault_id in group]
            for start, stop in plan_shards(len(groups), self.jobs)
        ]
        rows_per_shard: List[list] = []
        worker_seconds = 0.0
        for attempt in range(policy.max_retries + 1):
            pool = self._get_pool()
            if pool is None:
                return None
            futures = []
            try:
                deadline = (
                    time.monotonic() + policy.task_timeout
                    if policy.task_timeout is not None else None
                )
                for shard in shards:
                    seq = self._task_seq
                    self._task_seq += 1
                    futures.append(
                        pool.submit(
                            run_batch_shard,
                            shard_payload(
                                sim, candidates, shard, count_faulty_events
                            ),
                            seq,
                        )
                    )
                rows_per_shard = []
                worker_seconds = 0.0
                for future in futures:
                    remaining = (
                        None if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    rows, wall = future.result(timeout=remaining)
                    rows_per_shard.append(rows)
                    worker_seconds += wall
            except Exception:
                # Worker death (BrokenProcessPool), a hung worker (the
                # deadline fired), an unpicklable payload/result, or a
                # fault injected by chaos testing: every one is handled
                # the same way — kill the suspect pool, respawn, retry.
                for future in futures:
                    future.cancel()
                self._restart_pool()
                if attempt < policy.max_retries:
                    if collector.enabled:
                        collector.inc("parallel.retries")
                    time.sleep(policy.backoff(attempt))
                    continue
                # Retries exhausted: degrade to the in-process serial
                # pass for the rest of this evaluator's life.
                self._pool_broken = True
                if collector.enabled:
                    collector.inc("parallel.degraded")
                return None
            break
        results: List[CandidateEval] = []
        for index, candidate in enumerate(candidates):
            detected = 0
            prop_final = 0
            prop_sum = 0
            faulty_events = 0
            for rows in rows_per_shard:
                s_det, s_final, s_sum, s_events, _, _, _ = rows[index]
                detected += s_det
                prop_final += s_final
                prop_sum += s_sum
                faulty_events += s_events
            _, _, _, _, good_events, ffs_set, ffs_changed = rows_per_shard[0][index]
            results.append(
                CandidateEval(
                    frames=len(candidate),
                    detected=detected,
                    prop_final=prop_final,
                    prop_sum=prop_sum,
                    faulty_events=faulty_events,
                    good_events=good_events,
                    ffs_set=ffs_set,
                    ffs_changed=ffs_changed,
                    num_faults_simulated=len(sample),
                    num_ffs=sim.compiled.num_ffs,
                )
            )
        collector = self.collector
        if collector.enabled:
            collector.inc("parallel.evaluate.sharded")
            collector.inc("parallel.shard.tasks", len(shards))
            collector.inc("parallel.shard.groups", len(groups))
            collector.inc("parallel.worker.seconds", worker_seconds)
            if count_faulty_events:
                collector.inc(
                    "sim.good_events", sum(r.good_events for r in results)
                )
                collector.inc(
                    "sim.faulty_events", sum(r.faulty_events for r in results)
                )
        return results

    def _score(
        self,
        vectors: Sequence[Vector],
        sample: List[int],
        count_faulty_events: bool,
    ) -> CandidateEval:
        """Score one candidate (no cache): sharded if worthwhile."""
        sim = self.sim
        if not getattr(sim, "_shardable", False):
            # The subclass's own injection machinery (e.g. the
            # transition model's per-frame conditional masks) is the
            # only correct scorer; stay on its serial path.
            return sim._evaluate_serial(
                vectors, sample=sample, count_faulty_events=count_faulty_events
            )
        if vectors and sample:
            groups = sim._make_groups(sample)
            if self._can_shard(len(groups)):
                results = self._shard_batch(
                    [vectors], sample, groups, count_faulty_events
                )
                if results is not None:
                    return results[0]
        # In-process fallback: the one-candidate wide pass, faster than
        # the grouped evaluate loop and bit-identical to it.
        return sim._evaluate_batch_serial(
            [vectors], sample=sample, count_faulty_events=count_faulty_events
        )[0]

    def evaluate(
        self,
        vectors: Sequence[Vector],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> CandidateEval:
        """Cache-fronted, optionally sharded ``FaultSimulator.evaluate``."""
        sim = self.sim
        sample = list(sample if sample is not None else sim.active)
        cache = self.cache
        collector = self.collector
        if cache is None:
            return self._score(vectors, sample, count_faulty_events)
        key = eval_key(vectors, sample, count_faulty_events)
        cached = cache.get(sim.state_epoch, key)
        if cached is not None:
            if collector.enabled:
                collector.inc("parallel.cache.hits")
            return replace(cached)
        if collector.enabled:
            collector.inc("parallel.cache.misses")
        result = self._score(vectors, sample, count_faulty_events)
        cache.put(sim.state_epoch, key, result)
        return replace(result)

    def evaluate_batch(
        self,
        candidates: Sequence[Sequence[Vector]],
        sample: Optional[Sequence[int]] = None,
        count_faulty_events: bool = False,
    ) -> List[CandidateEval]:
        """Cache-fronted, sharded ``FaultSimulator.evaluate_batch``.

        Cache hits (including duplicates *within* the batch) are served
        from memory; the distinct misses are scored together — either
        shard-parallel (every worker runs one wide-word pass over all
        misses against its fault sub-sample) or, when sharding is off or
        unavailable, with one serial wide-word batch pass.
        """
        sim = self.sim
        n_cand = len(candidates)
        if n_cand == 0:
            return []
        sample = list(sample if sample is not None else sim.active)
        cache = self.cache
        collector = self.collector
        if cache is None:
            miss_positions = list(range(n_cand))
            results: List[Optional[CandidateEval]] = [None] * n_cand
        else:
            epoch = sim.state_epoch
            results = [None] * n_cand
            miss_of_key = {}
            miss_positions = []
            hits = 0
            for position, candidate in enumerate(candidates):
                key = eval_key(candidate, sample, count_faulty_events)
                cached = cache.get(epoch, key)
                if cached is not None:
                    results[position] = replace(cached)
                    hits += 1
                elif key in miss_of_key:
                    # In-batch duplicate of a pending miss: scored once.
                    cache.misses -= 1
                    cache.hits += 1
                    hits += 1
                    miss_of_key[key].append(position)
                else:
                    miss_of_key[key] = [position]
                    miss_positions.append(position)
            if collector.enabled:
                collector.inc("parallel.cache.hits", hits)
                collector.inc("parallel.cache.misses", len(miss_positions))

        if miss_positions:
            miss_candidates = [candidates[position] for position in miss_positions]
            scored = None
            if miss_candidates[0] and sample and getattr(sim, "_shardable", False):
                groups = sim._make_groups(sample)
                if self._can_shard(len(groups)):
                    scored = self._shard_batch(
                        miss_candidates, sample, groups, count_faulty_events
                    )
            if scored is None:
                scored = sim._evaluate_batch_serial(
                    miss_candidates,
                    sample=sample,
                    count_faulty_events=count_faulty_events,
                )
            for position, result in zip(miss_positions, scored):
                results[position] = result

        if cache is not None:
            epoch = sim.state_epoch
            for position in miss_positions:
                key = eval_key(candidates[position], sample, count_faulty_events)
                cache.put(epoch, key, results[position])
            for key, positions in miss_of_key.items() if miss_positions else ():
                first = positions[0]
                for position in positions[1:]:
                    results[position] = replace(results[first])
        return results  # type: ignore[return-value]
