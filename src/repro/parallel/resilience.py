"""Failure policy and deterministic chaos injection for the worker pool.

Two small, side-effect-free value types govern the self-healing
behaviour of :class:`~repro.parallel.evaluator.ParallelEvaluator`:

* :class:`RetryPolicy` — how long one shard task may run, how many times
  a failed sharded pass is retried after a pool respawn, and the
  exponential backoff between attempts.  Defaults come from the
  environment (``REPRO_EVAL_TIMEOUT``, ``REPRO_EVAL_RETRIES``) so CI and
  operators can tighten them without code changes.
* :class:`ChaosConfig` — the deterministic fault-injection hook used by
  the robustness test suite.  ``REPRO_CHAOS=crash:<p>,hang:<p>,seed:<n>``
  makes pool workers kill themselves (``os._exit``, indistinguishable
  from an OOM kill) or stall (a long sleep, indistinguishable from a
  wedged worker) with the given probabilities.  Decisions are a pure
  function of ``(seed, task sequence number)`` — the parent numbers
  tasks deterministically — so a chaos run replays the *same* failures
  every time, and a retried task draws a fresh decision and can recover.

See ``docs/ROBUSTNESS.md`` for the full failure-handling contract.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

#: Environment variable carrying the chaos spec (read by pool workers).
CHAOS_ENV = "REPRO_CHAOS"
#: Per-shard-task timeout override, in seconds (<= 0 disables).
TIMEOUT_ENV = "REPRO_EVAL_TIMEOUT"
#: Pool-respawn retry count override.
RETRIES_ENV = "REPRO_EVAL_RETRIES"
#: Per-seed-run timeout override for the harness's seed pool, in
#: seconds (<= 0 disables; unset falls back to no timeout — a whole GA
#: run has no sane universal wall-clock bound, unlike a shard task).
SEED_TIMEOUT_ENV = "REPRO_SEED_TIMEOUT"
#: Seed-pool respawn retry count override (unset: ``REPRO_EVAL_RETRIES``
#: semantics do not apply here; the default is :data:`DEFAULT_MAX_RETRIES`).
SEED_RETRIES_ENV = "REPRO_SEED_RETRIES"

#: Default per-shard-task timeout.  Shard tasks are sub-second in normal
#: operation; minutes of silence means a hung or thrashing worker.
DEFAULT_TASK_TIMEOUT = 300.0
#: Default pool respawns per failed scoring pass before degrading.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff policy for sharded scoring passes.

    ``task_timeout`` bounds the wall time of one whole sharded pass
    (all of a pass's tasks run concurrently, so one deadline covers
    them); ``None`` disables the bound.  ``max_retries`` is how many
    times a failed pass is retried — each retry kills and respawns the
    pool first — before the evaluator degrades to the in-process serial
    path for the rest of the run.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT
    backoff_base: float = 0.05
    backoff_factor: float = 4.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_max)

    @classmethod
    def from_env(
        cls,
        task_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        timeout_env: str = TIMEOUT_ENV,
        retries_env: str = RETRIES_ENV,
        default_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT,
    ) -> "RetryPolicy":
        """Policy from the environment, with explicit overrides winning.

        ``task_timeout`` / ``max_retries`` arguments (when not ``None``)
        beat the ``timeout_env`` / ``retries_env`` environment variables
        (``REPRO_EVAL_TIMEOUT`` / ``REPRO_EVAL_RETRIES`` by default; the
        harness's seed pool reads :data:`SEED_TIMEOUT_ENV` /
        :data:`SEED_RETRIES_ENV` instead), which beat the defaults.  A
        timeout <= 0 (argument or environment) disables the bound, as
        does a ``None`` ``default_timeout`` when nothing else sets one.
        """
        if task_timeout is None:
            raw = os.environ.get(timeout_env, "")
            task_timeout = float(raw) if raw else default_timeout
        if task_timeout is not None and task_timeout <= 0:
            task_timeout = None
        if max_retries is None:
            raw = os.environ.get(retries_env, "")
            max_retries = int(raw) if raw else DEFAULT_MAX_RETRIES
        return cls(max_retries=max_retries, task_timeout=task_timeout)


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic worker-failure injection (test hook).

    ``crash`` / ``hang`` are per-task probabilities; ``seed`` makes the
    injected failure sequence reproducible.  ``hang_seconds`` is how
    long a stalled worker sleeps — far longer than any sane task
    timeout, so a hang always surfaces as a timeout, never as a slow
    success.
    """

    crash: float = 0.0
    hang: float = 0.0
    seed: int = 0
    hang_seconds: float = 600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash <= 1.0 or not 0.0 <= self.hang <= 1.0:
            raise ValueError("chaos probabilities must be in [0, 1]")
        if self.crash + self.hang > 1.0:
            raise ValueError("crash + hang probabilities must not exceed 1")

    @property
    def enabled(self) -> bool:
        """Whether any failure can actually be injected."""
        return self.crash > 0.0 or self.hang > 0.0

    def decide(self, task_seq: int) -> Optional[str]:
        """The injected failure for task ``task_seq``: ``"crash"``,
        ``"hang"`` or ``None``.

        A pure function of ``(seed, task_seq)``: the same run replays
        the same failures, and a *retried* task (which the parent gives
        a fresh sequence number) draws independently — so bounded
        retries recover from sub-certain crash probabilities.
        """
        draw = random.Random(self.seed * 1_000_003 + task_seq).random()
        if draw < self.crash:
            return "crash"
        if draw < self.crash + self.hang:
            return "hang"
        return None

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a ``crash:<p>,hang:<p>,seed:<n>`` spec string.

        Keys may appear in any order and any may be omitted;
        ``hang_seconds:<s>`` is accepted as an extra knob.  Raises
        ``ValueError`` on unknown keys or malformed values — a chaos
        spec is an explicit test instruction and must not fail silently.
        """
        fields = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition(":")
            if not sep:
                raise ValueError(f"chaos spec entry {part!r} is not key:value")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("crash", "hang", "hang_seconds"):
                    fields[key] = float(value)
                elif key == "seed":
                    fields[key] = int(value)
                else:
                    raise ValueError(f"unknown chaos key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad chaos spec {spec!r}: {exc}") from exc
        return cls(**fields)

    @classmethod
    def from_env(cls) -> Optional["ChaosConfig"]:
        """The ``REPRO_CHAOS`` config, or ``None`` when unset/disabled."""
        spec = os.environ.get(CHAOS_ENV, "")
        if not spec:
            return None
        config = cls.parse(spec)
        return config if config.enabled else None
