"""Failure policy and deterministic chaos injection for the worker pool.

Two small, side-effect-free value types govern the self-healing
behaviour of :class:`~repro.parallel.evaluator.ParallelEvaluator`:

* :class:`RetryPolicy` — how long one shard task may run, how many times
  a failed sharded pass is retried after a pool respawn, and the
  exponential backoff between attempts.  Defaults come from the
  environment (``REPRO_EVAL_TIMEOUT``, ``REPRO_EVAL_RETRIES``) so CI and
  operators can tighten them without code changes.
* :class:`ChaosConfig` — the deterministic fault-injection hook used by
  the robustness test suite.  ``REPRO_CHAOS=crash:<p>,hang:<p>,seed:<n>``
  makes pool workers kill themselves (``os._exit``, indistinguishable
  from an OOM kill) or stall (a long sleep, indistinguishable from a
  wedged worker) with the given probabilities.  Decisions are a pure
  function of ``(seed, task sequence number)`` — the parent numbers
  tasks deterministically — so a chaos run replays the *same* failures
  every time, and a retried task draws a fresh decision and can recover.

See ``docs/ROBUSTNESS.md`` for the full failure-handling contract.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

#: Environment variable carrying the chaos spec (read by pool workers).
CHAOS_ENV = "REPRO_CHAOS"
#: Per-shard-task timeout override, in seconds (<= 0 disables).
TIMEOUT_ENV = "REPRO_EVAL_TIMEOUT"
#: Pool-respawn retry count override.
RETRIES_ENV = "REPRO_EVAL_RETRIES"
#: Per-seed-run timeout override for the harness's seed pool, in
#: seconds (<= 0 disables; unset falls back to no timeout — a whole GA
#: run has no sane universal wall-clock bound, unlike a shard task).
SEED_TIMEOUT_ENV = "REPRO_SEED_TIMEOUT"
#: Seed-pool respawn retry count override (unset: ``REPRO_EVAL_RETRIES``
#: semantics do not apply here; the default is :data:`DEFAULT_MAX_RETRIES`).
SEED_RETRIES_ENV = "REPRO_SEED_RETRIES"
#: Lease TTL override for the distributed campaign coordinator, in
#: seconds (how long a host may sit on a leased cell before the
#: coordinator reaps it; <= 0 disables, which is almost never what a
#: multi-host campaign wants).
LEASE_TTL_ENV = "REPRO_LEASE_TTL"
#: Re-lease retry budget per cell before the coordinator degrades to
#: local in-process execution.
LEASE_RETRIES_ENV = "REPRO_LEASE_RETRIES"
#: Per-run-job deadline for the service's process execution tier, in
#: seconds (<= 0 disables; unset falls back to no deadline — like a
#: seed run, a whole GA run has no sane universal wall-clock bound).
#: A request's explicit ``deadline_s`` field beats this.
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
#: Tier-respawn retry budget per run job before the service degrades
#: that job to bit-identical in-thread execution.
JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Default per-shard-task timeout.  Shard tasks are sub-second in normal
#: operation; minutes of silence means a hung or thrashing worker.
DEFAULT_TASK_TIMEOUT = 300.0
#: Default pool respawns per failed scoring pass before degrading.
DEFAULT_MAX_RETRIES = 2
#: Default lease TTL for distributed campaign cells.  One cell is one
#: whole GA run, so the bound is generous; operators running full-scale
#: tables should raise it via ``REPRO_LEASE_TTL``.
DEFAULT_LEASE_TTL = 300.0


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff policy for sharded scoring passes.

    ``task_timeout`` bounds the wall time of one whole sharded pass
    (all of a pass's tasks run concurrently, so one deadline covers
    them); ``None`` disables the bound.  ``max_retries`` is how many
    times a failed pass is retried — each retry kills and respawns the
    pool first — before the evaluator degrades to the in-process serial
    path for the rest of the run.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT
    backoff_base: float = 0.05
    backoff_factor: float = 4.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_max)

    @classmethod
    def from_env(
        cls,
        task_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        timeout_env: str = TIMEOUT_ENV,
        retries_env: str = RETRIES_ENV,
        default_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT,
    ) -> "RetryPolicy":
        """Policy from the environment, with explicit overrides winning.

        ``task_timeout`` / ``max_retries`` arguments (when not ``None``)
        beat the ``timeout_env`` / ``retries_env`` environment variables
        (``REPRO_EVAL_TIMEOUT`` / ``REPRO_EVAL_RETRIES`` by default; the
        harness's seed pool reads :data:`SEED_TIMEOUT_ENV` /
        :data:`SEED_RETRIES_ENV` instead), which beat the defaults.  A
        timeout <= 0 (argument or environment) disables the bound, as
        does a ``None`` ``default_timeout`` when nothing else sets one.
        """
        if task_timeout is None:
            raw = os.environ.get(timeout_env, "")
            task_timeout = float(raw) if raw else default_timeout
        if task_timeout is not None and task_timeout <= 0:
            task_timeout = None
        if max_retries is None:
            raw = os.environ.get(retries_env, "")
            max_retries = int(raw) if raw else DEFAULT_MAX_RETRIES
        return cls(max_retries=max_retries, task_timeout=task_timeout)


def inject_chaos(chaos: Optional["ChaosConfig"], task_seq: int) -> None:
    """Kill or stall the *calling process* if the chaos config says so.

    The shared worker-side half of the chaos hook, used by every pool
    worker family (evaluator shards, seed runs, service tier jobs).  A
    crash is ``os._exit`` — no exception, no cleanup, exactly what the
    kernel's OOM killer looks like from the parent (the pool breaks and
    every outstanding future raises ``BrokenProcessPool``).  A hang is a
    long sleep the parent must detect via its task timeout.
    """
    if chaos is None:
        return
    action = chaos.decide(task_seq)
    if action == "crash":
        os._exit(75)
    if action == "hang":
        import time

        time.sleep(chaos.hang_seconds)


#: Chaos spec keys that are probabilities, mapped to their field names.
#: ``lease-stall`` / ``worker-vanish`` are *host-level* modes consumed
#: by the distributed campaign worker (``gatest campaign-worker``); the
#: process-level ``crash`` / ``hang`` modes fire inside pool workers.
_CHAOS_PROB_KEYS = {
    "crash": "crash",
    "hang": "hang",
    "lease-stall": "lease_stall",
    "lease_stall": "lease_stall",
    "worker-vanish": "worker_vanish",
    "worker_vanish": "worker_vanish",
}
_CHAOS_KNOWN = "crash, hang, lease-stall, worker-vanish, seed, hang_seconds"


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic worker- and host-failure injection (test hook).

    ``crash`` / ``hang`` are per-task probabilities for *pool worker*
    faults; ``lease_stall`` / ``worker_vanish`` are per-lease
    probabilities for *host-level* faults in the distributed campaign
    backend (a campaign worker that sleeps past its lease TTL before
    sealing its result, and one that dies outright mid-cell).  ``seed``
    makes the injected failure sequence reproducible.  ``hang_seconds``
    is how long a stalled pool worker sleeps — far longer than any sane
    task timeout, so a hang always surfaces as a timeout, never as a
    slow success.
    """

    crash: float = 0.0
    hang: float = 0.0
    seed: int = 0
    hang_seconds: float = 600.0
    lease_stall: float = 0.0
    worker_vanish: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "lease_stall", "worker_vanish"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"chaos probability {name}={value!r} must be in [0, 1]"
                )
        if self.crash + self.hang > 1.0:
            raise ValueError("crash + hang probabilities must not exceed 1")
        if self.lease_stall + self.worker_vanish > 1.0:
            raise ValueError(
                "lease-stall + worker-vanish probabilities must not exceed 1"
            )

    @property
    def enabled(self) -> bool:
        """Whether any failure can actually be injected."""
        return (self.crash > 0.0 or self.hang > 0.0
                or self.lease_stall > 0.0 or self.worker_vanish > 0.0)

    def decide(self, task_seq: int) -> Optional[str]:
        """The injected failure for task ``task_seq``: ``"crash"``,
        ``"hang"`` or ``None``.

        A pure function of ``(seed, task_seq)``: the same run replays
        the same failures, and a *retried* task (which the parent gives
        a fresh sequence number) draws independently — so bounded
        retries recover from sub-certain crash probabilities.
        """
        draw = random.Random(self.seed * 1_000_003 + task_seq).random()
        if draw < self.crash:
            return "crash"
        if draw < self.crash + self.hang:
            return "hang"
        return None

    def decide_host(self, lease_seq: int) -> Optional[str]:
        """The injected *host-level* failure for lease ``lease_seq``:
        ``"lease-stall"``, ``"worker-vanish"`` or ``None``.

        Same determinism contract as :meth:`decide`, drawn from an
        independent stream (the coordinator numbers leases with a
        journal-global monotonic ``seq``, so every grant — original or
        re-lease — draws exactly once, identically on every replay).
        """
        draw = random.Random(
            (self.seed + 7_777_777) * 1_000_003 + lease_seq
        ).random()
        if draw < self.lease_stall:
            return "lease-stall"
        if draw < self.lease_stall + self.worker_vanish:
            return "worker-vanish"
        return None

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a ``crash:<p>,hang:<p>,seed:<n>`` spec string.

        Keys may appear in any order and any may be omitted; host-level
        modes spell as ``lease-stall:<p>`` / ``worker-vanish:<p>`` and
        ``hang_seconds:<s>`` is accepted as an extra knob.  Raises
        ``ValueError`` *naming the offending token* on unknown modes and
        malformed or out-of-range values — a chaos spec is an explicit
        test instruction and must never fail silently or surface as an
        unintelligible crash deep inside a worker.
        """
        fields = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition(":")
            if not sep:
                raise ValueError(
                    f"bad chaos spec {spec!r}: entry {part!r} is not "
                    "key:value"
                )
            key = key.strip()
            value = value.strip()
            if key in _CHAOS_PROB_KEYS:
                field = _CHAOS_PROB_KEYS[key]
                try:
                    probability = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad chaos spec {spec!r}: {value!r} in {part!r} "
                        "is not a number"
                    ) from None
                if not 0.0 <= probability <= 1.0:
                    raise ValueError(
                        f"bad chaos spec {spec!r}: probability {value!r} "
                        f"in {part!r} must be in [0, 1]"
                    )
                fields[field] = probability
            elif key == "hang_seconds":
                try:
                    fields[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad chaos spec {spec!r}: {value!r} in {part!r} "
                        "is not a number"
                    ) from None
            elif key == "seed":
                try:
                    fields[key] = int(value)
                except ValueError:
                    raise ValueError(
                        f"bad chaos spec {spec!r}: {value!r} in {part!r} "
                        "is not an integer"
                    ) from None
            else:
                raise ValueError(
                    f"bad chaos spec {spec!r}: unknown chaos key {key!r} "
                    f"in {part!r} (known: {_CHAOS_KNOWN})"
                )
        try:
            return cls(**fields)
        except ValueError as exc:
            raise ValueError(f"bad chaos spec {spec!r}: {exc}") from None

    @classmethod
    def from_env(cls) -> Optional["ChaosConfig"]:
        """The ``REPRO_CHAOS`` config, or ``None`` when unset/disabled.

        A malformed spec raises ``ValueError`` with the offending token
        — callers that fan work out (the seed pool, the evaluator, the
        campaign worker) validate eagerly in the parent process so the
        error surfaces once, loudly, instead of as a cryptic
        ``BrokenProcessPool`` from every worker at once.
        """
        spec = os.environ.get(CHAOS_ENV, "")
        if not spec:
            return None
        config = cls.parse(spec)
        return config if config.enabled else None
